//! **cloudgrid** — a reproduction of *"Characterization and Comparison of
//! Cloud versus Grid Workloads"* (Di, Kondo, Cirne; IEEE CLUSTER 2012).
//!
//! The paper characterizes the 2011 Google cluster trace against seven
//! Grid/HPC traces. The original data is proprietary/external, so this
//! workspace substitutes **calibrated synthetic workload generators** and a
//! **discrete-event cluster simulator**, then runs the paper's full
//! statistical battery on the simulated traces. Every table and figure of
//! the paper has a corresponding experiment in `cgc-bench`
//! (`cargo run -p cgc-bench --bin run_experiments`).
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`trace`] — the trace data model (jobs, tasks, machines, events,
//!   usage samples);
//! * [`stats`] — the statistics toolkit (ECDF, mass–count disparity,
//!   fairness index, noise, autocorrelation, run lengths);
//! * [`gen`] — the Google and grid workload generators;
//! * [`sim`] — the cluster simulator;
//! * [`core`] — the characterization pipeline and
//!   [`CharacterizationReport`];
//! * [`obs`] — the observability layer: hierarchical pipeline-stage
//!   spans, the lock-free metrics registry and its serializable snapshot,
//!   sim-time telemetry bundles, and structured ingest diagnostics. Off
//!   by default and zero-cost when disabled; flip it on with
//!   [`obs::set_enabled`], export `CGC_TRACE=1` to stream compact span
//!   timings from any binary, or export `CGC_TRACE_OUT=spans.json` to
//!   write the span tree as a Chrome Trace Event file loadable in
//!   Perfetto / `chrome://tracing`.
//!
//! # Quick start
//!
//! ```
//! use cloudgrid::prelude::*;
//!
//! // A small Google-like cluster over six hours.
//! let workload = GoogleWorkload::scaled_for_hostload(16, 6 * HOUR).generate(1);
//! let config = SimConfig::google(FleetConfig::google(16));
//! let trace = Simulator::new(config).run(&workload);
//!
//! // Run the paper's full characterization.
//! let report = characterize(&trace);
//! assert_eq!(report.system, "google");
//! println!("{report}");
//! ```

pub use cgc_core as core;
pub use cgc_gen as gen;
pub use cgc_obs as obs;
pub use cgc_sim as sim;
pub use cgc_stats as stats;
pub use cgc_trace as trace;

pub use cgc_core::{
    characterize, characterize_stream, characterize_stream_columnar, telemetry_from_trace,
    CharacterizationReport, StreamOptions, StreamStats,
};

/// The most common imports, bundled.
pub mod prelude {
    pub use cgc_core::{characterize, characterize_stream, CharacterizationReport};
    pub use cgc_gen::{FleetConfig, GoogleWorkload, GridSystem, GridWorkload, Workload};
    pub use cgc_sim::{OutcomeModel, PlacementPolicy, SimConfig, Simulator};
    pub use cgc_stats::{Ecdf, MassCount, Summary};
    pub use cgc_trace::{
        Demand, JobId, MachineId, Priority, PriorityClass, QueueTimeline, TaskId, Trace,
        TraceBuilder, UserId, DAY, HOUR, MINUTE,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let workload = GoogleWorkload::scaled(8, HOUR).generate(3);
        let trace = workload.into_workload_trace();
        let report = crate::characterize(&trace);
        assert_eq!(report.system, "google");
    }
}
