//! Chaos-injection suite: every injected I/O fault must end in a clean
//! typed error or a documented salvage — never a panic and never
//! silently wrong output.
//!
//! A seeded fault matrix (`FaultPlan::from_seed`) drives a sealed trace
//! through truncation, bit flips, short reads, mid-stream read errors,
//! and interrupted writes. The invariants, per fault class:
//!
//! - **Truncate / BitFlip**: [`read_trace_verified`] either reproduces
//!   the clean trace exactly or returns a typed [`ParseError`]; it never
//!   accepts corrupted bytes. The lenient reader may salvage, but if it
//!   reports *zero* warnings while the `#integrity` trailer survived,
//!   the salvage must equal the clean trace. (Truncation that lands on a
//!   line boundary removes the trailer along with the tail — exactly the
//!   case that `read_trace_verified` exists to catch, and the documented
//!   limit of lenient salvage.)
//! - **ShortReads**: content is intact, so the streaming reader must
//!   reproduce the clean trace regardless of read sizes.
//! - **ReadError**: the streaming reader must surface a typed error.
//! - **InterruptWrite**: [`write_atomic_with`] must leave a pre-existing
//!   target byte-identical and leave no temp-file litter behind.
//!
//! The same matrix runs against the **binary columnar container**
//! (`write_trace_columnar`), where the invariants are stricter: there is
//! no lenient salvage, so every corruption outcome is either a clean
//! reproduction of the original trace (flips in dead padding or CRC
//! words for bytes that still verify) or a typed [`ParseError`] — from
//! the sequential reader, the parallel reader, and the batch iterator
//! alike, and the three must agree. Truncation anywhere is *always*
//! refused: the container's section framing requires the exact byte
//! length, so no prefix parses.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::sim::{FaultConfig, SimConfig, Simulator};
use cloudgrid::trace::io::{read_trace, read_trace_lenient, read_trace_verified};
use cloudgrid::trace::{
    read_trace_columnar, read_trace_columnar_parallel, read_trace_from, write_atomic_with,
    write_trace_columnar, write_trace_sealed, ChaosReader, ChaosWriter, ColumnarBatches, Fault,
    FaultPlan, Trace,
};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

/// Seeds 0..MATRIX_SEEDS cover every fault class (the class cycles with
/// `seed % 5`) at positions spread over the whole artifact.
const MATRIX_SEEDS: u64 = 200;

struct Fixture {
    trace: Trace,
    sealed: Vec<u8>,
    binary: Vec<u8>,
}

/// One small simulated trace, sealed (text) and containerized (binary),
/// shared by every test.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let workload = GoogleWorkload::scaled(20, 3_600).generate(3);
        let config = SimConfig::google(FleetConfig::google(20)).with_faults(FaultConfig::google());
        let trace = Simulator::new(config).run(&workload);
        let sealed = write_trace_sealed(&trace).into_bytes();
        let binary = write_trace_columnar(&trace);
        Fixture {
            trace,
            sealed,
            binary,
        }
    })
}

/// Whether the `#integrity` trailer survived the corruption as a line.
fn has_trailer(text: &str) -> bool {
    text.lines().any(|l| l.trim().starts_with("#integrity"))
}

/// The Truncate/BitFlip invariants on one corrupted byte buffer.
fn check_corrupted_bytes(seed: u64, corrupted: &[u8]) {
    let clean = &fixture().trace;
    match std::str::from_utf8(corrupted) {
        Ok(text) => {
            // Verified read: clean reproduction or typed error — nothing
            // in between. (Formatting the error exercises Display.)
            match read_trace_verified(text) {
                Ok(trace) => assert_eq!(
                    &trace, clean,
                    "seed {seed}: verified read accepted corrupted bytes"
                ),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            // The plain strict reader has no trailer to lean on when
            // truncation removed it; it must still never panic.
            let _ = read_trace(text);
            // Lenient salvage: a silent (warning-free) parse with the
            // trailer still present must be the clean trace.
            let parsed = read_trace_lenient(text);
            if parsed.warnings.is_empty() && has_trailer(text) {
                assert_eq!(
                    &parsed.trace, clean,
                    "seed {seed}: lenient read salvaged silently-wrong output"
                );
            }
        }
        Err(_) => {
            // The flip produced invalid UTF-8; the byte-stream reader
            // must reject it with a typed error, not panic.
            assert!(
                read_trace_from(corrupted).is_err(),
                "seed {seed}: invalid UTF-8 was accepted"
            );
        }
    }
}

/// The binary-container invariants on one corrupted byte buffer: every
/// reader yields either the clean trace or a typed error (never a panic,
/// never silently different records), and the three readers agree.
fn check_corrupted_container(seed: u64, corrupted: &[u8]) {
    let clean = &fixture().trace;
    let sequential = read_trace_columnar(corrupted);
    match &sequential {
        Ok(trace) => assert_eq!(
            trace, clean,
            "seed {seed}: columnar read accepted corrupted bytes"
        ),
        Err(e) => {
            let _ = e.to_string();
        }
    }
    // The parallel reader agrees with the sequential one — same trace or
    // same error classification.
    match (sequential.is_ok(), read_trace_columnar_parallel(corrupted)) {
        (true, Ok(trace)) => assert_eq!(&trace, clean),
        (false, Err(_)) => {}
        (seq_ok, par) => panic!(
            "seed {seed}: sequential ({}) and parallel ({}) readers disagree",
            if seq_ok { "ok" } else { "err" },
            if par.is_ok() { "ok" } else { "err" },
        ),
    }
    // The batch iterator salvages nothing either: constructing it (which
    // verifies framing and checksums) or draining it fails iff the
    // whole-trace read failed.
    let drained =
        ColumnarBatches::new(corrupted).and_then(|batches| batches.collect::<Result<Vec<_>, _>>());
    assert_eq!(
        drained.is_ok(),
        sequential.is_ok(),
        "seed {seed}: batch iterator and whole-trace reader disagree"
    );
}

#[test]
fn seeded_fault_matrix_never_panics_or_lies() {
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!("cgc-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..MATRIX_SEEDS {
        let plan = FaultPlan::from_seed(seed, fx.sealed.len());
        match plan.fault {
            Fault::Truncate { .. } | Fault::BitFlip { .. } => {
                let corrupted = cloudgrid::trace::chaos::corrupt(&fx.sealed, plan.fault);
                check_corrupted_bytes(seed, &corrupted);
            }
            Fault::ShortReads { .. } => {
                // Dribbling reads change nothing about the content.
                let reader = ChaosReader::new(&fx.sealed[..], plan.fault);
                let trace = read_trace_from(BufReader::new(reader))
                    .unwrap_or_else(|e| panic!("seed {seed}: short reads broke the parse: {e}"));
                assert_eq!(
                    trace, fx.trace,
                    "seed {seed}: short reads changed the trace"
                );
            }
            Fault::ReadError { .. } => {
                let reader = ChaosReader::new(&fx.sealed[..], plan.fault);
                let err = read_trace_from(BufReader::new(reader))
                    .expect_err("a mid-stream read error must surface");
                let _ = err.to_string();
            }
            Fault::InterruptWrite { .. } => {
                check_interrupted_write(&dir, seed, plan.fault);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same seeded matrix against the binary columnar container. Fault
/// positions are re-derived against the container's own length, so every
/// region — header, section headers, payloads, CRC words — gets hit.
#[test]
fn seeded_fault_matrix_on_binary_containers() {
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!("cgc-chaos-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..MATRIX_SEEDS {
        let plan = FaultPlan::from_seed(seed, fx.binary.len());
        match plan.fault {
            Fault::Truncate { .. } | Fault::BitFlip { .. } => {
                let corrupted = cloudgrid::trace::chaos::corrupt(&fx.binary, plan.fault);
                check_corrupted_container(seed, &corrupted);
            }
            Fault::ShortReads { .. } => {
                // Dribbling reads deliver intact content; a container
                // ingested through them must reproduce the clean trace.
                let mut reader = ChaosReader::new(&fx.binary[..], plan.fault);
                let mut bytes = Vec::new();
                reader
                    .read_to_end(&mut bytes)
                    .unwrap_or_else(|e| panic!("seed {seed}: short reads failed: {e}"));
                assert_eq!(
                    read_trace_columnar(&bytes).expect("intact container parses"),
                    fx.trace,
                    "seed {seed}: short reads changed the trace"
                );
            }
            Fault::ReadError { .. } => {
                // A mid-stream read error surfaces while acquiring the
                // bytes — before any columnar decoding can begin.
                let mut reader = ChaosReader::new(&fx.binary[..], plan.fault);
                let mut bytes = Vec::new();
                assert!(
                    reader.read_to_end(&mut bytes).is_err(),
                    "seed {seed}: the injected read error must surface"
                );
            }
            Fault::InterruptWrite { .. } => {
                check_interrupted_binary_write(&dir, seed, plan.fault);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn binary-container write through the atomic writer must leave the
/// pre-existing target intact, exactly like a torn text write.
fn check_interrupted_binary_write(dir: &Path, seed: u64, fault: Fault) {
    let target = dir.join(format!("target-{seed}.cgcb"));
    let original = write_trace_columnar(&fixture().trace);
    std::fs::write(&target, &original).unwrap();

    let result = write_atomic_with(&target, |w| {
        let mut chaos = ChaosWriter::new(w, fault);
        cloudgrid::trace::columnar::write_columnar_to(&fixture().trace, &mut chaos)?;
        chaos.flush()
    });
    assert!(
        result.is_err(),
        "seed {seed}: the injected write fault must abort the write"
    );
    let survivor = std::fs::read(&target).unwrap();
    assert_eq!(
        survivor, original,
        "seed {seed}: a torn write damaged the existing container"
    );
    // And the surviving artifact still parses clean.
    assert_eq!(
        read_trace_columnar(&survivor).expect("survivor parses"),
        fixture().trace,
        "seed {seed}: surviving container no longer parses"
    );
    let _ = std::fs::remove_file(&target);
}

/// A torn write through the atomic writer must leave the pre-existing
/// target intact and clean up its temp file.
fn check_interrupted_write(dir: &Path, seed: u64, fault: Fault) {
    let target = dir.join(format!("target-{seed}.cgct"));
    let original = b"previous checkpointed artifact, must survive torn writes";
    std::fs::write(&target, original).unwrap();

    let payload = &fixture().sealed;
    let result = write_atomic_with(&target, |w| {
        let mut chaos = ChaosWriter::new(w, fault);
        chaos.write_all(payload)?;
        chaos.flush()
    });
    assert!(
        result.is_err(),
        "seed {seed}: the injected write fault must abort the write"
    );
    assert_eq!(
        std::fs::read(&target).unwrap(),
        original,
        "seed {seed}: a torn write damaged the existing artifact"
    );
    let litter: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        litter.is_empty(),
        "seed {seed}: temp-file litter left behind: {litter:?}"
    );
    let _ = std::fs::remove_file(&target);
}

/// The position baked into a seeded fault, reused to place the cut in
/// the fused-channel scenarios below (ShortReads carries a cap, not a
/// position; its value spreads cuts near the start, which is fine).
fn fault_position(fault: Fault) -> usize {
    match fault {
        Fault::Truncate { at }
        | Fault::BitFlip { at, .. }
        | Fault::ReadError { at }
        | Fault::InterruptWrite { at } => at,
        Fault::ShortReads { max } => max,
    }
}

#[test]
fn fused_channel_chaos_ends_in_typed_errors_never_deadlock() {
    // The fused sim→characterize seam under the same seeded fault plans:
    // whichever side dies mid-run, the other must surface a *typed*
    // error — SinkError::Closed on the producer, a ParseError on the
    // consumer — and the pipeline must tear down without panicking,
    // deadlocking, or leaving a partial artifact behind.
    use cloudgrid::core::characterize_batches;
    use cloudgrid::trace::stream::BatchSource;
    use cloudgrid::trace::{emit_trace, sim_batch_channel, SinkError};
    use cloudgrid::StreamOptions;

    let fx = fixture();
    let total_records = fx.trace.machines.len()
        + fx.trace.jobs.len()
        + fx.trace.tasks.len()
        + fx.trace.events.len();
    for seed in 0..48u64 {
        let plan = FaultPlan::from_seed(seed, fx.sealed.len());
        // Map the fault's byte position onto the record stream: a small
        // batch size so the cut lands mid-emission, and a record index
        // where the doomed side gives up.
        let cut_records = fault_position(plan.fault) % total_records.max(1);
        let batch_records = 16;

        if seed % 2 == 0 {
            // Consumer hangs up mid-run: accept batches only up to the
            // cut, then drop the receiver. The producer's emission must
            // fail with SinkError::Closed — a typed error, not a panic
            // or a blocked send — and no partial trace text survives.
            let (mut sink, mut batches) = sim_batch_channel(batch_records, 2);
            let emitted = std::thread::scope(|scope| {
                let producer = scope.spawn(move || emit_trace(&fx.trace, &mut [&mut sink]));
                let mut seen = 0usize;
                while seen < cut_records {
                    match batches.next_batch() {
                        Some(Ok(batch)) => seen += batch.records() as usize,
                        Some(Err(e)) => panic!("seed {seed}: clean stream errored: {e}"),
                        None => break,
                    }
                }
                drop(batches);
                producer.join().expect("producer must not panic")
            });
            match emitted {
                // The producer finished before the cut only if the
                // receiver consumed everything (cut past the stream) —
                // with cut_records < total there must be an error.
                Ok(()) => assert!(
                    cut_records >= total_records,
                    "seed {seed}: emission survived a mid-stream hangup"
                ),
                Err(SinkError::Closed) => {}
                Err(other) => panic!("seed {seed}: expected Closed, got {other}"),
            }
        } else {
            // Producer dies mid-run: emit only records before the cut,
            // then drop the sink without `finish`. The characterizer
            // must surface a typed ParseError — never a partial report,
            // never a hang on a channel that will not close.
            let (mut sink, batches) = sim_batch_channel(batch_records, 2);
            let opts = StreamOptions::default();
            let err = std::thread::scope(|scope| {
                let trace = &fx.trace;
                scope.spawn(move || {
                    use cloudgrid::trace::RecordSink;
                    let quota = cut_records;
                    let _ = sink.begin(&trace.system, trace.horizon);
                    let _ = sink.machines(&trace.machines[..quota.min(trace.machines.len())]);
                    let rest = quota.saturating_sub(trace.machines.len());
                    let _ = sink.jobs(&trace.jobs[..rest.min(trace.jobs.len())]);
                    // Dropped here: no tasks, no events, no finish.
                });
                characterize_batches(batches, &opts)
                    .expect_err("a truncated emission must not characterize")
            });
            let _ = err.to_string();
            assert!(
                err.message.contains("closed before finish"),
                "seed {seed}: unexpected error {err}"
            );
        }
    }
}

#[test]
fn fault_free_chaos_wrappers_are_transparent() {
    // The seam itself must be invisible when no fault fires: a reader
    // with a fault positioned past EOF delivers identical bytes.
    let fx = fixture();
    let reader = ChaosReader::new(
        &fx.sealed[..],
        Fault::Truncate {
            at: fx.sealed.len(),
        },
    );
    let trace = read_trace_from(BufReader::new(reader)).expect("no fault fires");
    assert_eq!(trace, fx.trace);
}

#[test]
fn integrity_failures_are_counted() {
    // The recovery counters feed `--metrics`: a failed verification must
    // move `integrity_failures`. Other tests may bump it concurrently, so
    // assert growth, not an exact value.
    let fx = fixture();
    let text = std::str::from_utf8(&fx.sealed).unwrap();
    let broken = text.replace("#integrity v1", "#integrity v1 machines=9999");
    cloudgrid::obs::set_enabled(true);
    let before = cloudgrid::obs::metrics().integrity_failures.get();
    assert!(read_trace_verified(&broken).is_err());
    let after = cloudgrid::obs::metrics().integrity_failures.get();
    assert!(
        after > before,
        "integrity_failures did not move ({before} -> {after})"
    );
}

proptest! {
    /// Truncation at *every* byte offset (not just the seeded matrix
    /// positions): the verified reader never accepts a prefix as the
    /// whole artifact, and the lenient reader never salvages
    /// silently-wrong output while the trailer is present.
    #[test]
    fn truncation_at_any_offset_is_caught(idx in any::<prop::sample::Index>()) {
        let fx = fixture();
        let at = idx.index(fx.sealed.len());
        let corrupted = cloudgrid::trace::chaos::corrupt(&fx.sealed, Fault::Truncate { at });
        // Reuse the matrix invariants; `u64::MAX` tags proptest cases in
        // failure messages.
        check_corrupted_bytes(u64::MAX, &corrupted);
        // Cutting at `len - 1` only drops the final newline, which does
        // not change any line's content; every deeper cut damages or
        // removes the trailer and must be refused outright.
        if at + 1 < fx.sealed.len() {
            let text = std::str::from_utf8(&corrupted).unwrap();
            prop_assert!(
                read_trace_verified(text).is_err(),
                "a strict verified read accepted a truncated artifact (cut at {})", at
            );
        }
    }

    /// Binary containers are stricter still: truncation at *any* offset
    /// is refused outright — the section framing demands the exact byte
    /// length, so no prefix of a container is a container.
    #[test]
    fn binary_truncation_at_any_offset_is_refused(idx in any::<prop::sample::Index>()) {
        let fx = fixture();
        let at = idx.index(fx.binary.len());
        let corrupted = cloudgrid::trace::chaos::corrupt(&fx.binary, Fault::Truncate { at });
        check_corrupted_container(u64::MAX, &corrupted);
        prop_assert!(
            read_trace_columnar(&corrupted).is_err(),
            "a columnar read accepted a truncated container (cut at {})", at
        );
    }
}
