//! Cross-crate property tests: the simulator must uphold trace invariants
//! for arbitrary (small) workloads, and statistics must agree across
//! independent implementations.

use cloudgrid::prelude::*;
use cloudgrid::trace::task::{TaskEventKind, TaskOutcome};
use proptest::prelude::*;

/// Strategy: a small arbitrary workload (a handful of jobs with arbitrary
/// demands, runtimes, and priorities).
fn arb_workload() -> impl Strategy<Value = Workload> {
    let task = (1u64..4_000, 0.01f64..0.6, 0.01f64..0.6, 0.1f64..1.0).prop_map(
        |(runtime, cpu, mem, util)| cloudgrid::gen::TaskSpec {
            demand: Demand::new(cpu, mem),
            runtime,
            cpu_processors: cpu * 8.0 * util,
            utilization: util,
        },
    );
    let job = (0u64..20_000, 1u8..=12, prop::collection::vec(task, 1..4)).prop_map(
        |(submit, level, tasks)| cloudgrid::gen::JobSpec {
            submit,
            user: UserId(0),
            priority: Priority::from_level(level),
            tasks,
        },
    );
    prop::collection::vec(job, 1..12).prop_map(|mut jobs| {
        jobs.sort_by_key(|j| j.submit);
        Workload {
            system: "prop".into(),
            horizon: 8 * HOUR,
            jobs,
        }
    })
}

fn sim_config(seed: u64, preemption: bool) -> SimConfig {
    let mut c = SimConfig::google(FleetConfig::google(3)).with_seed(seed);
    c.preemption = preemption;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator always emits a state-machine-valid trace (the builder
    /// inside `run` would panic otherwise), tasks never exceed their
    /// resubmission budget, and per-sample usage never exceeds capacity.
    #[test]
    fn simulator_upholds_trace_invariants(
        workload in arb_workload(),
        seed in 0u64..500,
        preemption in any::<bool>(),
    ) {
        let config = sim_config(seed, preemption);
        let max_attempts = config.max_resubmits + 1;
        let trace = Simulator::new(config).run(&workload);

        for t in &trace.tasks {
            prop_assert!(t.attempts <= max_attempts, "task {} attempts {}", t.id, t.attempts);
            if t.outcome == TaskOutcome::Finished {
                prop_assert!(t.execution_time > 0);
            }
        }
        for s in &trace.host_series {
            let m = &trace.machines[s.machine.index()];
            for sample in &s.samples {
                prop_assert!(sample.cpu.total() <= m.cpu_capacity + 1e-9);
                prop_assert!(sample.memory_used.total() <= m.memory_capacity + 1e-9);
                prop_assert!(sample.memory_assigned.total() <= m.memory_capacity + 1e-9);
                prop_assert!(sample.page_cache >= 0.0);
            }
        }
        // Event log: every Schedule pairs with at most one completion per
        // attempt, so schedules >= completions and attempts == schedules.
        let schedules =
            trace.events.iter().filter(|e| e.kind == TaskEventKind::Schedule).count() as u64;
        let completions = trace.completion_counts().total();
        prop_assert!(completions <= schedules);
        let total_attempts: u64 = trace.tasks.iter().map(|t| t.attempts as u64).sum();
        prop_assert_eq!(total_attempts, schedules);
    }

    /// Without preemption there are no evictions, ever.
    #[test]
    fn no_preemption_no_evictions(workload in arb_workload(), seed in 0u64..200) {
        let trace = Simulator::new(sim_config(seed, false)).run(&workload);
        prop_assert_eq!(trace.completion_counts().evict, 0);
    }

    /// Trace serialization round-trips for arbitrary simulated traces.
    #[test]
    fn io_round_trip(workload in arb_workload(), seed in 0u64..100) {
        let trace = Simulator::new(sim_config(seed, true)).run(&workload);
        let text = cloudgrid::trace::io::write_trace(&trace);
        let parsed = cloudgrid::trace::io::read_trace(&text).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// The characterization never panics on arbitrary simulated traces and
    /// reports consistent totals.
    #[test]
    fn characterize_total_consistency(workload in arb_workload(), seed in 0u64..100) {
        let trace = Simulator::new(sim_config(seed, true)).run(&workload);
        let report = characterize(&trace);
        prop_assert_eq!(
            report.workload.priorities.total_jobs() as usize,
            trace.jobs.len()
        );
        prop_assert_eq!(
            report.workload.priorities.total_tasks() as usize,
            trace.tasks.len()
        );
        if let Some(tl) = &report.workload.task_length {
            prop_assert!(tl.masscount.mm_distance >= 0.0);
            prop_assert!(tl.frac_under_10min <= tl.frac_under_1h);
            prop_assert!(tl.frac_under_1h <= tl.frac_under_3h);
        }
    }

    /// Job CPU usage (Formula 4) equals cpu-seconds over wall-clock for
    /// every finished job, independent of scheduling.
    #[test]
    fn formula4_consistency(workload in arb_workload(), seed in 0u64..100) {
        let trace = Simulator::new(sim_config(seed, true)).run(&workload);
        for job in &trace.jobs {
            if let (Some(usage), Some(len)) = (job.cpu_usage(), job.length()) {
                prop_assert!(usage >= 0.0);
                prop_assert!((usage * len as f64 - job.cpu_seconds).abs() < 1e-6);
            }
        }
    }
}
