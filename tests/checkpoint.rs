//! Crash-safe resume determinism.
//!
//! Extends the determinism contract of `tests/determinism.rs` to the
//! checkpoint/restore path: a run interrupted at any checkpoint boundary
//! and resumed later must produce **byte-identical** trace output — and a
//! byte-identical telemetry bundle — to an uninterrupted run, on any
//! worker thread count. Also pins that checkpointing itself is a pure
//! observer (a checkpointed run emits the reference bytes) and that
//! resuming against the wrong scenario or a corrupt file yields a typed
//! error instead of silently-wrong output.
//!
//! Tests here never use `CheckpointOptions::die_after` — it aborts the
//! whole process by design (the CI chaos-smoke job exercises it on the
//! `gen_trace` binary instead). Multi-cut-point coverage comes from
//! `retain_all`, which keeps every boundary as `<path>.<t>`.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::sim::{
    load_checkpoint, CheckpointError, CheckpointOptions, FaultConfig, SimConfig, Simulator,
};
use cloudgrid::trace::io::write_trace;
use std::path::PathBuf;

const MACHINES: usize = 60;
const HORIZON: u64 = 6 * 3_600;
/// Checkpoint interval: boundaries land at t = 7200 and t = 14400.
const EVERY: u64 = 2 * 3_600;
const CUT_POINTS: [u64; 2] = [7_200, 14_400];
const TELEMETRY_INTERVAL: u64 = 300;

/// Same scenario as `tests/determinism.rs`, faults on: the scripted
/// outage exercises the fault/blacklist state across checkpoints too.
fn google_config() -> SimConfig {
    SimConfig::google(FleetConfig::google(MACHINES))
        .with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
}

fn workload() -> cloudgrid::gen::Workload {
    GoogleWorkload::scaled(MACHINES, HORIZON).generate(7)
}

/// A per-test checkpoint path under the system temp dir (tests in this
/// binary run concurrently; names must not collide).
fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cgc-test-{tag}-{}.ckpt", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for at in CUT_POINTS {
        let mut name = path.clone().into_os_string();
        name.push(format!(".{at}"));
        let _ = std::fs::remove_file(PathBuf::from(name));
    }
}

#[test]
fn resumed_runs_are_byte_identical_across_cut_points_and_threads() {
    let workload = workload();
    for shards in [1usize, 4] {
        // Uninterrupted reference: trace bytes and telemetry bundle.
        let config = google_config().with_shards(shards).with_threads(1);
        let (ref_trace, ref_bundle) =
            Simulator::new(config.clone()).run_with_telemetry(&workload, TELEMETRY_INTERVAL);
        let ref_text = write_trace(&ref_trace);
        let ref_json = serde_json::to_string_pretty(&ref_bundle).expect("bundle serializes");

        // A checkpointed run must emit the same bytes (checkpointing is a
        // pure observer), while retaining every boundary on disk.
        let path = ckpt_path(&format!("resume-s{shards}"));
        let options = CheckpointOptions {
            path: path.clone(),
            every: EVERY,
            retain_all: true,
            die_after: None,
        };
        let (trace, bundle) = Simulator::new(config)
            .run_checkpointed(&workload, Some(TELEMETRY_INTERVAL), Some(&options), None)
            .expect("checkpointed run succeeds");
        assert_eq!(
            write_trace(&trace),
            ref_text,
            "shards={shards}: checkpointing altered the trace"
        );
        let json = serde_json::to_string_pretty(&bundle.expect("telemetry requested"))
            .expect("bundle serializes");
        assert_eq!(
            json, ref_json,
            "shards={shards}: checkpointing altered the telemetry bundle"
        );

        // Resume from each retained boundary, on several thread counts:
        // trace AND bundle must reproduce the reference byte for byte.
        for at in CUT_POINTS {
            let mut name = path.clone().into_os_string();
            name.push(format!(".{at}"));
            let ckpt = load_checkpoint(&PathBuf::from(name)).expect("boundary file loads");
            assert_eq!(ckpt.at, at);
            for threads in [1usize, 2, 8] {
                let config = google_config().with_shards(shards).with_threads(threads);
                let (trace, bundle) = Simulator::new(config)
                    .run_checkpointed(&workload, Some(TELEMETRY_INTERVAL), None, Some(&ckpt))
                    .expect("resume succeeds");
                assert_eq!(
                    write_trace(&trace),
                    ref_text,
                    "shards={shards} cut={at} threads={threads}: resumed trace diverged"
                );
                let json = serde_json::to_string_pretty(&bundle.expect("telemetry requested"))
                    .expect("bundle serializes");
                assert_eq!(
                    json, ref_json,
                    "shards={shards} cut={at} threads={threads}: resumed bundle diverged"
                );
            }
        }
        cleanup(&path);
    }
}

#[test]
fn resumed_runs_reproduce_the_binary_container_byte_for_byte() {
    // The interrupt/resume guarantee holds for the binary columnar
    // serialization too: a run cut at any checkpoint boundary and
    // resumed must containerize to exactly the bytes of an
    // uninterrupted run (the artifact `gen_trace --format binary
    // --checkpoint-every` leaves on disk).
    use cloudgrid::trace::write_trace_columnar;

    let workload = workload();
    let config = google_config();
    let reference = write_trace_columnar(&Simulator::new(config.clone()).run(&workload));

    let path = ckpt_path("binary");
    let options = CheckpointOptions {
        path: path.clone(),
        every: EVERY,
        retain_all: true,
        die_after: None,
    };
    let (trace, _) = Simulator::new(config.clone())
        .run_checkpointed(&workload, None, Some(&options), None)
        .expect("checkpointed run succeeds");
    assert_eq!(
        write_trace_columnar(&trace),
        reference,
        "checkpointing altered the binary container"
    );

    for at in CUT_POINTS {
        let mut name = path.clone().into_os_string();
        name.push(format!(".{at}"));
        let ckpt = load_checkpoint(&PathBuf::from(name)).expect("boundary file loads");
        let (trace, _) = Simulator::new(config.clone())
            .run_checkpointed(&workload, None, None, Some(&ckpt))
            .expect("resume succeeds");
        assert_eq!(
            write_trace_columnar(&trace),
            reference,
            "cut={at}: resumed binary container diverged"
        );
    }
    cleanup(&path);
}

#[test]
fn plain_runs_resume_without_telemetry_too() {
    // The telemetry-free path: `run()` is the reference, the resumed run
    // carries no probe, and the bundle slot stays empty.
    let workload = workload();
    let config = google_config();
    let reference = write_trace(&Simulator::new(config.clone()).run(&workload));

    let path = ckpt_path("plain");
    let options = CheckpointOptions {
        path: path.clone(),
        every: EVERY,
        retain_all: false,
        die_after: None,
    };
    let (trace, bundle) = Simulator::new(config.clone())
        .run_checkpointed(&workload, None, Some(&options), None)
        .expect("checkpointed run succeeds");
    assert!(bundle.is_none());
    assert_eq!(write_trace(&trace), reference);

    // The main path holds the *latest* boundary; resuming it reproduces
    // the reference bytes.
    let ckpt = load_checkpoint(&path).expect("checkpoint loads");
    assert_eq!(ckpt.at, *CUT_POINTS.last().unwrap());
    let (trace, bundle) = Simulator::new(config)
        .run_checkpointed(&workload, None, None, Some(&ckpt))
        .expect("resume succeeds");
    assert!(bundle.is_none());
    assert_eq!(write_trace(&trace), reference);
    cleanup(&path);
}

#[test]
fn checkpoint_plumbing_is_inert_when_disabled() {
    // `run_checkpointed(None, None)` must take the exact code path `run()`
    // takes: no fingerprinting, no boundaries, identical bytes.
    let workload = workload();
    let reference = write_trace(&Simulator::new(google_config()).run(&workload));
    let (trace, bundle) = Simulator::new(google_config())
        .run_checkpointed(&workload, None, None, None)
        .expect("no checkpointing, no error path");
    assert!(bundle.is_none());
    assert_eq!(write_trace(&trace), reference);
}

#[test]
fn resuming_the_wrong_scenario_is_refused() {
    let workload = workload();
    let path = ckpt_path("mismatch");
    let options = CheckpointOptions {
        path: path.clone(),
        every: EVERY,
        retain_all: false,
        die_after: None,
    };
    Simulator::new(google_config())
        .run_checkpointed(&workload, None, Some(&options), None)
        .expect("checkpointed run succeeds");
    let ckpt = load_checkpoint(&path).expect("checkpoint loads");

    // A different seed is a different scenario.
    let err = Simulator::new(google_config().with_seed(99))
        .run_checkpointed(&workload, None, None, Some(&ckpt))
        .expect_err("wrong seed must be refused");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

    // A different shard count is a different model.
    let err = Simulator::new(google_config().with_shards(4))
        .run_checkpointed(&workload, None, None, Some(&ckpt))
        .expect_err("wrong shard count must be refused");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

    // Telemetry on/off must match what the interrupted run recorded.
    let err = Simulator::new(google_config())
        .run_checkpointed(&workload, Some(TELEMETRY_INTERVAL), None, Some(&ckpt))
        .expect_err("telemetry mismatch must be refused");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

    // A flipped byte in the file is caught before any of that.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    cleanup(&path);
}
