//! Ground truth for the observability counters.
//!
//! The pipeline metrics are only worth diffing in CI if they mean what
//! they claim. This test runs the real pipeline — generate → simulate →
//! write → lenient read — and checks every deterministic counter against
//! the trace itself. A single `#[test]` holds it all because the metrics
//! registry is process-global: parallel test functions would interleave
//! their increments.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::obs;
use cloudgrid::sim::{FaultConfig, SimConfig, Simulator};
use cloudgrid::trace::io::{read_trace_lenient, write_trace};
use cloudgrid::trace::TaskEventKind;

const MACHINES: usize = 40;
const HORIZON: u64 = 4 * 3_600;

#[test]
fn counters_match_the_trace_they_describe() {
    obs::set_enabled(true);
    obs::metrics().reset();

    // --- generate + simulate ------------------------------------------
    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(11);
    let config = SimConfig::google(FleetConfig::google(MACHINES))
        .with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
        .with_shards(2)
        .with_threads(2);
    let trace = Simulator::new(config).run(&workload);

    let snapshot = obs::metrics().snapshot();
    let c = &snapshot.counters;

    assert_eq!(c.jobs_generated as usize, trace.jobs.len());
    assert_eq!(c.tasks_generated as usize, trace.tasks.len());
    assert_eq!(c.events_simulated as usize, trace.events.len());
    let samples: usize = trace.host_series.iter().map(|s| s.samples.len()).sum();
    assert_eq!(c.samples_recorded as usize, samples);

    // Placements and evictions are literally event counts in the trace.
    let count = |kind: TaskEventKind| trace.events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(c.placements, count(TaskEventKind::Schedule));
    assert_eq!(c.evictions, count(TaskEventKind::Evict));

    // A retry is any Submit after a task's first, exactly as emitted.
    let submits = count(TaskEventKind::Submit);
    let submitted_tasks = {
        let mut seen = vec![false; trace.tasks.len()];
        for e in &trace.events {
            if e.kind == TaskEventKind::Submit {
                seen[e.task.index()] = true;
            }
        }
        seen.iter().filter(|s| **s).count() as u64
    };
    assert_eq!(c.retries, submits - submitted_tasks);

    // Per-shard attribution covers every simulated event exactly once.
    assert_eq!(c.events_per_shard.iter().sum::<u64>(), c.events_simulated);
    assert!(c.events_per_shard.len() <= 2, "two shards, two slots");

    // Nothing was read yet, so the ingest counters are still zero.
    assert_eq!(c.bytes_read, 0);
    assert_eq!(c.lines_parsed, 0);
    assert_eq!(c.lines_salvaged, 0);

    // --- write + lenient read -----------------------------------------
    obs::metrics().reset();
    let text = write_trace(&trace);

    // Corrupt a few data lines (not headers) so salvage has work to do.
    let corrupted: String = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if !line.starts_with('#') && !line.is_empty() && i % 97 == 0 {
                "garbage,not,a,row".to_string()
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");

    let parsed = read_trace_lenient(&corrupted);
    assert!(!parsed.warnings.is_empty(), "corruption must be reported");

    let c = obs::metrics().snapshot().counters;
    assert_eq!(c.bytes_read as usize, corrupted.len());
    assert_eq!(c.lines_salvaged as usize, parsed.warnings.len());
    let non_blank = corrupted.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(c.lines_parsed as usize, non_blank);

    // Exactly-once salvage accounting: every lenient entry point tallies
    // `lines_salvaged` through the shared `IngestTally`, never via an
    // extra post-hoc add — so the string-based and reader-based parsers
    // must report identical counts for identical input, and running both
    // must sum, not double.
    obs::metrics().reset();
    let from_reader = cloudgrid::trace::io::read_trace_lenient_from(corrupted.as_bytes());
    assert_eq!(from_reader.warnings.len(), parsed.warnings.len());
    let c = obs::metrics().snapshot().counters;
    assert_eq!(
        c.lines_salvaged as usize,
        from_reader.warnings.len(),
        "reader-based lenient parse counts each salvaged line once"
    );
    let _ = read_trace_lenient(&corrupted);
    let c = obs::metrics().snapshot().counters;
    assert_eq!(
        c.lines_salvaged as usize,
        2 * parsed.warnings.len(),
        "two lenient parses count each salvaged line exactly once each"
    );

    // Counters survive serialization round-trips bit-for-bit.
    let json = serde_json::to_string(&c).expect("counters serialize");
    let back: obs::PipelineCounters = serde_json::from_str(&json).expect("counters deserialize");
    assert_eq!(back, c);

    // --- thread-count independence ------------------------------------
    // The counters describe the (seed, config) model, not the execution:
    // rerunning the same pipeline on one thread must reproduce them
    // exactly, per-shard attribution included.
    let rerun = |threads: usize| {
        obs::metrics().reset();
        let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(11);
        let config = SimConfig::google(FleetConfig::google(MACHINES))
            .with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
            .with_shards(2)
            .with_threads(threads);
        Simulator::new(config).run(&workload);
        obs::metrics().snapshot().counters
    };
    assert_eq!(rerun(1), rerun(2), "counters must not depend on threads");
}
