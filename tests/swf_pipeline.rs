//! Real-data ingestion path: SWF log → trace → characterization → JSON.

use cloudgrid::prelude::*;
use cloudgrid::trace::swf::{parse_swf, read_swf_trace, swf_to_trace, SwfImportOptions};

fn sample_log(jobs: usize) -> String {
    let mut out = String::from("; Version: 2.2\n; Computer: integration sample\n");
    for i in 0..jobs as u64 {
        let submit = i * 500;
        let run = 900 + (i % 13) * 777;
        let procs = 1 + (i % 4);
        let status = if i % 19 == 0 { 5 } else { 1 };
        out.push_str(&format!(
            "{} {} {} {} {} {} {} {} {} -1 {} {} 1 -1 1 -1 -1 -1\n",
            i + 1,
            submit,
            i % 3 * 30,
            run,
            procs,
            run,
            131_072,
            procs,
            run * 2,
            status,
            i % 11,
        ));
    }
    out
}

#[test]
fn swf_log_runs_through_full_characterization() {
    let text = sample_log(200);
    let trace = read_swf_trace(&text, &SwfImportOptions::default()).unwrap();
    assert_eq!(trace.jobs.len(), 200);

    let report = characterize(&trace);
    // Workload-side analyses all fire; host-load side is absent (SWF logs
    // carry no per-machine usage).
    assert!(report.workload.job_length.is_some());
    assert!(report.workload.submission.is_some());
    assert!(report.workload.task_length.is_some());
    assert!(report.hostload.is_none());

    // And the report serializes for downstream tooling.
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"system\":\"swf\""));
}

#[test]
fn swf_import_matches_manual_field_math() {
    let text = sample_log(50);
    let jobs = parse_swf(&text).unwrap();
    let trace = swf_to_trace(&jobs, &SwfImportOptions::default());
    for (raw, job) in jobs.iter().zip(&trace.jobs) {
        assert_eq!(job.submit_time, raw.submit as u64);
        let expect = raw.submit as u64 + raw.wait.max(0) as u64 + raw.run_time as u64;
        assert_eq!(job.completion_time, Some(expect));
        // Formula 4 numerator: processors × run time.
        let cpu_s = raw.processors as f64 * raw.run_time as f64;
        assert!((job.cpu_seconds - cpu_s).abs() < 1e-9);
    }
}

#[test]
fn swf_trace_statistics_are_internally_consistent() {
    let text = sample_log(300);
    let trace = read_swf_trace(&text, &SwfImportOptions::default()).unwrap();
    let analysis =
        cloudgrid::core::workload::submission_analysis(&trace).expect("many submissions");
    // 300 jobs every 500 s = 7.2 jobs per hour on average.
    assert!(
        (analysis.rate.avg - 7.2).abs() < 0.6,
        "avg={}",
        analysis.rate.avg
    );
    // Perfectly regular arrivals have fairness ~1 (the trailing partial
    // hour shaves a little off).
    assert!(
        analysis.rate.fairness > 0.9,
        "fairness={}",
        analysis.rate.fairness
    );

    let users = cloudgrid::core::workload::user_activity(&trace).expect("users present");
    assert_eq!(users.users, 11);
}

#[test]
fn truncated_swf_input_yields_typed_errors_never_panics() {
    // SWF carries no integrity trailer, so a truncation that lands on a
    // line boundary legitimately parses as a shorter log; every mid-line
    // cut must surface as a typed `SwfError` — and no cut may panic.
    let text = sample_log(30);
    let whole = parse_swf(&text).expect("the intact log parses");
    for at in 0..text.len() {
        match parse_swf(&text[..at]) {
            Ok(jobs) => assert!(
                jobs.len() <= whole.len(),
                "cut at {at}: a prefix cannot contain more jobs"
            ),
            Err(e) => {
                assert!(
                    e.message.contains("18 fields") || e.message.contains("invalid"),
                    "cut at {at}: unexpected error {e}"
                );
                assert!(e.line >= 1 && e.line <= text.lines().count());
            }
        }
    }
}

#[test]
fn garbled_swf_fields_carry_line_numbers() {
    // A short line reports the field count it found…
    let err = parse_swf("; header\n1 2 3 4 5\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("expected 18 fields"), "{err}");
    // …and a non-numeric field names itself, with the 1-based line.
    let mut text = sample_log(3);
    text = text.replace("131072", "not-a-number");
    let err = parse_swf(&text).unwrap_err();
    assert_eq!(err.line, 3, "comment header is two lines");
    assert!(err.message.contains("invalid"), "{err}");
    assert!(err.message.contains("not-a-number"), "{err}");
}

#[test]
fn lenient_cgct_ingest_reports_salvage_counts() {
    // The cgct side of the ingestion path: a sealed trace truncated
    // mid-line salvages with an exact account of what was skipped —
    // the numbers `analyze_trace --lenient --max-salvage` thresholds on.
    use cloudgrid::gen::{FleetConfig, GoogleWorkload};
    use cloudgrid::sim::{SimConfig, Simulator};
    use cloudgrid::trace::io::{read_trace_lenient, read_trace_verified, write_trace_sealed};

    let workload = GoogleWorkload::scaled(10, 3_600).generate(5);
    let trace = Simulator::new(SimConfig::google(FleetConfig::google(10))).run(&workload);
    let sealed = write_trace_sealed(&trace);

    // Intact: zero warnings, zero salvage, verified read agrees.
    let clean = read_trace_lenient(&sealed);
    assert!(clean.warnings.is_empty());
    assert_eq!(clean.salvage_percent(), 0.0);
    assert_eq!(read_trace_verified(&sealed).unwrap(), clean.trace);

    // Cut a few bytes into a line near the 75% mark — provably mid-line,
    // so the damaged tail is skipped and counted, never panicked over.
    let near = sealed.len() - sealed.len() / 4;
    let nl = sealed[near..].find('\n').expect("lines remain") + near;
    let cut = nl + 4; // 3 bytes into the next line (every line is longer)
    assert!(cut < sealed.len());
    let truncated = &sealed[..cut];
    let parsed = read_trace_lenient(truncated);
    assert!(
        !parsed.warnings.is_empty(),
        "a mid-line cut must produce at least one warning"
    );
    assert_eq!(parsed.lines_seen, truncated.lines().count() as u64);
    let expect = 100.0 * parsed.warnings.len() as f64 / parsed.lines_seen as f64;
    assert!((parsed.salvage_percent() - expect).abs() < 1e-12);
    // And the strict verified reader refuses the same bytes outright.
    assert!(read_trace_verified(truncated).is_err());
}

#[test]
fn cancelled_jobs_survive_the_pipeline() {
    let text = sample_log(40); // every 19th job is cancelled (status 5)
    let trace = read_swf_trace(&text, &SwfImportOptions::default()).unwrap();
    use cloudgrid::trace::task::TaskOutcome;
    let killed = trace
        .tasks
        .iter()
        .filter(|t| t.outcome == TaskOutcome::Killed)
        .count();
    assert!(killed >= 2, "killed={killed}");
    // Killed jobs still have lengths (submission to termination).
    assert_eq!(trace.job_lengths().len(), 40);
}
