//! Scheduler-core equivalence: `SchedulerCore::Optimized` (calendar
//! queue + vector pending set) is an execution knob, not a model change.
//!
//! For any fixed `(seed, shards)` scenario the optimized and reference
//! cores must emit **bit-identical** traces and telemetry bundles — with
//! faults and churn on, sharded and unsharded — and their checkpoints
//! must be interchangeable: the snapshot format canonicalizes queue
//! order, so the files match byte for byte and a run interrupted under
//! one core resumes byte-identically under the other. This is the
//! contract that makes `cgc-bench`'s reference baseline like-for-like.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::sim::{
    load_checkpoint, CheckpointOptions, FaultConfig, SchedulerCore, SimConfig, Simulator,
};
use cloudgrid::trace::io::write_trace;
use std::path::PathBuf;

const MACHINES: usize = 60;
const HORIZON: u64 = 6 * 3_600;
/// Boundaries land at t = 7200 and t = 14400.
const EVERY: u64 = 2 * 3_600;
const TELEMETRY_INTERVAL: u64 = 300;

/// Faults plus a scripted outage: blacklist churn and resubmission storms
/// stress the pending-queue orderings where the two cores differ most.
fn google_config(core: SchedulerCore, shards: usize) -> SimConfig {
    SimConfig::google(FleetConfig::google(MACHINES))
        .with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
        .with_shards(shards)
        .with_core(core)
}

fn workload() -> cloudgrid::gen::Workload {
    GoogleWorkload::scaled(MACHINES, HORIZON).generate(7)
}

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cgc-core-eq-{tag}-{}.ckpt", std::process::id()))
}

#[test]
fn cores_emit_identical_traces_and_telemetry() {
    let workload = workload();
    for shards in [1usize, 4] {
        let (ref_trace, ref_bundle) =
            Simulator::new(google_config(SchedulerCore::Reference, shards))
                .run_with_telemetry(&workload, TELEMETRY_INTERVAL);
        let (opt_trace, opt_bundle) =
            Simulator::new(google_config(SchedulerCore::Optimized, shards))
                .run_with_telemetry(&workload, TELEMETRY_INTERVAL);
        assert_eq!(
            write_trace(&opt_trace),
            write_trace(&ref_trace),
            "shards={shards}: cores diverged on trace bytes"
        );
        assert_eq!(
            serde_json::to_string_pretty(&opt_bundle).unwrap(),
            serde_json::to_string_pretty(&ref_bundle).unwrap(),
            "shards={shards}: cores diverged on the telemetry bundle"
        );
    }
}

#[test]
fn checkpoints_are_interchangeable_between_cores() {
    let workload = workload();
    let reference =
        write_trace(&Simulator::new(google_config(SchedulerCore::Reference, 4)).run(&workload));

    // Checkpoint under each core; the snapshot format sorts queued
    // events into canonical order, so the files must match byte for
    // byte — proof the calendar queue holds exactly the heap's state.
    let mut files = Vec::new();
    for (tag, core) in [
        ("ref", SchedulerCore::Reference),
        ("opt", SchedulerCore::Optimized),
    ] {
        let path = ckpt_path(tag);
        let options = CheckpointOptions {
            path: path.clone(),
            every: EVERY,
            retain_all: false,
            die_after: None,
        };
        let (trace, _) = Simulator::new(google_config(core, 4))
            .run_checkpointed(&workload, None, Some(&options), None)
            .expect("checkpointed run succeeds");
        assert_eq!(
            write_trace(&trace),
            reference,
            "{tag}: checkpointing altered the trace"
        );
        files.push(std::fs::read(&path).expect("checkpoint file readable"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(
        files[0], files[1],
        "checkpoint bytes differ between scheduler cores"
    );

    // Cross-core resume: a run interrupted under one core finishes
    // byte-identically under the other, in both directions. The loaded
    // checkpoint is a mid-run state (t = 14400 of 21600), so the resumed
    // half replays through the calendar queue / heap from a restored
    // snapshot rather than from empty.
    let path = ckpt_path("cross");
    let options = CheckpointOptions {
        path: path.clone(),
        every: EVERY,
        retain_all: false,
        die_after: None,
    };
    for (from, to) in [
        (SchedulerCore::Reference, SchedulerCore::Optimized),
        (SchedulerCore::Optimized, SchedulerCore::Reference),
    ] {
        Simulator::new(google_config(from, 4))
            .run_checkpointed(&workload, None, Some(&options), None)
            .expect("checkpointed run succeeds");
        let ckpt = load_checkpoint(&path).expect("checkpoint loads");
        assert!(ckpt.at > 0 && ckpt.at < HORIZON, "mid-run boundary");
        let (trace, _) = Simulator::new(google_config(to, 4))
            .run_checkpointed(&workload, None, None, Some(&ckpt))
            .expect("cross-core resume succeeds");
        assert_eq!(
            write_trace(&trace),
            reference,
            "resume {from:?} -> {to:?} diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}
