//! End-to-end integration: generator → simulator → characterization.

use cloudgrid::core::hostload::host_comparison;
use cloudgrid::core::workload::{submission_analysis, task_length_analysis};
use cloudgrid::prelude::*;

fn small_google_trace(seed: u64) -> Trace {
    let machines = 12;
    let workload = GoogleWorkload::scaled_for_hostload(machines, 12 * HOUR).generate(seed);
    Simulator::new(SimConfig::google(FleetConfig::google(machines))).run(&workload)
}

#[test]
fn full_pipeline_produces_complete_report() {
    let trace = small_google_trace(1);
    let report = characterize(&trace);
    assert_eq!(report.system, "google");
    let hostload = report.hostload.as_ref().expect("sim trace has host series");
    assert_eq!(hostload.max_loads.len(), 4);
    assert_eq!(hostload.queue_runs.intervals.len(), 6);
    assert_eq!(hostload.cpu_level_runs.rows.len(), 5);
    assert!(hostload.comparison.is_some());
    assert!(report.workload.job_length.is_some());
    assert!(report.workload.submission.is_some());
    assert!(report.workload.task_length.is_some());
}

#[test]
fn report_round_trips_through_json() {
    let trace = small_google_trace(2);
    let report = characterize(&trace);
    let json = serde_json::to_string(&report).expect("serialize");
    let back: CharacterizationReport = serde_json::from_str(&json).expect("deserialize");
    // ECDF internals are skipped in serde; compare stable summaries.
    assert_eq!(back.system, report.system);
    assert_eq!(
        back.workload.priorities.total_tasks(),
        report.workload.priorities.total_tasks()
    );
    let a = back.hostload.as_ref().unwrap().comparison.as_ref().unwrap();
    let b = report
        .hostload
        .as_ref()
        .unwrap()
        .comparison
        .as_ref()
        .unwrap();
    assert_eq!(a.cpu_mean_utilization, b.cpu_mean_utilization);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = characterize(&small_google_trace(3));
    let b = characterize(&small_google_trace(3));
    assert_eq!(a, b);
}

#[test]
fn trace_io_round_trip_on_simulated_trace() {
    let trace = small_google_trace(4);
    let text = cloudgrid::trace::io::write_trace(&trace);
    let parsed = cloudgrid::trace::io::read_trace(&text).expect("parse back");
    assert_eq!(parsed, trace);
}

#[test]
fn cloud_beats_grid_on_submission_rate_and_loses_on_length() {
    let horizon = 3 * DAY;
    let google = GoogleWorkload {
        horizon,
        ..GoogleWorkload::full_scale()
    }
    .generate(5)
    .into_workload_trace();
    let grid = GridWorkload {
        horizon,
        ..GridWorkload::full_scale(GridSystem::AuverGrid)
    }
    .generate(5)
    .into_workload_trace();

    let gs = submission_analysis(&google).unwrap();
    let as_ = submission_analysis(&grid).unwrap();
    assert!(
        gs.rate.avg > 5.0 * as_.rate.avg,
        "google {} vs grid {}",
        gs.rate.avg,
        as_.rate.avg
    );
    assert!(gs.rate.fairness > as_.rate.fairness);

    let gt = task_length_analysis(&google).unwrap();
    let at = task_length_analysis(&grid).unwrap();
    // Grid tasks are longer on average, but Google's longest dwarf the
    // grid's (paper: max 29 days vs 18 days).
    assert!(at.summary.mean > gt.summary.mean);
    assert!(gt.summary.max > at.summary.max);
    // Google's mass-count disparity is more extreme (smaller mass side).
    assert!(gt.masscount.joint_mass_pct < at.masscount.joint_mass_pct);
}

#[test]
fn cloud_grid_host_load_contrast() {
    let machines = 12;
    let g_trace = small_google_trace(6);
    // Grid host load needs a standing backlog before nodes stay pegged;
    // give it two days and discard the first.
    let grid_workload =
        GridWorkload::scaled(GridSystem::AuverGrid, 2 * DAY, machines as f64 / 30.0).generate(6);
    let a_trace =
        Simulator::new(SimConfig::grid(FleetConfig::homogeneous(machines))).run(&grid_workload);

    let g = host_comparison(&g_trace, 36).unwrap();
    let a = host_comparison(&a_trace, (DAY / 300) as usize).unwrap();
    assert!(
        g.memory_mean_utilization > g.cpu_mean_utilization,
        "cloud must be memory-heavy: {g:?}"
    );
    assert!(
        a.cpu_mean_utilization > a.memory_mean_utilization,
        "grid must be cpu-heavy: {a:?}"
    );
    assert!(
        g.cpu_noise.mean > 2.0 * a.cpu_noise.mean,
        "google {g:?} vs grid {a:?}"
    );
}

#[test]
fn queue_timeline_agrees_with_completion_counts() {
    let trace = small_google_trace(7);
    // Summing per-machine terminal finished/abnormal counts over all
    // machines must reproduce the global completion tally.
    let mut finished = 0u64;
    let mut abnormal = 0u64;
    for m in &trace.machines {
        let tl = QueueTimeline::for_machine(&trace, m.id);
        let end = tl.at(trace.horizon);
        finished += end.finished as u64;
        abnormal += end.abnormal as u64;
    }
    let counts = trace.completion_counts();
    assert_eq!(finished, counts.finish);
    assert_eq!(abnormal, counts.abnormal());
}
