//! Text ⇄ binary format equivalence: the columnar container is a second
//! serialization of the *same* records, not a second data model.
//!
//! Pinned here, on a real simulated trace:
//!
//! - **Round-trip identity**: text → binary → text reproduces the text
//!   byte-for-byte (floats are stored as exact bit patterns in the
//!   container, and the text formatter is shortest-round-trip, so no
//!   precision is ever shed), and binary → text → binary reproduces the
//!   container byte-for-byte.
//! - **Report identity**: `characterize` yields byte-identical JSON
//!   whether the trace was materialized from text or binary, through the
//!   sequential or the parallel reader; the streaming path
//!   (`characterize_stream` on text, `characterize_stream_columnar` on
//!   the container) agrees with both, at several batch sizes.
//!
//! Together these keep the text format authoritative for import/export
//! while letting every pipeline stage pick the binary container for
//! speed without anyone downstream being able to tell the difference.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::sim::{FaultConfig, SimConfig, Simulator};
use cloudgrid::trace::io::{read_trace, read_trace_parallel, write_trace};
use cloudgrid::trace::{
    read_trace_columnar, read_trace_columnar_parallel, write_trace_columnar, Trace,
};
use cloudgrid::{characterize, characterize_stream, characterize_stream_columnar, StreamOptions};
use std::sync::OnceLock;

/// One simulated trace with machines, jobs, tasks, events, and usage
/// samples — every section of both formats populated.
fn fixture() -> &'static Trace {
    static FIXTURE: OnceLock<Trace> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let workload = GoogleWorkload::scaled_for_hostload(25, 2 * 3_600).generate(7);
        let config = SimConfig::google(FleetConfig::google(25)).with_faults(FaultConfig::google());
        Simulator::new(config).run(&workload)
    })
}

#[test]
fn text_to_binary_to_text_is_byte_identical() {
    let trace = fixture();
    let text = write_trace(trace);
    let via_binary = write_trace(
        &read_trace_columnar(&write_trace_columnar(&read_trace(&text).expect("text parses")))
            .expect("container parses"),
    );
    assert_eq!(via_binary, text, "text → binary → text must be lossless");
}

#[test]
fn binary_to_text_to_binary_is_byte_identical() {
    let trace = fixture();
    let binary = write_trace_columnar(trace);
    let via_text = write_trace_columnar(
        &read_trace(&write_trace(
            &read_trace_columnar(&binary).expect("container parses"),
        ))
        .expect("text parses"),
    );
    assert_eq!(via_text, binary, "binary → text → binary must be lossless");
}

#[test]
fn all_readers_materialize_the_same_trace() {
    let trace = fixture();
    let text = write_trace(trace);
    let binary = write_trace_columnar(trace);
    assert_eq!(&read_trace(&text).unwrap(), trace);
    assert_eq!(&read_trace_parallel(&text).unwrap(), trace);
    assert_eq!(&read_trace_columnar(&binary).unwrap(), trace);
    assert_eq!(&read_trace_columnar_parallel(&binary).unwrap(), trace);
}

#[test]
fn reports_are_byte_identical_across_formats_and_paths() {
    let trace = fixture();
    let text = write_trace(trace);
    let binary = write_trace_columnar(trace);
    let json = |report: &cloudgrid::CharacterizationReport| {
        serde_json::to_string(report).expect("report serializes")
    };

    // In-memory, from either format, either reader.
    let reference = json(&characterize(trace));
    assert_eq!(
        json(&characterize(&read_trace_parallel(&text).unwrap())),
        reference
    );
    assert_eq!(
        json(&characterize(&read_trace_columnar_parallel(&binary).unwrap())),
        reference
    );

    // Streaming, both formats, several batch sizes. Streaming reports
    // skip host-load sections, so they are compared to each other (and
    // their workload section to the in-memory report's).
    let whole = characterize(trace);
    for batch_records in [64, 1 << 20] {
        let opts = StreamOptions {
            batch_records,
            approx: false,
        };
        let (from_text, _) =
            characterize_stream(std::io::Cursor::new(&text), &opts).expect("text streams");
        let (from_binary, _) =
            characterize_stream_columnar(&binary, &opts).expect("container streams");
        assert_eq!(
            json(&from_binary),
            json(&from_text),
            "stream reports must match across formats (batch size {batch_records})"
        );
        assert_eq!(
            serde_json::to_string(&from_binary.workload).unwrap(),
            serde_json::to_string(&whole.workload).unwrap(),
            "streamed workload section must match the in-memory one"
        );
    }
}

#[test]
fn container_is_deterministic() {
    // Two writes of the same trace are byte-identical — containers can be
    // content-addressed and diffed, like the text format.
    let trace = fixture();
    assert_eq!(write_trace_columnar(trace), write_trace_columnar(trace));
}
