//! Sim-time telemetry and span-export contracts.
//!
//! Two properties pin the observability layer's fidelity:
//!
//! 1. **Engine ≡ replay.** The live probe inside the engine and
//!    [`cloudgrid::telemetry_from_trace`] replaying the emitted trace use
//!    the same sim-time tick rule, so every field a trace can express —
//!    per-band pending depth, running count, and the three histograms —
//!    must match exactly. (Free capacity, heap size, and blacklist size
//!    are engine-internal and differ by design.)
//! 2. **Chrome Trace Event export is loadable.** A `ChromeTraceWriter`
//!    fed by a real characterization run must produce a strict JSON
//!    array whose events carry the fields Perfetto requires, with child
//!    spans pointing at a live parent id.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::obs::{add_observer, flush_observers, ChromeTraceWriter};
use cloudgrid::sim::{FaultConfig, SimConfig, Simulator};
use cloudgrid::telemetry_from_trace;
use std::sync::Arc;

const MACHINES: usize = 60;
const HORIZON: u64 = 6 * 3_600;
const INTERVAL: u64 = 300;

#[test]
fn engine_and_replay_telemetry_agree_on_trace_derivable_fields() {
    // Faults on: evictions, machine-down kills, and resubmits must all
    // reconcile between the probe's life-cycle hooks and the event log.
    let config = SimConfig::google(FleetConfig::google(MACHINES))
        .with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
        .with_shards(4);
    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(7);
    let (trace, engine) = Simulator::new(config).run_with_telemetry(&workload, INTERVAL);
    let replay = telemetry_from_trace(&trace, INTERVAL);

    assert_eq!(engine.source, "simulation");
    assert_eq!(replay.source, "trace-replay");
    assert_eq!(engine.bands, replay.bands);
    assert_eq!(engine.timeline.len(), replay.timeline.len());
    assert_eq!(engine.timeline.len() as u64, HORIZON.div_ceil(INTERVAL));
    for (e, r) in engine.timeline.iter().zip(&replay.timeline) {
        assert_eq!(e.t, r.t);
        assert_eq!(e.pending, r.pending, "pending diverged at t={}", e.t);
        assert_eq!(e.running, r.running, "running diverged at t={}", e.t);
    }
    assert_eq!(engine.queue_delay, replay.queue_delay);
    assert_eq!(engine.resubmit_wait, replay.resubmit_wait);
    assert_eq!(engine.run_length, replay.run_length);

    // The scenario must actually exercise the histograms, or the
    // equality above proves nothing.
    let placements: u64 = engine.queue_delay.iter().map(|h| h.count()).sum();
    assert!(placements > 0, "no first placements recorded");
    assert!(engine.run_length.count() > 0, "no attempts recorded");
    assert!(
        engine.resubmit_wait.count() > 0,
        "faults should force resubmits"
    );
    assert!(engine.timeline.iter().any(|s| s.running > 0));
}

/// One Chrome Trace Event, as Perfetto reads it. Unknown fields are
/// ignored, so this stays valid as the exporter grows.
#[derive(serde::Deserialize)]
struct Event {
    name: String,
    ph: String,
    ts: f64,
    #[serde(default)]
    dur: f64,
    #[serde(default)]
    args: Option<Args>,
}

#[derive(serde::Deserialize, Default)]
struct Args {
    #[serde(default)]
    id: Option<u64>,
    #[serde(default)]
    parent: Option<u64>,
}

#[test]
fn chrome_trace_export_is_a_loadable_event_array() {
    let path = std::env::temp_dir().join(format!("cgc-telemetry-test-{}.json", std::process::id()));
    add_observer(Arc::new(
        ChromeTraceWriter::create(&path).expect("trace file creates"),
    ));

    // Drive real spans through the observer: a simulation plus the full
    // characterization (whose analysis spans re-parent across rayon).
    let config = SimConfig::google(FleetConfig::google(16)).with_shards(2);
    let workload = GoogleWorkload::scaled_for_hostload(16, 3_600).generate(3);
    let trace = Simulator::new(config).run(&workload);
    let report = cloudgrid::characterize(&trace);
    assert_eq!(report.system, "google");
    flush_observers();

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);
    let events: Vec<Event> = serde_json::from_str(&text).expect("strict JSON array");

    assert!(
        events.iter().any(|e| e.ph == "M"),
        "missing process-name metadata event"
    );
    let spans: Vec<&Event> = events.iter().filter(|e| e.ph == "X").collect();
    assert!(!spans.is_empty(), "no complete events exported");
    for e in &spans {
        assert!(!e.name.is_empty());
        assert!(e.ts >= 0.0 && e.dur >= 0.0, "{}: negative time", e.name);
        assert!(
            e.args.as_ref().and_then(|a| a.id).is_some(),
            "{}: span without id",
            e.name
        );
    }
    // The characterize root must exist and have children attached to its
    // id — the explicit re-parenting across the rayon fork.
    let root = spans
        .iter()
        .find(|e| e.name == "characterize")
        .expect("characterize span exported");
    let root_id = root.args.as_ref().unwrap().id.unwrap();
    assert!(
        spans
            .iter()
            .any(|e| e.args.as_ref().and_then(|a| a.parent) == Some(root_id)),
        "no span is parented under characterize"
    );
}
