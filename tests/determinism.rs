//! Thread-count independence of the sharded simulator.
//!
//! The shard count is part of the simulated model; the thread count is an
//! execution knob. These tests pin the contract from DESIGN.md §5: for a
//! fixed `(seed, shards)`, the emitted trace is **bit-identical** however
//! many worker threads run it — with and without fault injection — and
//! `shards: 1` reproduces the pre-sharding engine exactly.

use cloudgrid::gen::{FleetConfig, GoogleWorkload};
use cloudgrid::sim::{FaultConfig, SimConfig, Simulator};
use cloudgrid::trace::io::write_trace;

const MACHINES: usize = 60;
const HORIZON: u64 = 6 * 3_600;

fn google_config(faults: bool) -> SimConfig {
    let config = SimConfig::google(FleetConfig::google(MACHINES));
    if faults {
        // A scripted outage on top of the random schedule, so the
        // domain-aligned outage path is exercised deterministically too.
        config.with_faults(FaultConfig::google().with_outage(1, 3_600, 900))
    } else {
        config
    }
}

fn run_text(config: SimConfig) -> String {
    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(7);
    write_trace(&Simulator::new(config).run(&workload))
}

#[test]
fn sharded_trace_is_bit_identical_across_thread_counts() {
    for faults in [false, true] {
        let reference = run_text(google_config(faults).with_shards(4).with_threads(1));
        for threads in [2, 8] {
            let got = run_text(google_config(faults).with_shards(4).with_threads(threads));
            assert_eq!(
                got, reference,
                "threads={threads} faults={faults} diverged from the single-thread run"
            );
        }
    }
}

#[test]
fn single_shard_matches_the_pre_sharding_engine_regardless_of_threads() {
    // shards == 1 takes the legacy single-engine path; the thread knob
    // must be a no-op there as well.
    for faults in [false, true] {
        let reference = run_text(google_config(faults));
        let threaded = run_text(google_config(faults).with_threads(8));
        assert_eq!(threaded, reference, "faults={faults}");
    }
}

#[test]
fn every_reader_agrees_on_a_full_simulated_trace() {
    use cloudgrid::trace::io::{
        read_trace, read_trace_from, read_trace_lenient, read_trace_lenient_from,
        read_trace_parallel,
    };
    let text = run_text(google_config(true).with_shards(4));
    let sequential = read_trace(&text).expect("simulator emits a valid trace");
    assert_eq!(read_trace_from(text.as_bytes()).unwrap(), sequential);
    assert_eq!(read_trace_parallel(&text).unwrap(), sequential);
    let lenient = read_trace_lenient(&text);
    assert!(lenient.warnings.is_empty());
    assert_eq!(lenient.trace, sequential);
    assert_eq!(read_trace_lenient_from(text.as_bytes()).trace, sequential);
}

#[test]
fn instrumentation_never_changes_the_trace() {
    // The observability layer must be a pure observer: with metrics
    // enabled, every thread count still emits the reference bytes.
    // (Counter determinism itself lives in tests/metrics.rs, which owns
    // the process-global registry; here other tests run concurrently.)
    let reference = run_text(google_config(true).with_shards(4).with_threads(1));
    cloudgrid::obs::set_enabled(true);
    for threads in [1, 2, 8] {
        let got = run_text(google_config(true).with_shards(4).with_threads(threads));
        assert_eq!(
            got, reference,
            "threads={threads}: instrumentation altered the output bytes"
        );
    }
}

#[test]
fn telemetry_is_deterministic_and_a_pure_observer() {
    // The telemetry probe is keyed on sim-time, so its bundle — f64
    // capacity sums included — must be bit-identical across thread
    // counts, and attaching it must not perturb the emitted trace.
    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(7);
    let reference_trace = run_text(google_config(true).with_shards(4).with_threads(1));
    let mut reference_bundle: Option<String> = None;
    for threads in [1, 2, 8] {
        let config = google_config(true).with_shards(4).with_threads(threads);
        let (trace, bundle) = Simulator::new(config).run_with_telemetry(&workload, 300);
        assert_eq!(
            write_trace(&trace),
            reference_trace,
            "threads={threads}: the telemetry probe altered the trace"
        );
        let json = serde_json::to_string_pretty(&bundle).expect("bundle serializes");
        match &reference_bundle {
            None => reference_bundle = Some(json),
            Some(reference) => assert_eq!(
                &json, reference,
                "threads={threads}: telemetry bundle diverged"
            ),
        }
    }
}

#[test]
fn streaming_report_is_independent_of_batch_size_and_run() {
    use cloudgrid::{characterize_stream, StreamOptions};
    use std::io::Cursor;

    let text = run_text(google_config(true).with_shards(4));
    let reference = {
        let (report, _) =
            characterize_stream(Cursor::new(text.as_bytes()), &StreamOptions::default())
                .expect("simulator emits a valid trace");
        serde_json::to_string(&report).unwrap()
    };
    // Batch size is an execution knob, not a model parameter: any chunking
    // of the record stream — and any repeat run — must emit the same bytes.
    for batch_records in [1, 64, 4_096, usize::MAX] {
        let opts = StreamOptions {
            batch_records,
            ..StreamOptions::default()
        };
        let (report, stats) = characterize_stream(Cursor::new(text.as_bytes()), &opts)
            .expect("simulator emits a valid trace");
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            reference,
            "batch_records={batch_records} diverged"
        );
        assert_eq!(stats.bytes_read as usize, text.len());
    }
}

#[test]
fn fused_report_is_identical_to_the_file_roundtrip_across_threads_and_batches() {
    // The fused pipeline — simulator records fanned through the bounded
    // channel straight into the analysis passes — must produce the same
    // report bytes as characterizing a written-then-reread trace, in
    // both serializations, for every thread count and any batch size.
    // The tee'd text sink must simultaneously reproduce the sealed
    // writer's bytes, so one emission pass serves both consumers.
    use cloudgrid::core::characterize_batches;
    use cloudgrid::trace::io::write_trace_sealed;
    use cloudgrid::trace::{
        sim_batch_channel, write_trace_columnar, TextWriterSink, DEFAULT_BATCH_RECORDS,
        DEFAULT_CHANNEL_BATCHES,
    };
    use cloudgrid::{characterize_stream, characterize_stream_columnar, StreamOptions};

    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(7);
    let opts = StreamOptions::default();

    // Reference: one simulation, characterized through both on-disk
    // formats — which must already agree with each other.
    let reference_trace =
        Simulator::new(google_config(true).with_shards(4).with_threads(1)).run(&workload);
    let sealed = write_trace_sealed(&reference_trace);
    let binary = write_trace_columnar(&reference_trace);
    let (text_report, _) =
        characterize_stream(sealed.as_bytes(), &opts).expect("sealed text roundtrip parses");
    let reference_json = serde_json::to_string(&text_report).unwrap();
    let (binary_report, _) =
        characterize_stream_columnar(&binary, &opts).expect("binary roundtrip parses");
    assert_eq!(
        serde_json::to_string(&binary_report).unwrap(),
        reference_json,
        "text and binary roundtrips disagree before fusion is even involved"
    );

    for threads in [1usize, 2, 8] {
        for batch_records in [997, DEFAULT_BATCH_RECORDS] {
            let (mut sink, batches) = sim_batch_channel(batch_records, DEFAULT_CHANNEL_BATCHES);
            let config = google_config(true).with_shards(4).with_threads(threads);
            let workload = &workload;
            let ((trace, teed), (fused, stats)) = std::thread::scope(|scope| {
                let producer = scope.spawn(move || {
                    let mut tee = TextWriterSink::sealed();
                    let trace = Simulator::new(config)
                        .run_with_sinks(workload, &mut [&mut sink, &mut tee])
                        .expect("consumer stays subscribed");
                    (trace, tee.into_string())
                });
                let consumed = characterize_batches(batches, &opts).expect("fused stream is clean");
                (producer.join().expect("producer thread"), consumed)
            });
            assert_eq!(
                serde_json::to_string(&fused).unwrap(),
                reference_json,
                "threads={threads} batch={batch_records}: fused report diverged from the roundtrip"
            );
            assert_eq!(
                teed, sealed,
                "threads={threads} batch={batch_records}: tee'd text diverged from the sealed writer"
            );
            assert_eq!(stats.jobs as usize, trace.jobs.len());
            assert_eq!(stats.tasks as usize, trace.tasks.len());
            assert_eq!(stats.events as usize, trace.events.len());
        }
    }
}

#[test]
fn live_observability_surfaces_never_change_the_artifacts() {
    // The gen-3 surfaces — progress probe, heartbeat sampler, flight
    // recorder — are wall-clock observers of the run, so with all three
    // armed the trace bytes, the characterization report, and the
    // telemetry bundle must match a plain run exactly, at every thread
    // count. This is the PR's core acceptance criterion: observability
    // must be free of observable effect on the artifacts.
    use cloudgrid::{characterize_stream, StreamOptions};

    let workload = GoogleWorkload::scaled(MACHINES, HORIZON).generate(7);

    // Reference artifacts from a plain run, surfaces off.
    let reference_trace = run_text(google_config(true).with_shards(4).with_threads(1));
    let (reference_report, _) =
        characterize_stream(reference_trace.as_bytes(), &StreamOptions::default())
            .expect("reference trace parses");
    let reference_report = serde_json::to_string(&reference_report).unwrap();
    let reference_bundle = {
        let config = google_config(true).with_shards(4).with_threads(1);
        let (_, bundle) = Simulator::new(config).run_with_telemetry(&workload, 300);
        serde_json::to_string_pretty(&bundle).expect("bundle serializes")
    };

    // Arm everything: flight recorder (span-ring observer), fast
    // heartbeat (progress probe + sampler thread), metrics.
    let dir = std::env::temp_dir().join(format!("cgc-obs-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    cloudgrid::obs::set_enabled(true);
    cloudgrid::obs::install_flight_recorder(&dir.join("fr.json"));
    let heartbeat = cloudgrid::obs::start_heartbeat(cloudgrid::obs::HeartbeatOptions {
        path: Some(dir.join("hb.jsonl")),
        interval: std::time::Duration::from_millis(10),
    })
    .expect("heartbeat file creatable");

    for threads in [1, 2, 8] {
        let config = google_config(true).with_shards(4).with_threads(threads);
        let (trace, bundle) = Simulator::new(config).run_with_telemetry(&workload, 300);
        assert_eq!(
            write_trace(&trace),
            reference_trace,
            "threads={threads}: surfaces altered the trace bytes"
        );
        assert_eq!(
            serde_json::to_string_pretty(&bundle).expect("bundle serializes"),
            reference_bundle,
            "threads={threads}: surfaces altered the telemetry bundle"
        );
        let (report, _) =
            characterize_stream(write_trace(&trace).as_bytes(), &StreamOptions::default())
                .expect("probed trace parses");
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            reference_report,
            "threads={threads}: surfaces altered the report"
        );
    }

    heartbeat.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_count_is_a_model_parameter_not_an_execution_detail() {
    // Different shard counts are *allowed* to produce different traces
    // (they are different models); what must hold is that every shard
    // count yields a valid trace with the same workload skeleton.
    let reference = run_text(google_config(true).with_shards(1));
    for shards in [2, 4, 8] {
        let text = run_text(google_config(true).with_shards(shards));
        let trace = cloudgrid::trace::io::read_trace(&text).expect("sharded trace is valid");
        let base = cloudgrid::trace::io::read_trace(&reference).expect("baseline trace is valid");
        assert_eq!(
            trace.machines, base.machines,
            "fleet must not depend on sharding"
        );
        assert_eq!(trace.jobs.len(), base.jobs.len());
        assert_eq!(trace.tasks.len(), base.tasks.len());
    }
}
