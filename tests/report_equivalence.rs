//! Golden equivalence of the pass-driver report.
//!
//! The analysis-pass refactor promises that `characterize` — one shared
//! sweep feeding every registered pass — produces JSON byte-identical to
//! the old function-per-figure scans, and that `characterize_stream`
//! reproduces the workload section from disk without materializing the
//! trace. These tests pin both promises on a cloud and a grid preset.

use cloudgrid::core::hostload::{
    host_comparison, max_load_distribution, queue_runlengths, usage_level_runs, usage_masscount,
};
use cloudgrid::core::report::{HostloadSection, WorkloadSection};
use cloudgrid::core::workload::{
    job_cpu_usage, job_length_analysis, job_memory_mb, priority_histogram, resubmission_analysis,
    submission_analysis, task_length_analysis,
};
use cloudgrid::prelude::*;
use cloudgrid::trace::usage::UsageAttribute;
use cloudgrid::StreamOptions;
use std::io::Cursor;

/// Fig. 7 bin count and Fig. 9 sample period, as fixed by `characterize`.
const MAX_LOAD_BINS: usize = 25;
const QUEUE_SAMPLE_PERIOD: u64 = 60;

fn google_preset() -> Trace {
    let machines = 12;
    let workload = GoogleWorkload::scaled_for_hostload(machines, 12 * HOUR).generate(21);
    Simulator::new(SimConfig::google(FleetConfig::google(machines))).run(&workload)
}

fn grid_preset() -> Trace {
    let machines = 12;
    let workload =
        GridWorkload::scaled(GridSystem::AuverGrid, 2 * DAY, machines as f64 / 30.0).generate(22);
    Simulator::new(SimConfig::grid(FleetConfig::homogeneous(machines))).run(&workload)
}

/// The old report driver, reassembled from the direct analysis functions.
fn direct_workload(trace: &Trace) -> WorkloadSection {
    WorkloadSection {
        priorities: priority_histogram(trace),
        job_length: job_length_analysis(trace),
        submission: submission_analysis(trace),
        task_length: task_length_analysis(trace),
        cpu_usage: job_cpu_usage(trace).map(|e| Summary::of(e.values())),
        memory_mb_at_32gb: job_memory_mb(trace, 32.0).map(|e| Summary::of(e.values())),
        resubmission: resubmission_analysis(trace),
    }
}

fn direct_hostload(trace: &Trace) -> Option<HostloadSection> {
    if !trace.host_series.iter().any(|s| !s.is_empty()) {
        return None;
    }
    Some(HostloadSection {
        max_loads: UsageAttribute::ALL
            .iter()
            .map(|&attr| max_load_distribution(trace, attr, MAX_LOAD_BINS))
            .collect(),
        queue_runs: queue_runlengths(trace, QUEUE_SAMPLE_PERIOD),
        cpu_level_runs: usage_level_runs(trace, UsageAttribute::Cpu, None),
        memory_level_runs: usage_level_runs(trace, UsageAttribute::MemoryUsed, None),
        cpu_masscount: usage_masscount(trace, UsageAttribute::Cpu, None),
        cpu_masscount_high: usage_masscount(
            trace,
            UsageAttribute::Cpu,
            Some(PriorityClass::Middle),
        ),
        memory_masscount: usage_masscount(trace, UsageAttribute::MemoryUsed, None),
        memory_masscount_high: usage_masscount(
            trace,
            UsageAttribute::MemoryUsed,
            Some(PriorityClass::Middle),
        ),
        comparison: host_comparison(trace, 0),
    })
}

#[test]
fn pass_driver_matches_direct_analyses_byte_for_byte() {
    for trace in [google_preset(), grid_preset()] {
        let report = characterize(&trace);
        let direct = CharacterizationReport {
            system: trace.system.clone(),
            workload: direct_workload(&trace),
            hostload: direct_hostload(&trace),
        };
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "report diverged from direct analyses on {}",
            trace.system
        );
    }
}

#[test]
fn fused_emission_is_byte_identical_to_the_streamed_report() {
    // The fused channel path — records emitted straight into the passes,
    // no serialization anywhere — must reproduce the streamed workload
    // section exactly, on a cloud and a grid preset, at any batch size.
    use cloudgrid::core::characterize_batches;
    use cloudgrid::trace::{emit_trace, sim_batch_channel};

    for trace in [google_preset(), grid_preset()] {
        let in_memory = characterize(&trace);
        for batch_records in [997, StreamOptions::default().batch_records] {
            let (mut sink, batches) = sim_batch_channel(batch_records, 4);
            let opts = StreamOptions::default();
            let trace_ref = &trace;
            let (emitted, (fused, stats)) = std::thread::scope(|scope| {
                let producer = scope.spawn(move || emit_trace(trace_ref, &mut [&mut sink]));
                let consumed = characterize_batches(batches, &opts).expect("fused stream is clean");
                (producer.join().expect("producer thread"), consumed)
            });
            emitted.expect("consumer stays subscribed");
            assert_eq!(fused.system, in_memory.system);
            assert!(
                fused.hostload.is_none(),
                "fused mode must skip host-load sections like streaming does"
            );
            assert_eq!(
                serde_json::to_string(&fused.workload).unwrap(),
                serde_json::to_string(&in_memory.workload).unwrap(),
                "fused workload section diverged on {} (batch {batch_records})",
                trace.system
            );
            assert_eq!(stats.jobs as usize, trace.jobs.len());
            assert_eq!(
                stats.samples as usize,
                trace
                    .host_series
                    .iter()
                    .map(|s| s.samples.len())
                    .sum::<usize>()
            );
        }
    }
}

#[test]
fn streaming_workload_section_is_byte_identical() {
    for trace in [google_preset(), grid_preset()] {
        let in_memory = characterize(&trace);
        let text = cloudgrid::trace::io::write_trace(&trace);
        for batch_records in [997, StreamOptions::default().batch_records] {
            let opts = StreamOptions {
                batch_records,
                ..StreamOptions::default()
            };
            let (streamed, stats) =
                cloudgrid::characterize_stream(Cursor::new(text.as_bytes()), &opts)
                    .expect("stream parses its own writer output");
            assert_eq!(streamed.system, in_memory.system);
            assert!(
                streamed.hostload.is_none(),
                "streaming mode must skip host-load sections"
            );
            assert_eq!(
                serde_json::to_string(&streamed.workload).unwrap(),
                serde_json::to_string(&in_memory.workload).unwrap(),
                "streamed workload section diverged on {} (batch {batch_records})",
                trace.system
            );
            assert_eq!(stats.jobs as usize, trace.jobs.len());
            assert_eq!(stats.tasks as usize, trace.tasks.len());
            assert_eq!(stats.events as usize, trace.events.len());
        }
    }
}
