//! Capacity planning: size a fleet for a target workload.
//!
//! The paper motivates host-load characterization with capacity planning:
//! knowing how load distributes lets an operator choose how many machines
//! a workload needs. This example fixes a workload (a Google-like stream
//! sized for 24 machines) and sweeps fleet sizes, reporting queueing and
//! utilization so the knee is visible.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use cloudgrid::prelude::*;
use cloudgrid::trace::task::TaskEventKind;

/// Mean task scheduling delay (submit → schedule), in seconds.
fn mean_wait(trace: &Trace) -> f64 {
    let mut submit_time = vec![None; trace.tasks.len()];
    let mut total = 0.0;
    let mut n = 0u64;
    for e in &trace.events {
        match e.kind {
            TaskEventKind::Submit => submit_time[e.task.index()] = Some(e.time),
            TaskEventKind::Schedule => {
                if let Some(t) = submit_time[e.task.index()].take() {
                    total += (e.time - t) as f64;
                    n += 1;
                }
            }
            _ => {}
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn mean_cpu_utilization(trace: &Trace) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for s in &trace.host_series {
        let m = &trace.machines[s.machine.index()];
        for sample in &s.samples {
            sum += sample.cpu.total() / m.cpu_capacity;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    // The demand side is fixed: a stream sized for 24 machines.
    let workload = GoogleWorkload::scaled_for_hostload(24, DAY).generate(11);
    println!(
        "workload: {} jobs, {} tasks over one day\n",
        workload.jobs.len(),
        workload.num_tasks()
    );
    println!(
        "{:>8}  {:>10}  {:>9}  {:>9}  {:>9}",
        "machines", "mean wait", "cpu util", "evictions", "unfinished"
    );

    for machines in [12usize, 16, 20, 24, 32, 48] {
        let config = SimConfig::google(FleetConfig::google(machines));
        let trace = Simulator::new(config).run(&workload);
        let wait = mean_wait(&trace);
        let util = mean_cpu_utilization(&trace);
        let evictions = trace
            .events
            .iter()
            .filter(|e| e.kind == TaskEventKind::Evict)
            .count();
        let unfinished = trace
            .tasks
            .iter()
            .filter(|t| t.outcome == cloudgrid::trace::task::TaskOutcome::Unfinished)
            .count();
        println!(
            "{machines:>8}  {:>9.1}s  {:>8.1}%  {evictions:>9}  {unfinished:>10}",
            wait,
            100.0 * util
        );
    }

    println!(
        "\nReading the table: undersized fleets trade utilization for queueing\n\
         delay and eviction churn; the knee marks the efficient fleet size."
    );
}
