//! Importing a real archive log: Standard Workload Format → full
//! characterization.
//!
//! The paper's grid side comes from the Parallel Workload Archive, whose
//! logs are published in SWF. This example writes a small synthetic SWF
//! file, imports it with `cgc_trace::swf`, and runs the work-load half of
//! the characterization pipeline on it — the exact workflow for analyzing
//! a real downloaded log (e.g. `ANL-Intrepid-2009-1.swf`):
//!
//! ```text
//! cargo run --release --example import_swf [path/to/log.swf]
//! ```

use cloudgrid::prelude::*;
use cloudgrid::trace::swf::{read_swf_trace, SwfImportOptions};

/// A tiny batch-cluster day in SWF, for when no real log is supplied.
fn synthetic_swf() -> String {
    let mut out =
        String::from("; Version: 2.2\n; Computer: synthetic batch cluster\n; UnixStartTime: 0\n");
    // 120 jobs over a day: mostly serial hour-scale work, some wide jobs,
    // an occasional failure/cancellation.
    for i in 0..120u64 {
        let submit = i * 700;
        let wait = (i % 7) * 45;
        let run = 1_800 + (i % 11) * 1_400;
        let procs = [1, 1, 1, 2, 4, 1, 8][(i % 7) as usize];
        let status = if i % 17 == 0 { 0 } else { 1 };
        let user = i % 9;
        out.push_str(&format!(
            "{} {} {} {} {} {} {} {} {} -1 {} {} 1 -1 1 -1 -1 -1\n",
            i + 1,
            submit,
            wait,
            run,
            procs,
            run - 60,
            262_144 * procs,
            procs,
            run + 600,
            status,
            user,
        ));
    }
    out
}

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no SWF path given; using a synthetic 120-job log)\n");
            synthetic_swf()
        }
    };

    let options = SwfImportOptions {
        system: "swf-import".into(),
        ..SwfImportOptions::default()
    };
    let trace = read_swf_trace(&text, &options).expect("valid SWF");
    println!(
        "imported {} jobs / {} tasks over {:.1} hours",
        trace.jobs.len(),
        trace.tasks.len(),
        trace.horizon as f64 / HOUR as f64
    );

    // The characterization pipeline is agnostic to where the trace came
    // from: the work-load analyses run as on any generated trace.
    let report = characterize(&trace);
    println!("\n{report}");

    // Per-analysis access works too — e.g. the mass-count disparity of
    // this log's run times, comparable to the paper's Fig. 4(b).
    if let Some(tl) = &report.workload.task_length {
        println!(
            "task-length joint ratio {} (AuverGrid in the paper: 24/76)",
            tl.masscount.joint_ratio_label()
        );
    }
}
