//! Cloud-versus-grid comparison: the paper's headline contrasts on a
//! small scale.
//!
//! Reproduces, in miniature, the four key differences Section VI lists:
//! job length, submission frequency/fairness, per-job resource usage, and
//! host-load noise.
//!
//! ```text
//! cargo run --release --example cloud_vs_grid
//! ```

use cloudgrid::core::hostload::host_comparison;
use cloudgrid::core::workload::{job_length_analysis, submission_analysis, task_length_analysis};
use cloudgrid::prelude::*;

fn main() {
    let horizon = 5 * DAY;

    // --- Work load: generators at the full published submission rates.
    let google = GoogleWorkload {
        horizon,
        ..GoogleWorkload::full_scale()
    }
    .generate(1)
    .into_workload_trace();
    let grid = GridWorkload {
        horizon,
        ..GridWorkload::full_scale(GridSystem::AuverGrid)
    }
    .generate(1)
    .into_workload_trace();

    println!("=== work load (google vs auvergrid) ===");
    for trace in [&google, &grid] {
        let jl = job_length_analysis(trace).expect("finished jobs");
        let sub = submission_analysis(trace).expect("submissions");
        let tl = task_length_analysis(trace).expect("tasks ran");
        println!(
            "{:<10} F(1000s)={:.2}  jobs/h avg={:<6.0} fairness={:.2}  task joint ratio {}",
            trace.system,
            jl.frac_under_1000s,
            sub.rate.avg,
            sub.rate.fairness,
            tl.masscount.joint_ratio_label(),
        );
    }

    // --- Host load: replay both through the simulator.
    let machines = 32;
    let g_sim = Simulator::new(SimConfig::google(FleetConfig::google(machines)))
        .run(&GoogleWorkload::scaled_for_hostload(machines, 2 * DAY).generate(2));
    let a_sim = Simulator::new(SimConfig::grid(FleetConfig::homogeneous(machines))).run(
        &GridWorkload::scaled(GridSystem::AuverGrid, 2 * DAY, machines as f64 / 30.0).generate(2),
    );

    println!("\n=== host load ===");
    let skip = (DAY / 300) as usize; // discard the warm-up day
    let gc = host_comparison(&g_sim, skip).expect("google host series");
    let ac = host_comparison(&a_sim, skip).expect("grid host series");
    for c in [&gc, &ac] {
        println!(
            "{:<10} cpu={:.0}% mem={:.0}%  cpu-noise mean={:.4}",
            c.system,
            100.0 * c.cpu_mean_utilization,
            100.0 * c.memory_mean_utilization,
            c.cpu_noise.mean,
        );
    }
    println!(
        "\ncloud noise is {:.1}x grid noise (paper: ~20x)",
        gc.cpu_noise.mean / ac.cpu_noise.mean.max(1e-9)
    );
    println!(
        "cloud: memory above CPU ({}); grid: CPU above memory ({})",
        gc.memory_mean_utilization > gc.cpu_mean_utilization,
        ac.cpu_mean_utilization > ac.memory_mean_utilization,
    );
}
