//! Host-load prediction — the paper's Section VI future work, made
//! runnable.
//!
//! Trains nothing offline: every predictor is an online one-step-ahead
//! estimator evaluated walk-forward over each machine's CPU-load series.
//! The punchline matches the characterization: grid load is almost free to
//! predict, cloud load is an order of magnitude harder, and no fancy model
//! beats last-value by much — the noise is irreducible at 5-minute
//! granularity.
//!
//! ```text
//! cargo run --release --example load_prediction
//! ```

use cloudgrid::core::predict::{fleet_prediction_error, PredictorKind};
use cloudgrid::prelude::*;
use cloudgrid::trace::usage::UsageAttribute;

fn main() {
    let machines = 24;
    let horizon = 2 * DAY;

    println!("simulating cloud and grid clusters ({machines} machines, 2 days)...");
    let cloud = Simulator::new(SimConfig::google(FleetConfig::google(machines)))
        .run(&GoogleWorkload::scaled_for_hostload(machines, horizon).generate(3));
    let grid = Simulator::new(SimConfig::grid(FleetConfig::homogeneous(machines))).run(
        &GridWorkload::scaled(GridSystem::AuverGrid, horizon, machines as f64 / 30.0).generate(3),
    );

    let skip = (DAY / 300) as usize; // discard the warm-up day
    let warmup = 48; // 4 hours of history before scoring

    println!(
        "\n{:<18}  {:>12}  {:>12}  {:>8}",
        "predictor", "cloud RMSE", "grid RMSE", "ratio"
    );
    let mut best: Option<(String, f64)> = None;
    for kind in PredictorKind::all_default() {
        let c = fleet_prediction_error(&cloud, UsageAttribute::Cpu, kind, skip, warmup);
        let g = fleet_prediction_error(&grid, UsageAttribute::Cpu, kind, skip, warmup);
        println!(
            "{:<18}  {:>12.4}  {:>12.4}  {:>7.0}x",
            kind.label(),
            c.rmse(),
            g.rmse(),
            c.rmse() / g.rmse().max(1e-9)
        );
        if best.as_ref().is_none_or(|(_, e)| c.rmse() < *e) {
            best = Some((kind.label(), c.rmse()));
        }
    }

    let (name, rmse) = best.expect("predictors ran");
    println!(
        "\nBest cloud predictor: {name} (RMSE {rmse:.4} of capacity).\n\
         The gap to the grid column is the paper's conclusion in one table:\n\
         cloud host load is noisy and weakly autocorrelated, so even the\n\
         best short-window predictor cannot get close to grid accuracy."
    );

    // Memory is the easy half of the cloud prediction problem (Tables II
    // vs III: memory dwells ~10 minutes per band, CPU ~6).
    let cpu = fleet_prediction_error(
        &cloud,
        UsageAttribute::Cpu,
        PredictorKind::LastValue,
        skip,
        warmup,
    );
    let mem = fleet_prediction_error(
        &cloud,
        UsageAttribute::MemoryUsed,
        PredictorKind::LastValue,
        skip,
        warmup,
    );
    println!(
        "\ncloud last-value RMSE: cpu {:.4} vs memory {:.4} — memory moves slower,\n\
         exactly as the paper's run-length tables (II vs III) say.",
        cpu.rmse(),
        mem.rmse()
    );
}
