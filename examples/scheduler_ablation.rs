//! Placement-policy ablation: how the paper's "balance the demand"
//! scheduler shapes host load.
//!
//! Section II describes the Google scheduler as preferring the "best"
//! (least-loaded) machine to balance demand. This example replays the same
//! workload under the three placement policies the simulator supports and
//! compares the resulting host-load spread — making the design choice the
//! paper attributes to Google measurable.
//!
//! ```text
//! cargo run --release --example scheduler_ablation
//! ```

use cloudgrid::prelude::*;
use cloudgrid::stats::Summary;
use cloudgrid::trace::usage::UsageAttribute;

fn max_load_spread(trace: &Trace) -> (Summary, usize) {
    let maxima: Vec<f64> = trace
        .host_series
        .iter()
        .map(|s| {
            let m = &trace.machines[s.machine.index()];
            s.max_attribute(UsageAttribute::Cpu) / m.cpu_capacity
        })
        .collect();
    let busy = maxima.iter().filter(|&&v| v > 0.05).count();
    (Summary::of(&maxima), busy)
}

fn main() {
    let machines = 32;
    let workload = GoogleWorkload::scaled_for_hostload(machines, 12 * HOUR).generate(5);

    println!(
        "{:<12}  {:>9}  {:>9}  {:>9}  {:>10}",
        "policy", "mean max", "min max", "max max", "busy hosts"
    );
    for (name, policy) in [
        ("balance", PlacementPolicy::LoadBalance),
        ("best-fit", PlacementPolicy::BestFit),
        ("first-fit", PlacementPolicy::FirstFit),
    ] {
        let config = SimConfig::google(FleetConfig::google(machines)).with_placement(policy);
        let trace = Simulator::new(config).run(&workload);
        let (spread, busy) = max_load_spread(&trace);
        println!(
            "{name:<12}  {:>9.2}  {:>9.2}  {:>9.2}  {busy:>7}/{machines}",
            spread.mean, spread.min, spread.max
        );
    }

    println!(
        "\nLoad balancing spreads peak load across every host (the paper's\n\
         'approximately optimal resource utilization'); best-fit packs a few\n\
         hosts to their peaks and leaves the rest idle."
    );
}
