//! Quickstart: generate a cloud workload, simulate it, characterize it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudgrid::prelude::*;

fn main() {
    // 1. A Google-like workload for a 32-machine fleet over one day.
    //    `scaled_for_hostload` preserves the real trace's per-machine task
    //    density (tens of running tasks per machine, warm services).
    let machines = 32;
    let workload = GoogleWorkload::scaled_for_hostload(machines, DAY).generate(42);
    println!(
        "generated {} jobs / {} tasks over one day",
        workload.jobs.len(),
        workload.num_tasks()
    );

    // 2. Replay it through the cluster simulator: priority-preemptive
    //    scheduling, load-balancing placement, failure injection, and
    //    5-minute usage sampling, exactly as the paper describes the
    //    Google cluster.
    let config = SimConfig::google(FleetConfig::google(machines));
    let trace = Simulator::new(config).run(&workload);
    println!(
        "simulated: {} events, {} host series",
        trace.events.len(),
        trace.host_series.len()
    );

    // 3. Run the paper's entire characterization battery.
    let report = characterize(&trace);
    println!("\n{report}");

    // 4. Individual analyses are available piecemeal, e.g. the queue
    //    timeline of machine 0 (paper Fig. 8):
    let timeline = QueueTimeline::for_machine(&trace, MachineId(0));
    let end = timeline.at(trace.horizon - 1);
    println!(
        "machine m0 at end of day: {} running, {} finished, {} abnormal",
        end.running, end.finished, end.abnormal
    );

    // 5. Reports serialize to JSON for downstream tooling.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("\nreport JSON is {} bytes", json.len());
}
