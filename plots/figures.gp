# gnuplot figures.gp  (run inside the plots directory)
set terminal pngcairo size 900,600
set key bottom right

set output 'fig3.png'
set title 'Fig. 3 - CDF of job length'
set xlabel 'Job length (s)'; set ylabel 'CDF'; set yrange [0:1]
plot for [i=2:9] 'fig3.dat' using 1:i with lines title columnheader(i)

set output 'fig4_google.png'
set title 'Fig. 4a - mass-count of task length (google)'
set xlabel 'Task execution time (days)'; set ylabel 'CDF'
plot 'fig4_google.dat' using 1:2 with lines title 'count', \
     'fig4_google.dat' using 1:3 with lines title 'mass'

set output 'fig4_auvergrid.png'
set title 'Fig. 4b - mass-count of task length (auvergrid)'
plot 'fig4_auvergrid.dat' using 1:2 with lines title 'count', \
     'fig4_auvergrid.dat' using 1:3 with lines title 'mass'

set output 'fig5.png'
set title 'Fig. 5 - CDF of submission interval'
set xlabel 'Interval (s)'; set ylabel 'CDF'
plot for [i=2:9] 'fig5.dat' using 1:i with lines title columnheader(i)

set output 'fig6a.png'
set title 'Fig. 6a - per-job CPU usage'
set xlabel 'CPU utilization (processors)'; set ylabel 'CDF'
plot 'fig6a.dat' using 1:2 with lines title 'google', \
     'fig6a.dat' using 1:3 with lines title 'auvergrid', \
     'fig6a.dat' using 1:4 with lines title 'das-2'

set output 'fig6b.png'
set title 'Fig. 6b - per-job memory usage'
set xlabel 'Memory (MB)'; set ylabel 'CDF'
plot 'fig6b.dat' using 1:2 with lines title 'google@32GB', \
     'fig6b.dat' using 1:3 with lines title 'google@64GB', \
     'fig6b.dat' using 1:4 with lines title 'auvergrid'

set output 'fig13_google.png'
set title 'Fig. 13 - host load (google, machine 0)'
set xlabel 'Time (day)'; set ylabel 'Relative usage'; set yrange [0:1]
plot 'fig13_google.dat' using 1:2 with lines title 'cpu', \
     'fig13_google.dat' using 1:3 with lines title 'mem'

set output 'fig13_auvergrid.png'
set title 'Fig. 13 - host load (auvergrid, machine 0)'
plot 'fig13_auvergrid.dat' using 1:2 with lines title 'cpu', \
     'fig13_auvergrid.dat' using 1:3 with lines title 'mem'
