//! End-to-end tests of the cluster simulator.

use cgc_gen::workload::{JobSpec, TaskSpec, Workload};
use cgc_gen::{FleetConfig, GoogleWorkload, GridSystem, GridWorkload};
use cgc_sim::{OutcomeModel, PlacementPolicy, SimConfig, Simulator};
use cgc_trace::task::{TaskEventKind, TaskOutcome};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{Demand, MachineId, Priority, QueueTimeline, UserId, HOUR};

fn tiny_task(runtime: u64, cpu: f64, mem: f64) -> TaskSpec {
    TaskSpec {
        demand: Demand::new(cpu, mem),
        runtime,
        cpu_processors: cpu * 8.0,
        utilization: 0.8,
    }
}

fn manual_workload(jobs: Vec<JobSpec>) -> Workload {
    Workload {
        system: "manual".into(),
        horizon: 6 * HOUR,
        jobs,
    }
}

fn all_finish_config(machines: usize) -> SimConfig {
    let mut c = SimConfig::google(FleetConfig::homogeneous(machines));
    c.outcome = OutcomeModel::always_finish();
    c.schedule_latency = 0;
    // Exact nominal packing so capacity/preemption assertions are sharp.
    c.cpu_overcommit = 1.0;
    c.memory_headroom = 1.0;
    c
}

#[test]
fn single_task_runs_to_completion() {
    let w = manual_workload(vec![JobSpec {
        submit: 100,
        user: UserId(0),
        priority: Priority::from_level(5),
        tasks: vec![tiny_task(1_000, 0.1, 0.1)],
    }]);
    let trace = Simulator::new(all_finish_config(2)).run(&w);
    assert_eq!(trace.tasks.len(), 1);
    let t = &trace.tasks[0];
    assert_eq!(t.outcome, TaskOutcome::Finished);
    assert_eq!(t.attempts, 1);
    assert_eq!(t.execution_time, 1_000);
    // Job completes 1000 s after its (immediate) scheduling.
    assert_eq!(trace.jobs[0].length(), Some(1_000));
    // Formula 4: cpu_processors × runtime / wallclock.
    let usage = trace.jobs[0].cpu_usage().unwrap();
    assert!((usage - 0.8).abs() < 1e-9, "usage={usage}");
}

#[test]
fn demand_packing_respects_capacity() {
    // 10 tasks of 0.3 CPU on one machine of capacity 1.0: at most 3 run
    // concurrently; the rest wait in the pending queue.
    let jobs = (0..10)
        .map(|i| JobSpec {
            submit: 10 + i,
            user: UserId(0),
            priority: Priority::from_level(5),
            tasks: vec![tiny_task(600, 0.3, 0.01)],
        })
        .collect();
    let trace = Simulator::new(all_finish_config(1)).run(&manual_workload(jobs));
    let tl = QueueTimeline::for_machine(&trace, MachineId(0));
    let peak_running = tl.steps.iter().map(|s| s.1.running).max().unwrap();
    assert!(peak_running <= 3, "peak={peak_running}");
    // Everything eventually finishes.
    assert!(trace
        .tasks
        .iter()
        .all(|t| t.outcome == TaskOutcome::Finished));
    // And some tasks had to wait (pending queue was non-empty at times).
    let peak_pending = tl.steps.iter().map(|s| s.1.pending).max().unwrap();
    assert!(peak_pending > 0);
}

#[test]
fn high_priority_preempts_low() {
    // Saturate the single machine with low-priority work, then submit a
    // high-priority task that only fits by eviction.
    let mut jobs: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec {
            submit: i,
            user: UserId(0),
            priority: Priority::from_level(2),
            tasks: vec![tiny_task(5 * 3_600, 0.3, 0.1)],
        })
        .collect();
    jobs.push(JobSpec {
        submit: 1_000,
        user: UserId(1),
        priority: Priority::from_level(10),
        tasks: vec![tiny_task(600, 0.5, 0.1)],
    });
    let trace = Simulator::new(all_finish_config(1)).run(&manual_workload(jobs));
    let evictions = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Evict)
        .count();
    assert!(evictions >= 1, "expected at least one eviction");
    // The high-priority task ran and finished.
    let hi = trace
        .tasks
        .iter()
        .find(|t| t.priority == Priority::from_level(10))
        .unwrap();
    assert_eq!(hi.outcome, TaskOutcome::Finished);
    // Evicted tasks were resubmitted (attempts > 1 for at least one).
    assert!(trace.tasks.iter().any(|t| t.attempts > 1));
}

#[test]
fn no_preemption_in_grid_mode() {
    let mut config = SimConfig::grid(FleetConfig::homogeneous(1));
    config.outcome = OutcomeModel::always_finish();
    let mut jobs: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec {
            submit: i,
            user: UserId(0),
            priority: Priority::from_level(2),
            tasks: vec![tiny_task(3_600, 0.3, 0.1)],
        })
        .collect();
    jobs.push(JobSpec {
        submit: 1_000,
        user: UserId(1),
        priority: Priority::from_level(10),
        tasks: vec![tiny_task(600, 0.5, 0.1)],
    });
    let trace = Simulator::new(config).run(&manual_workload(jobs));
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| e.kind == TaskEventKind::Evict)
            .count(),
        0
    );
}

#[test]
fn samples_cover_horizon_and_respect_capacity() {
    let w = GoogleWorkload::scaled_for_hostload(8, 6 * HOUR).generate(2);
    let config = SimConfig::google(FleetConfig::google(8));
    let trace = Simulator::new(config).run(&w);
    assert_eq!(trace.host_series.len(), 8);
    for series in &trace.host_series {
        // 6 hours at 300 s = 72 samples.
        assert_eq!(series.len(), 72);
        let m = &trace.machines[series.machine.index()];
        for s in &series.samples {
            assert!(s.cpu.total() <= m.cpu_capacity + 1e-9);
            assert!(s.memory_used.total() <= m.memory_capacity + 1e-9);
            assert!(s.page_cache >= 0.0);
            assert!(s.page_cache <= m.memory_capacity + 1e-9);
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let w = GoogleWorkload::scaled_for_hostload(5, 3 * HOUR).generate(9);
    let config = SimConfig::google(FleetConfig::google(5)).with_seed(77);
    let a = Simulator::new(config.clone()).run(&w);
    let b = Simulator::new(config).run(&w);
    assert_eq!(a, b);
}

#[test]
fn abnormal_completion_mix_close_to_paper() {
    let w = GoogleWorkload::scaled_for_hostload(20, 12 * HOUR).generate(4);
    let config = SimConfig::google(FleetConfig::google(20));
    let trace = Simulator::new(config).run(&w);
    let c = trace.completion_counts();
    assert!(c.total() > 300, "too few completions: {}", c.total());
    let abnormal = c.abnormal_fraction();
    // Paper: 59.2% abnormal. Accept a band (evictions are emergent).
    assert!((abnormal - 0.55).abs() < 0.12, "abnormal={abnormal}");
    let fail_share = c.fail_share_of_abnormal();
    assert!((fail_share - 0.5).abs() < 0.2, "fail share={fail_share}");
}

#[test]
fn google_host_load_shape() {
    // Memory usage should sit above CPU usage on average (the paper's
    // Fig. 13 contrast), and CPU should be well below capacity. Services
    // are warm-started, so one simulated day suffices.
    let w = GoogleWorkload::scaled_for_hostload(12, 24 * HOUR).generate(6);
    let config = SimConfig::google(FleetConfig::google(12));
    let trace = Simulator::new(config).run(&w);
    let mut cpu_util = 0.0;
    let mut mem_util = 0.0;
    let mut n = 0.0;
    for series in &trace.host_series {
        let m = &trace.machines[series.machine.index()];
        // Skip six warm-up hours.
        for s in &series.samples[72.min(series.len())..] {
            cpu_util += s.cpu.total() / m.cpu_capacity;
            mem_util += s.memory_used.total() / m.memory_capacity;
            n += 1.0;
        }
    }
    let cpu = cpu_util / n;
    let mem = mem_util / n;
    assert!(mem > cpu, "mem={mem} cpu={cpu}");
    assert!(cpu < 0.6, "cpu={cpu}");
    assert!(cpu > 0.08, "cpu={cpu}");
}

#[test]
fn grid_host_load_is_cpu_heavy() {
    let w = GridWorkload::scaled(GridSystem::AuverGrid, 24 * HOUR, 0.2).generate(3);
    let config = SimConfig::grid(FleetConfig::homogeneous(16));
    let trace = Simulator::new(config).run(&w);
    let mut cpu_util = 0.0;
    let mut mem_util = 0.0;
    let mut n = 0.0;
    for series in &trace.host_series {
        for s in &series.samples[24.min(series.len())..] {
            cpu_util += s.cpu.total();
            mem_util += s.memory_used.total();
            n += 1.0;
        }
    }
    let cpu = cpu_util / n;
    let mem = mem_util / n;
    assert!(cpu > mem, "grid should be CPU-bound: cpu={cpu} mem={mem}");
}

#[test]
fn placement_policies_differ() {
    let w = GoogleWorkload::scaled_for_hostload(10, 6 * HOUR).generate(5);
    let base = SimConfig::google(FleetConfig::google(10));
    let lb = Simulator::new(base.clone().with_placement(PlacementPolicy::LoadBalance)).run(&w);
    let bf = Simulator::new(base.with_placement(PlacementPolicy::BestFit)).run(&w);
    // Best-fit concentrates load: its per-machine max CPU spread differs
    // from load-balancing. The traces must at least not be identical.
    let max_loads = |t: &cgc_trace::Trace| {
        t.host_series
            .iter()
            .map(|s| s.max_attribute(UsageAttribute::Cpu))
            .collect::<Vec<_>>()
    };
    assert_ne!(max_loads(&lb), max_loads(&bf));
    // Load balancing should spread work onto more machines.
    let busy = |loads: &[f64]| loads.iter().filter(|&&v| v > 0.01).count();
    assert!(busy(&max_loads(&lb)) >= busy(&max_loads(&bf)));
}

#[test]
fn trace_passes_io_round_trip() {
    let w = GoogleWorkload::scaled_for_hostload(4, 2 * HOUR).generate(8);
    let config = SimConfig::google(FleetConfig::google(4));
    let trace = Simulator::new(config).run(&w);
    let text = cgc_trace::io::write_trace(&trace);
    let parsed = cgc_trace::io::read_trace(&text).unwrap();
    assert_eq!(parsed, trace);
}

#[test]
fn lost_tasks_are_terminal() {
    let mut config = all_finish_config(2);
    config.outcome = OutcomeModel {
        p_fail: 0.0,
        p_kill: 0.0,
        p_lost: 1.0,
    };
    let w = manual_workload(vec![JobSpec {
        submit: 0,
        user: UserId(0),
        priority: Priority::from_level(3),
        tasks: vec![tiny_task(1_000, 0.1, 0.1)],
    }]);
    let trace = Simulator::new(config).run(&w);
    assert_eq!(trace.tasks[0].outcome, TaskOutcome::Lost);
    assert_eq!(trace.tasks[0].attempts, 1);
}

#[test]
fn failed_tasks_retry_until_budget() {
    let mut config = all_finish_config(2);
    config.outcome = OutcomeModel {
        p_fail: 1.0,
        p_kill: 0.0,
        p_lost: 0.0,
    };
    config.max_resubmits = 2;
    let w = manual_workload(vec![JobSpec {
        submit: 0,
        user: UserId(0),
        priority: Priority::from_level(3),
        tasks: vec![tiny_task(1_000, 0.1, 0.1)],
    }]);
    let trace = Simulator::new(config).run(&w);
    // Initial attempt + 2 resubmits.
    assert_eq!(trace.tasks[0].attempts, 3);
    assert_eq!(trace.tasks[0].outcome, TaskOutcome::Failed);
    let fails = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Fail)
        .count();
    assert_eq!(fails, 3);
}

#[test]
fn machine_churn_fails_tasks_and_silences_machines() {
    let mut config = all_finish_config(4);
    config.machine_failures_per_day = 8.0; // aggressive, for test signal
    config.outage_duration = (1_800, 3_600);
    let jobs = (0..40)
        .map(|i| JobSpec {
            submit: i * 60,
            user: UserId(0),
            priority: Priority::from_level(5),
            tasks: vec![tiny_task(4 * 3_600, 0.1, 0.05)],
        })
        .collect();
    let trace = Simulator::new(config).run(&manual_workload(jobs));

    // Outages manifest as Fail events even though the outcome model never
    // fails anything.
    let fails = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Fail)
        .count();
    assert!(fails > 0, "expected machine-outage failures");
    // Down machines report all-zero samples.
    let zero_samples = trace
        .host_series
        .iter()
        .flat_map(|s| &s.samples)
        .filter(|s| s.cpu.total() == 0.0 && s.memory_used.total() == 0.0)
        .count();
    assert!(zero_samples > 0);
    // Failed tasks were retried.
    assert!(trace.tasks.iter().any(|t| t.attempts > 1));
}

#[test]
fn zero_churn_rate_means_no_outage_failures() {
    let config = all_finish_config(2);
    assert_eq!(config.machine_failures_per_day, 0.0);
    let jobs = (0..10)
        .map(|i| JobSpec {
            submit: i * 100,
            user: UserId(0),
            priority: Priority::from_level(5),
            tasks: vec![tiny_task(600, 0.1, 0.05)],
        })
        .collect();
    let trace = Simulator::new(config).run(&manual_workload(jobs));
    assert_eq!(trace.completion_counts().fail, 0);
    assert!(trace
        .tasks
        .iter()
        .all(|t| t.outcome == TaskOutcome::Finished));
}
