//! Focused scheduler-behavior tests: latency, priority order, overcommit,
//! and headroom semantics.

use cgc_gen::workload::{JobSpec, TaskSpec, Workload};
use cgc_gen::FleetConfig;
use cgc_sim::{OutcomeModel, PlacementPolicy, SimConfig, Simulator};
use cgc_trace::task::TaskEventKind;
use cgc_trace::{Demand, Priority, UserId, HOUR};

fn task(runtime: u64, cpu: f64, mem: f64) -> TaskSpec {
    TaskSpec {
        demand: Demand::new(cpu, mem),
        runtime,
        cpu_processors: cpu * 8.0,
        utilization: 0.5,
    }
}

fn job(submit: u64, level: u8, tasks: Vec<TaskSpec>) -> JobSpec {
    JobSpec {
        submit,
        user: UserId(0),
        priority: Priority::from_level(level),
        tasks,
    }
}

fn config() -> SimConfig {
    let mut c = SimConfig::google(FleetConfig::homogeneous(1));
    c.outcome = OutcomeModel::always_finish();
    c.schedule_latency = 0;
    c.cpu_overcommit = 1.0;
    c.memory_headroom = 1.0;
    c
}

fn run(config: SimConfig, jobs: Vec<JobSpec>) -> cgc_trace::Trace {
    Simulator::new(config).run(&Workload {
        system: "t".into(),
        horizon: 6 * HOUR,
        jobs,
    })
}

fn schedule_time(trace: &cgc_trace::Trace, task_idx: u32) -> Option<u64> {
    trace
        .events
        .iter()
        .find(|e| e.kind == TaskEventKind::Schedule && e.task.0 == task_idx)
        .map(|e| e.time)
}

#[test]
fn schedule_latency_delays_first_placement() {
    let mut c = config();
    c.schedule_latency = 120;
    let trace = run(c, vec![job(1_000, 5, vec![task(600, 0.2, 0.1)])]);
    assert_eq!(schedule_time(&trace, 0), Some(1_120));
}

#[test]
fn zero_latency_places_immediately() {
    let trace = run(config(), vec![job(1_000, 5, vec![task(600, 0.2, 0.1)])]);
    assert_eq!(schedule_time(&trace, 0), Some(1_000));
}

#[test]
fn higher_priority_jumps_the_queue() {
    // Fill the machine, then queue one low- and one high-priority task;
    // when space frees, the high-priority task goes first even though it
    // was submitted later.
    let jobs = vec![
        job(0, 5, vec![task(1_000, 1.0, 0.1)]), // occupies everything
        job(10, 2, vec![task(600, 0.6, 0.1)]),  // queued low
        job(20, 9, vec![task(600, 0.6, 0.1)]),  // queued high, later
    ];
    let trace = run(config(), jobs);
    let low = schedule_time(&trace, 1);
    let high = schedule_time(&trace, 2);
    // With preemption on, the high-priority task evicts the filler right
    // away rather than waiting.
    assert!(high < low, "high={high:?} low={low:?}");
}

#[test]
fn fcfs_within_equal_priority() {
    let jobs = vec![
        job(0, 5, vec![task(1_000, 1.0, 0.1)]),
        job(10, 5, vec![task(100, 0.9, 0.1)]),
        job(20, 5, vec![task(100, 0.9, 0.1)]),
    ];
    let trace = run(config(), jobs);
    let first = schedule_time(&trace, 1).unwrap();
    let second = schedule_time(&trace, 2).unwrap();
    assert!(first < second, "first={first} second={second}");
}

#[test]
fn cpu_overcommit_packs_beyond_nominal() {
    let mut c = config();
    c.cpu_overcommit = 2.0;
    // Four 0.5-CPU tasks on a 1.0-CPU machine: all run concurrently.
    let jobs = (0..4)
        .map(|i| job(i, 5, vec![task(600, 0.5, 0.05)]))
        .collect();
    let trace = run(c, jobs);
    let start_times: Vec<u64> = (0..4).map(|i| schedule_time(&trace, i).unwrap()).collect();
    assert!(start_times.iter().all(|&t| t < 10), "{start_times:?}");
}

#[test]
fn memory_headroom_blocks_full_packing() {
    let mut c = config();
    c.memory_headroom = 0.5;
    // Two 0.3-memory tasks: only one fits within the 0.5 headroom.
    let jobs = vec![
        job(0, 5, vec![task(600, 0.1, 0.3)]),
        job(1, 5, vec![task(600, 0.1, 0.3)]),
    ];
    let trace = run(c, jobs);
    let a = schedule_time(&trace, 0).unwrap();
    let b = schedule_time(&trace, 1).unwrap();
    assert!(b >= a + 600, "second must wait for the first: a={a} b={b}");
}

#[test]
fn load_balance_prefers_emptier_machine() {
    let mut c = SimConfig::google(FleetConfig::homogeneous(2));
    c.outcome = OutcomeModel::always_finish();
    c.schedule_latency = 0;
    c.placement = PlacementPolicy::LoadBalance;
    let jobs = vec![
        job(0, 5, vec![task(3_600, 0.4, 0.1)]),
        job(10, 5, vec![task(3_600, 0.4, 0.1)]),
    ];
    let trace = Simulator::new(c).run(&Workload {
        system: "t".into(),
        horizon: 2 * HOUR,
        jobs,
    });
    let machines: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Schedule)
        .map(|e| e.machine.unwrap())
        .collect();
    assert_ne!(
        machines[0], machines[1],
        "load balance must spread the two tasks"
    );
}

#[test]
fn best_fit_stacks_one_machine() {
    let mut c = SimConfig::google(FleetConfig::homogeneous(2));
    c.outcome = OutcomeModel::always_finish();
    c.schedule_latency = 0;
    c.placement = PlacementPolicy::BestFit;
    let jobs = vec![
        job(0, 5, vec![task(3_600, 0.4, 0.1)]),
        job(10, 5, vec![task(3_600, 0.4, 0.1)]),
    ];
    let trace = Simulator::new(c).run(&Workload {
        system: "t".into(),
        horizon: 2 * HOUR,
        jobs,
    });
    let machines: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Schedule)
        .map(|e| e.machine.unwrap())
        .collect();
    assert_eq!(
        machines[0], machines[1],
        "best fit must pack the same machine"
    );
}

#[test]
fn sample_period_controls_series_resolution() {
    let mut c = config();
    c.sample_period = 600;
    let trace = run(c, vec![job(0, 5, vec![task(600, 0.2, 0.1)])]);
    // 6 h horizon at 600 s = 36 samples.
    assert_eq!(trace.host_series[0].len(), 36);
    assert_eq!(trace.host_series[0].period, 600);
}

#[test]
fn eviction_respects_strict_priority_only() {
    // Equal priority never preempts, even when the machine is full.
    let jobs = vec![
        job(0, 5, vec![task(3_600, 1.0, 0.1)]),
        job(10, 5, vec![task(600, 0.5, 0.1)]),
    ];
    let trace = run(config(), jobs);
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| e.kind == TaskEventKind::Evict)
            .count(),
        0
    );
    // The queued task waits for the first to finish.
    assert!(schedule_time(&trace, 1).unwrap() >= 3_600);
}
