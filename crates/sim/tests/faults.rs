//! Integration tests of the fault-injection layer: correlated domain
//! outages, crash-loopers, retry backoff, and blacklisting.

use cgc_gen::workload::{JobSpec, TaskSpec, Workload};
use cgc_gen::FleetConfig;
use cgc_sim::{FaultConfig, OutcomeModel, RetryPolicy, SimConfig, Simulator};
use cgc_trace::task::{TaskEventKind, TaskOutcome};
use cgc_trace::{MachineId, Priority, Timestamp, Trace, UserId, HOUR};

fn tiny_task(runtime: u64, cpu: f64, mem: f64) -> TaskSpec {
    TaskSpec {
        demand: cgc_trace::Demand::new(cpu, mem),
        runtime,
        cpu_processors: cpu * 8.0,
        utilization: 0.8,
    }
}

fn manual_workload(horizon: u64, jobs: Vec<JobSpec>) -> Workload {
    Workload {
        system: "manual".into(),
        horizon,
        jobs,
    }
}

/// Exact-packing config with a deterministic outcome model, so every
/// abnormal event in these tests comes from the fault layer.
fn quiet_config(fleet: FleetConfig) -> SimConfig {
    let mut c = SimConfig::google(fleet);
    c.outcome = OutcomeModel::always_finish();
    c.schedule_latency = 0;
    c.cpu_overcommit = 1.0;
    c.memory_headroom = 1.0;
    c
}

/// Per-task Schedule-event times, in file (= simulation) order.
fn schedule_times(trace: &Trace) -> Vec<Vec<Timestamp>> {
    let mut times = vec![Vec::new(); trace.tasks.len()];
    for e in &trace.events {
        if e.kind == TaskEventKind::Schedule {
            times[e.task.index()].push(e.time);
        }
    }
    times
}

const OUTAGE_AT: Timestamp = 3_600;
const OUTAGE_LEN: u64 = 1_800;

/// A scripted rack outage: every machine of the domain goes dark at the
/// same instant, their tasks fail and are resubmitted with backoff, and
/// the machines report zero usage until they return to service.
#[test]
fn scripted_rack_outage_downs_whole_domain() {
    // 6 machines, 3 per domain: domain 0 = {0,1,2}, domain 1 = {3,4,5}.
    let fleet = FleetConfig::homogeneous(6).with_domains(3);
    let faults = FaultConfig::none()
        .with_outage(0, OUTAGE_AT, OUTAGE_LEN)
        .with_retry(RetryPolicy {
            base: 30,
            max: 960,
            jitter: 0.0,
        });
    let config = quiet_config(fleet).with_faults(faults);
    let budget = 1 + config.max_resubmits;
    // 12 long tasks: load-balancing spreads two onto each machine, so the
    // whole fleet is busy when the rack dies.
    let jobs = (0..12)
        .map(|i| JobSpec {
            submit: i,
            user: UserId(0),
            priority: Priority::from_level(5),
            tasks: vec![tiny_task(4 * HOUR, 0.3, 0.1)],
        })
        .collect();
    let trace = Simulator::new(config).run(&manual_workload(3 * HOUR, jobs));

    // Every machine of domain 0 — and only domain 0 — fails running tasks
    // at the outage instant.
    let failed_on: std::collections::BTreeSet<usize> = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Fail && e.time == OUTAGE_AT)
        .filter_map(|e| e.machine.map(MachineId::index))
        .collect();
    assert_eq!(
        failed_on,
        [0, 1, 2].into(),
        "the whole rack must fail simultaneously"
    );

    // During the outage the downed machines report all-zero samples while
    // the surviving domain keeps working (300 s sampling grid).
    let sample = |mi: usize, t: Timestamp| &trace.host_series[mi].samples[(t / 300) as usize];
    for t in [3_900, 4_200, 4_500, 4_800, 5_100] {
        for mi in 0..3 {
            let s = sample(mi, t);
            assert_eq!(s.cpu.total(), 0.0, "machine {mi} must be silent at {t}");
            assert_eq!(s.memory_used.total(), 0.0);
        }
        assert!(
            (3..6).any(|mi| sample(mi, t).cpu.total() > 0.0),
            "the surviving domain must keep running at {t}"
        );
    }
    // Before the outage the rack was busy; after MachineUp it takes work
    // again (the displaced tasks do not all fit in the surviving domain).
    assert!((0..3).all(|mi| sample(mi, 3_300).cpu.total() > 0.0));
    let after = OUTAGE_AT + OUTAGE_LEN + 300;
    assert!(
        (0..3).any(|mi| sample(mi, after).cpu.total() > 0.0),
        "recovered machines must be schedulable again"
    );

    // Every task that died in the outage was resubmitted within budget,
    // with backoff: no two attempts of one task scheduled in the same
    // second.
    let mut resubmitted = 0;
    for (ti, times) in schedule_times(&trace).iter().enumerate() {
        let t = &trace.tasks[ti];
        assert!(t.attempts <= budget, "task {ti} exceeded its budget");
        for pair in times.windows(2) {
            assert!(
                pair[1] > pair[0],
                "task {ti} rescheduled in the same second: {pair:?}"
            );
        }
        if t.attempts > 1 {
            resubmitted += 1;
            // The retry waited at least the configured base delay.
            assert!(t.resubmit_wait >= 30, "task {ti} retried without backoff");
        }
    }
    assert!(resubmitted >= 6, "all rack tasks should have retried");
}

/// Crash-loopers fail every attempt and are cut off by the Borg-style
/// attempt cap, with exponentially-backed-off, never-same-second retries.
#[test]
fn crash_loopers_are_throttled_and_backed_off() {
    let mut faults = FaultConfig::none();
    faults.crash_loop_fraction = 1.0; // every task loops, for test signal
    faults.crash_loop_attempt_cap = 6;
    faults.retry = RetryPolicy {
        base: 5,
        max: 160,
        jitter: 0.5,
    };
    let config = quiet_config(FleetConfig::homogeneous(2)).with_faults(faults);
    let jobs = (0..4)
        .map(|i| JobSpec {
            submit: i * 50,
            user: UserId(0),
            priority: Priority::from_level(5),
            tasks: vec![tiny_task(600, 0.2, 0.1)],
        })
        .collect();
    let trace = Simulator::new(config).run(&manual_workload(6 * HOUR, jobs));

    for (ti, t) in trace.tasks.iter().enumerate() {
        assert_eq!(t.outcome, TaskOutcome::Failed, "task {ti}");
        assert_eq!(t.attempts, 6, "task {ti} must stop at the attempt cap");
    }
    for (ti, times) in schedule_times(&trace).iter().enumerate() {
        assert_eq!(times.len(), 6);
        for pair in times.windows(2) {
            assert!(
                pair[1] > pair[0],
                "task {ti} rescheduled in the same second: {pair:?}"
            );
        }
    }
    // All completions are failures: the outcome model never fails anything,
    // so the whole abnormal mix is the crash-loop model's doing.
    let c = trace.completion_counts();
    assert_eq!(c.abnormal(), c.total());
    assert_eq!(c.fail, c.total());
}

/// Repeated failures of one task on one machine blacklist that machine:
/// later attempts run elsewhere, and once every host is blacklisted the
/// desperation fallback still places the task instead of starving it.
#[test]
fn blacklisting_moves_repeat_offenders() {
    // One crash-looper on a two-machine fleet. Its failures are genuine
    // (not machine outages, which deliberately don't count), so after two
    // failures on the first host the blacklist forces a move.
    let mut faults = FaultConfig::none().with_retry(RetryPolicy {
        base: 10,
        max: 40,
        jitter: 0.0,
    });
    faults.crash_loop_fraction = 1.0;
    faults.crash_loop_attempt_cap = 8;
    faults.blacklist_after = 2;
    let config = quiet_config(FleetConfig::homogeneous(2)).with_faults(faults);
    let jobs = vec![JobSpec {
        submit: 0,
        user: UserId(0),
        priority: Priority::from_level(5),
        tasks: vec![tiny_task(600, 0.2, 0.1)],
    }];
    let trace = Simulator::new(config).run(&manual_workload(4 * HOUR, jobs));

    let machines: Vec<usize> = trace
        .events
        .iter()
        .filter(|e| e.kind == TaskEventKind::Schedule)
        .filter_map(|e| e.machine.map(MachineId::index))
        .collect();
    // All 8 attempts were placed: desperation fallback beats starvation
    // even with both machines eventually blacklisted.
    assert_eq!(machines.len(), 8);
    assert_eq!(trace.tasks[0].attempts, 8);
    // An idle fleet keeps load-balancing onto the same host, so the first
    // move away from it is the blacklist's doing.
    assert_eq!(
        machines[0], machines[1],
        "pre-blacklist placement is sticky"
    );
    assert_ne!(
        machines[2], machines[1],
        "two failures must blacklist the host: {machines:?}"
    );
    assert!(
        machines.contains(&0) && machines.contains(&1),
        "both machines should have been tried: {machines:?}"
    );
}

/// Fault-free configurations are bit-identical to the pre-fault engine:
/// attaching `FaultConfig::none()` changes nothing about the trace.
#[test]
fn disabled_faults_do_not_perturb_the_simulation() {
    let w = cgc_gen::GoogleWorkload::scaled_for_hostload(5, 3 * HOUR).generate(9);
    let base = SimConfig::google(FleetConfig::google(5)).with_seed(77);
    let a = Simulator::new(base.clone()).run(&w);
    let b = Simulator::new(base.with_faults(FaultConfig::none())).run(&w);
    assert_eq!(a, b);
}
