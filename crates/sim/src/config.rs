//! Simulator configuration.

use crate::faults::FaultConfig;
use crate::outcome::OutcomeModel;
use cgc_gen::FleetConfig;
use cgc_trace::{Duration, SAMPLE_PERIOD};
use serde::{Deserialize, Serialize};

/// Where to place a schedulable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Pick the machine with the most free CPU (ties: most free memory).
    ///
    /// This is the paper's description of the Google scheduler: "the best
    /// resources will be used first, in order to optimally balance the
    /// resource demands across machines".
    LoadBalance,
    /// Pick the machine with the least free CPU that still fits (packs
    /// tasks tightly; the classic best-fit heuristic, used as an ablation
    /// baseline).
    BestFit,
    /// Pick the first machine that fits, scanning in id order (grid-style
    /// space-shared clusters).
    FirstFit,
}

/// Which internal data structures the engine runs on. Pure execution
/// knob: both cores dispatch events in the identical `(time, seq)` order
/// and produce bit-identical traces, telemetry, and checkpoints (pinned
/// by the sim equivalence tests), so the choice never changes results —
/// only how fast they arrive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerCore {
    /// `BinaryHeap` event queue + `BTreeMap` pending queue — the original
    /// engine structures, kept as the benchmark baseline and cross-check.
    Reference,
    /// Calendar event queue + SoA pending columns (the default): time
    /// buckets give amortized O(1) event dispatch and the pending queue
    /// becomes append-only columns instead of a pointer-chasing tree.
    #[default]
    Optimized,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed for fleet generation, failure injection, and usage jitter.
    pub seed: u64,
    /// Machine fleet to simulate.
    pub fleet: FleetConfig,
    /// Usage sampling period (300 s in the Google trace).
    pub sample_period: Duration,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Whether high-priority tasks may evict lower-priority ones.
    pub preemption: bool,
    /// Completion-outcome model.
    pub outcome: OutcomeModel,
    /// Maximum resubmissions after a failure or eviction.
    pub max_resubmits: u32,
    /// Scheduler reaction latency in seconds (submission → earliest
    /// scheduling decision).
    pub schedule_latency: Duration,
    /// σ of the per-sample log-normal jitter on task CPU usage. Cloud
    /// tasks are interactive and bursty; grid tasks run steady kernels.
    pub cpu_jitter_sigma: f64,
    /// σ of the per-sample jitter on task memory usage (smaller: memory
    /// moves slowly, per Tables II vs III).
    pub mem_jitter_sigma: f64,
    /// CPU overcommit factor for placement: requested CPU may sum to this
    /// multiple of nominal capacity (CPU is compressible; the Google
    /// scheduler overcommits it, which is how maximum CPU load reaches
    /// nominal capacity in Fig. 7a).
    pub cpu_overcommit: f64,
    /// Fraction of nominal memory available to placement (memory is
    /// incompressible; the scheduler keeps headroom, which is why
    /// assigned-memory maxima sit near 90% of capacity in Fig. 7c).
    pub memory_headroom: f64,
    /// Expected machine outages per machine and day (0 disables churn).
    ///
    /// The Google trace records machines leaving and rejoining the
    /// cluster; an outage fails every task on the machine (they resubmit
    /// within budget) and the machine reports zero usage until it returns.
    pub machine_failures_per_day: f64,
    /// Outage duration range in seconds (uniform).
    pub outage_duration: (u64, u64),
    /// Correlated-failure injection (domain outages, crash-loopers,
    /// backoff, blacklisting). Disabled in the presets so existing seeds
    /// reproduce bit-identical traces; see [`FaultConfig`].
    #[serde(default = "FaultConfig::none")]
    pub faults: FaultConfig,
    /// Number of independent simulation shards (≤ 1 disables sharding and
    /// runs the single global engine, exactly as before sharding existed).
    ///
    /// Shards partition the fleet along failure-domain boundaries and the
    /// jobs along with it; each shard is an independent DES with its own
    /// RNG stream split from [`seed`](Self::seed). The shard count — not
    /// the thread count — defines the simulated model, so the output for
    /// a given `(seed, shards)` is bit-identical however many threads run
    /// it. Clamped to the number of failure domains.
    #[serde(default = "one")]
    pub shards: usize,
    /// Worker threads for sharded runs: ≤ 1 runs shards sequentially on
    /// the caller's thread, anything larger hands them to the rayon pool.
    /// Pure execution knob — never affects the output (see
    /// [`shards`](Self::shards)).
    #[serde(default = "one")]
    pub threads: usize,
    /// Engine data-structure backend. Execution-only: results are
    /// bit-identical across cores (see [`SchedulerCore`]); checkpoint
    /// fingerprints mask it out, so a run checkpointed under one core
    /// resumes under the other.
    #[serde(default)]
    pub core: SchedulerCore,
}

fn one() -> usize {
    1
}

impl SimConfig {
    /// Google-cluster configuration: preemptive priorities, load-balancing
    /// placement, the paper's abnormal-completion mix, and noisy CPU usage.
    pub fn google(fleet: FleetConfig) -> Self {
        SimConfig {
            seed: 0xC10D,
            fleet,
            sample_period: SAMPLE_PERIOD,
            placement: PlacementPolicy::LoadBalance,
            preemption: true,
            outcome: OutcomeModel::google(),
            max_resubmits: 3,
            schedule_latency: 2,
            cpu_jitter_sigma: 0.35,
            mem_jitter_sigma: 0.015,
            cpu_overcommit: 1.8,
            memory_headroom: 0.92,
            machine_failures_per_day: 0.0,
            outage_duration: (600, 4 * 3_600),
            faults: FaultConfig::none(),
            shards: 1,
            threads: 1,
            core: SchedulerCore::Optimized,
        }
    }

    /// Grid-cluster configuration: single-priority FCFS without
    /// preemption, first-fit placement, rare failures, steady usage.
    pub fn grid(fleet: FleetConfig) -> Self {
        SimConfig {
            seed: 0x617D,
            fleet,
            sample_period: SAMPLE_PERIOD,
            placement: PlacementPolicy::FirstFit,
            preemption: false,
            outcome: OutcomeModel::grid(),
            max_resubmits: 1,
            schedule_latency: 30,
            cpu_jitter_sigma: 0.003,
            mem_jitter_sigma: 0.01,
            cpu_overcommit: 1.0,
            memory_headroom: 1.0,
            machine_failures_per_day: 0.0,
            outage_duration: (1_800, 12 * 3_600),
            faults: FaultConfig::none(),
            shards: 1,
            threads: 1,
            core: SchedulerCore::Optimized,
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the placement policy (builder style).
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables machine churn at the given per-machine daily outage rate.
    pub fn with_machine_churn(mut self, failures_per_day: f64) -> Self {
        self.machine_failures_per_day = failures_per_day;
        self
    }

    /// Enables fault injection (builder style).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the shard count (builder style). This changes the simulated
    /// model — see [`shards`](Self::shards).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the worker-thread count (builder style). Never changes the
    /// output — see [`threads`](Self::threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the engine data-structure backend (builder style). Never
    /// changes the output — see [`SchedulerCore`].
    pub fn with_core(mut self, core: SchedulerCore) -> Self {
        self.core = core;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_defaults_match_paper_model() {
        let c = SimConfig::google(FleetConfig::google(10));
        assert!(c.preemption);
        assert_eq!(c.placement, PlacementPolicy::LoadBalance);
        assert_eq!(c.sample_period, 300);
        assert!(c.cpu_jitter_sigma > c.mem_jitter_sigma);
    }

    #[test]
    fn grid_defaults_are_space_shared() {
        let c = SimConfig::grid(FleetConfig::homogeneous(10));
        assert!(!c.preemption);
        assert_eq!(c.placement, PlacementPolicy::FirstFit);
        assert!(c.cpu_jitter_sigma < 0.1);
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::google(FleetConfig::google(10))
            .with_seed(9)
            .with_placement(PlacementPolicy::BestFit)
            .with_faults(FaultConfig::google());
        assert_eq!(c.seed, 9);
        assert_eq!(c.placement, PlacementPolicy::BestFit);
        assert!(c.faults.enabled());
    }

    #[test]
    fn shard_and_thread_knobs_default_to_one() {
        let c = SimConfig::google(FleetConfig::google(10));
        assert_eq!((c.shards, c.threads), (1, 1));
        let c = c.with_shards(4).with_threads(8);
        assert_eq!((c.shards, c.threads), (4, 8));
        // Old serialized configs (no shard fields) still deserialize.
        let json = serde_json::to_string(&SimConfig::grid(FleetConfig::homogeneous(5))).unwrap();
        let stripped = json
            .replace(",\"shards\":1", "")
            .replace(",\"threads\":1", "");
        let back: SimConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!((back.shards, back.threads), (1, 1));
    }

    #[test]
    fn core_knob_defaults_to_optimized() {
        let c = SimConfig::google(FleetConfig::google(10));
        assert_eq!(c.core, SchedulerCore::Optimized);
        let c = c.with_core(SchedulerCore::Reference);
        assert_eq!(c.core, SchedulerCore::Reference);
        // Old serialized configs (no core field) still deserialize.
        let json = serde_json::to_string(&SimConfig::grid(FleetConfig::homogeneous(5))).unwrap();
        let stripped = json.replace(",\"core\":\"Optimized\"", "");
        assert_ne!(json, stripped, "expected the core field in the JSON");
        let back: SimConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.core, SchedulerCore::Optimized);
    }

    #[test]
    fn presets_keep_faults_disabled() {
        assert!(!SimConfig::google(FleetConfig::google(10)).faults.enabled());
        assert!(!SimConfig::grid(FleetConfig::homogeneous(10))
            .faults
            .enabled());
    }
}
