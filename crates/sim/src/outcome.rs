//! Completion-outcome model (failure injection).
//!
//! The Google trace shows a striking completion mix (paper §IV.B.1): of the
//! 44 million completion events, 59.2% are abnormal, and within the
//! abnormal ones failures account for ~50% and user kills for ~30.7%
//! (evictions and losses make up the rest). The simulator draws a plan for
//! each execution attempt from the per-attempt probabilities below;
//! evictions are *not* drawn — they emerge from priority preemption in the
//! engine — so the drawn probabilities are calibrated slightly under the
//! target shares.

use cgc_trace::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How one execution attempt will end, decided at schedule time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttemptPlan {
    /// Runs to its nominal completion.
    Finish,
    /// Crashes after the contained fraction of its nominal runtime.
    Fail(f64),
    /// Killed by the user after the contained fraction.
    Kill(f64),
    /// Lost almost immediately (missing input data).
    Lost(f64),
}

impl AttemptPlan {
    /// Actual duration of the attempt given the nominal runtime.
    /// Always at least one second, so events keep distinct order.
    pub fn duration(&self, nominal: Duration) -> Duration {
        let frac = match *self {
            AttemptPlan::Finish => 1.0,
            AttemptPlan::Fail(f) | AttemptPlan::Kill(f) | AttemptPlan::Lost(f) => f,
        };
        ((nominal as f64 * frac).round() as Duration).max(1)
    }

    /// Whether the attempt may be retried (failures are retried; kills and
    /// losses are final, finishes need no retry).
    pub fn retryable(&self) -> bool {
        matches!(self, AttemptPlan::Fail(_))
    }
}

/// Error for outcome probabilities that do not form a distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidOutcomeModel {
    /// The offending total probability mass (or NaN).
    pub mass: f64,
}

impl std::fmt::Display for InvalidOutcomeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outcome probabilities must be in [0, 1] and sum to at most 1, got mass {}",
            self.mass
        )
    }
}

impl std::error::Error for InvalidOutcomeModel {}

/// Per-attempt outcome probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutcomeModel {
    /// Probability an attempt fails (crash).
    pub p_fail: f64,
    /// Probability the user kills the task.
    pub p_kill: f64,
    /// Probability the task is lost.
    pub p_lost: f64,
}

impl OutcomeModel {
    /// Validating constructor: each probability must lie in `[0, 1]` and
    /// their sum must not exceed 1. Unlike the old `debug_assert!` in
    /// [`draw`](Self::draw), this rejects invalid configurations in
    /// release builds too.
    pub fn new(p_fail: f64, p_kill: f64, p_lost: f64) -> Result<Self, InvalidOutcomeModel> {
        let model = OutcomeModel {
            p_fail,
            p_kill,
            p_lost,
        };
        model.validate()?;
        Ok(model)
    }

    /// Checks that the probabilities form a (sub-)distribution.
    pub fn validate(&self) -> Result<(), InvalidOutcomeModel> {
        let mass = self.p_fail + self.p_kill + self.p_lost;
        let each_ok = [self.p_fail, self.p_kill, self.p_lost]
            .iter()
            .all(|p| (0.0..=1.0).contains(p));
        if !each_ok || !mass.is_finite() || mass > 1.0 {
            return Err(InvalidOutcomeModel { mass });
        }
        Ok(())
    }
    /// Calibrated to the Google trace's 59.2% abnormal completions
    /// (fail 50%, kill 30.7% of abnormal), leaving room for the
    /// preemption-driven evictions the engine adds on top.
    pub fn google() -> Self {
        OutcomeModel {
            p_fail: 0.33,
            p_kill: 0.20,
            p_lost: 0.012,
        }
    }

    /// Grid clusters: failures are rare and kills rarer.
    pub fn grid() -> Self {
        OutcomeModel {
            p_fail: 0.05,
            p_kill: 0.02,
            p_lost: 0.002,
        }
    }

    /// A model where every attempt finishes (for deterministic tests).
    pub fn always_finish() -> Self {
        OutcomeModel {
            p_fail: 0.0,
            p_kill: 0.0,
            p_lost: 0.0,
        }
    }

    /// Draws the plan for one attempt.
    ///
    /// Models should be built through [`new`](Self::new) so that invalid
    /// probability masses are rejected up front; the assertion here only
    /// guards debug builds against field-level mutation.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> AttemptPlan {
        debug_assert!(self.validate().is_ok());
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < self.p_fail {
            // Crashes cluster early in the run: most failures are
            // immediate (bad input, missing dependency).
            AttemptPlan::Fail(rng.gen_range(0.02..0.8))
        } else if u < self.p_fail + self.p_kill {
            AttemptPlan::Kill(rng.gen_range(0.05..0.98))
        } else if u < self.p_fail + self.p_kill + self.p_lost {
            AttemptPlan::Lost(rng.gen_range(0.0..0.05))
        } else {
            AttemptPlan::Finish
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn duration_fractions() {
        assert_eq!(AttemptPlan::Finish.duration(1_000), 1_000);
        assert_eq!(AttemptPlan::Fail(0.5).duration(1_000), 500);
        assert_eq!(AttemptPlan::Kill(0.25).duration(1_000), 250);
        // Never zero.
        assert_eq!(AttemptPlan::Lost(0.0).duration(1_000), 1);
        assert_eq!(AttemptPlan::Finish.duration(0), 1);
    }

    #[test]
    fn only_failures_retry() {
        assert!(AttemptPlan::Fail(0.3).retryable());
        assert!(!AttemptPlan::Kill(0.3).retryable());
        assert!(!AttemptPlan::Lost(0.01).retryable());
        assert!(!AttemptPlan::Finish.retryable());
    }

    #[test]
    fn google_mix_hits_abnormal_share() {
        let model = OutcomeModel::google();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut fail = 0;
        let mut kill = 0;
        let mut lost = 0;
        let mut finish = 0;
        for _ in 0..n {
            match model.draw(&mut rng) {
                AttemptPlan::Fail(_) => fail += 1,
                AttemptPlan::Kill(_) => kill += 1,
                AttemptPlan::Lost(_) => lost += 1,
                AttemptPlan::Finish => finish += 1,
            }
        }
        let abnormal = (fail + kill + lost) as f64 / n as f64;
        // Drawn abnormal share sits just under the 59.2% target since the
        // engine adds evictions and failure retries.
        assert!((abnormal - 0.542).abs() < 0.02, "abnormal={abnormal}");
        assert!(finish > 0);
        let fail_share = fail as f64 / (fail + kill + lost) as f64;
        assert!((fail_share - 0.61).abs() < 0.05, "fail share={fail_share}");
    }

    #[test]
    fn always_finish_never_aborts() {
        let model = OutcomeModel::always_finish();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert_eq!(model.draw(&mut rng), AttemptPlan::Finish);
        }
    }

    #[test]
    fn constructor_rejects_bad_mass() {
        assert!(OutcomeModel::new(0.5, 0.4, 0.3).is_err());
        assert!(OutcomeModel::new(-0.1, 0.0, 0.0).is_err());
        assert!(OutcomeModel::new(f64::NAN, 0.0, 0.0).is_err());
        assert!(OutcomeModel::new(1.1, 0.0, 0.0).is_err());
        let ok = OutcomeModel::new(0.3, 0.2, 0.01).unwrap();
        assert_eq!(ok.p_fail, 0.3);
        // Presets validate, of course.
        assert!(OutcomeModel::google().validate().is_ok());
        assert!(OutcomeModel::grid().validate().is_ok());
        assert!(OutcomeModel::always_finish().validate().is_ok());
    }

    #[test]
    fn grid_failures_are_rare() {
        let model = OutcomeModel::grid();
        let mut rng = StdRng::seed_from_u64(5);
        let abnormal = (0..50_000)
            .filter(|_| !matches!(model.draw(&mut rng), AttemptPlan::Finish))
            .count() as f64
            / 50_000.0;
        assert!(abnormal < 0.10, "abnormal={abnormal}");
    }
}
