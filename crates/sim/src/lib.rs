//! Discrete-event cluster simulator.
//!
//! Replays a generated [`cgc_gen::Workload`] against a machine fleet under
//! the scheduling policy the paper describes for the Google cluster
//! (Section II): tasks queue in priority order, high priorities preempt
//! lower ones, placement favours the "best" (least-loaded) machine to
//! balance demand, and evicted tasks are resubmitted. A failure-injection
//! model reproduces the trace's completion-event mix (59.2% abnormal;
//! failures ≈ 50% and kills ≈ 30.7% of the abnormal events), and the
//! [`faults`] module layers correlated rack outages, crash-loopers,
//! retry backoff, and machine blacklisting on top (opt-in via
//! [`SimConfig::with_faults`]).
//!
//! The simulator emits a fully validated [`cgc_trace::Trace`]: the complete
//! task event log plus per-machine usage samples at the Google trace's
//! 5-minute cadence, with per-priority-class breakdowns so the paper's
//! "high-priority view" analyses work downstream.
//!
//! ```
//! use cgc_gen::{FleetConfig, GoogleWorkload};
//! use cgc_sim::{SimConfig, Simulator};
//!
//! let workload = GoogleWorkload::scaled(20, 6 * 3_600).generate(1);
//! let config = SimConfig::google(FleetConfig::google(20));
//! let trace = Simulator::new(config).run(&workload);
//! assert!(!trace.host_series.is_empty());
//! ```

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod faults;
pub mod outcome;
mod queue;
pub mod shard;

pub use checkpoint::{
    load_checkpoint, run_fingerprint, save_checkpoint, CheckpointError, CheckpointOptions,
    EngineSnapshot, RunCheckpoint, CHECKPOINT_VERSION,
};
pub use config::{PlacementPolicy, SchedulerCore, SimConfig};
pub use engine::{SimScratch, Simulator};
pub use faults::{DomainOutage, FaultConfig, RetryPolicy};
pub use outcome::{AttemptPlan, InvalidOutcomeModel, OutcomeModel};
