//! Event-queue and pending-queue backends for the simulation engine.
//!
//! The engine's determinism contract is that events dispatch in strict
//! `(time, seq)` order (`seq` is unique, so the order is total) and that
//! the pending queue iterates in `(descending priority, FCFS seq)` order.
//! This module provides two interchangeable implementations of each,
//! selected by [`SchedulerCore`](crate::SchedulerCore):
//!
//! * **Reference** — `BinaryHeap` events + `BTreeMap` pending, the
//!   original engine structures. O(log n) per event with pointer-chasing
//!   node comparisons; kept as the honest benchmark baseline and as a
//!   cross-check for the optimized core.
//! * **Optimized** — a [`CalendarQueue`] (time-bucketed ring with a
//!   far-future overflow heap; amortized O(1) push/pop because sim events
//!   cluster near the current time) + [`PendingSoa`] (per-priority-level
//!   append-only columns with tombstone removal; pushes are naturally
//!   seq-sorted because the engine's sequence counter is monotone).
//!
//! Both backends produce *identical* pop/iteration sequences — pinned by
//! the property tests below and by the sim-level equivalence suite — so
//! the choice of core never changes a single output byte.

use cgc_trace::{Duration, Timestamp};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::config::SchedulerCore;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A task enters the pending queue.
    Submit { task: usize },
    /// A running attempt reaches its planned end. Stale if the attempt
    /// number no longer matches (the task was evicted meanwhile).
    Complete { task: usize, attempt: u32 },
    /// Deferred scheduling pass (models scheduler reaction latency).
    Kick,
    /// A machine goes down until `until`; its running tasks fail.
    /// Overlapping outages (node churn plus a domain outage) extend the
    /// downtime to the latest `until`.
    MachineDown { machine: usize, until: Timestamp },
    /// A machine returns to service (ignored while a longer outage holds
    /// the machine down).
    MachineUp { machine: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    pub(crate) time: Timestamp,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A calendar queue: a ring of time buckets covering a fixed window of
/// `nbuckets × width` seconds, plus an overflow min-heap for events past
/// the window ("ladder" fallback).
///
/// * `push`: events inside the window drop into bucket `time / width`
///   (O(1)); events at or past `limit` go to the overflow heap. An event
///   for the bucket currently being drained is binary-inserted to keep
///   that bucket sorted.
/// * `pop`/`peek`: advance over empty buckets; the first non-empty bucket
///   is sorted once (descending, so pops are `Vec::pop` from the back)
///   and then drained. When the ring empties, the window re-anchors at
///   the overflow minimum and the next window's worth of events is pulled
///   in.
///
/// The window never slides while it holds events, which yields the
/// ordering invariant: every ring event's time is `< limit` and every
/// overflow event's is `>= limit`, so the global minimum always lives in
/// the first non-empty bucket at or after `cur`. Pushes never pre-date
/// the event being dispatched (the engine only schedules at or after
/// "now"), so a drained bucket is never repopulated.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// Ring of buckets; event slot = `(time / width) & mask`.
    buckets: Vec<Vec<QueuedEvent>>,
    /// `buckets.len() - 1`; the bucket count is a power of two.
    mask: u64,
    /// Seconds of sim time per bucket (>= 1).
    width: u64,
    /// Absolute index (`time / width`) of the bucket being drained.
    cur: u64,
    /// Exclusive upper time bound of the ring window; events at or past
    /// it overflow. Fixed between re-anchors.
    limit: Timestamp,
    /// Whether the current bucket is sorted descending by `(time, seq)`.
    cur_sorted: bool,
    /// Far-future events; `QueuedEvent`'s reversed `Ord` makes this a
    /// min-heap.
    overflow: BinaryHeap<QueuedEvent>,
    /// Events currently in ring buckets (`len - overflow.len()`).
    in_ring: usize,
    len: usize,
}

impl CalendarQueue {
    /// Sizes the ring so the expected event population spreads a few
    /// events per bucket over roughly one horizon.
    pub(crate) fn new(horizon: Duration, events_hint: usize) -> CalendarQueue {
        let n = Self::bucket_count(events_hint);
        let width = Self::bucket_width(horizon, n);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: n as u64 - 1,
            width,
            cur: 0,
            limit: width.saturating_mul(n as u64),
            cur_sorted: false,
            overflow: BinaryHeap::new(),
            in_ring: 0,
            len: 0,
        }
    }

    fn bucket_count(events_hint: usize) -> usize {
        (events_hint / 4).clamp(64, 1 << 16).next_power_of_two()
    }

    fn bucket_width(horizon: Duration, n: usize) -> u64 {
        (horizon.max(1)).div_ceil(n as u64).max(1)
    }

    /// Re-parameterizes for a fresh run, reusing bucket allocations.
    pub(crate) fn reset(&mut self, horizon: Duration, events_hint: usize) {
        let n = Self::bucket_count(events_hint);
        if n != self.buckets.len() {
            self.buckets.resize_with(n, Vec::new);
            self.mask = n as u64 - 1;
        }
        self.width = Self::bucket_width(horizon, n);
        self.wipe();
    }

    /// Empties the queue, keeping the current geometry and allocations.
    fn wipe(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur = 0;
        self.limit = self.width.saturating_mul(self.buckets.len() as u64);
        self.cur_sorted = false;
        self.overflow.clear();
        self.in_ring = 0;
        self.len = 0;
    }

    pub(crate) fn push(&mut self, e: QueuedEvent) {
        self.len += 1;
        if e.time >= self.limit {
            self.overflow.push(e);
            return;
        }
        // An event dated before the bucket being drained (possible only
        // for same-instant pushes after a re-anchor clamp) joins the
        // current bucket; ordering holds because that bucket pops sorted.
        let b = (e.time / self.width).max(self.cur);
        let slot = (b & self.mask) as usize;
        if b == self.cur && self.cur_sorted {
            let v = &mut self.buckets[slot];
            let pos = v.partition_point(|x| (x.time, x.seq) > (e.time, e.seq));
            v.insert(pos, e);
        } else {
            self.buckets[slot].push(e);
        }
        self.in_ring += 1;
    }

    /// Advances to the first non-empty bucket (re-anchoring from the
    /// overflow heap if the ring is empty) and sorts it. Returns its
    /// slot, or `None` when the queue is empty.
    fn settle(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.in_ring == 0 {
                // Everything left is far-future: re-anchor the window at
                // the overflow minimum and pull one window's worth in.
                let head = *self.overflow.peek().expect("len > 0 and ring empty");
                self.cur = head.time / self.width;
                self.limit = self
                    .width
                    .saturating_mul(self.cur.saturating_add(self.mask + 1));
                while let Some(&e) = self.overflow.peek() {
                    if e.time >= self.limit {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked just above");
                    let slot = ((e.time / self.width) & self.mask) as usize;
                    self.buckets[slot].push(e);
                    self.in_ring += 1;
                }
                self.cur_sorted = false;
            }
            let slot = (self.cur & self.mask) as usize;
            if !self.buckets[slot].is_empty() {
                if !self.cur_sorted {
                    self.buckets[slot].sort_unstable_by_key(|e| Reverse((e.time, e.seq)));
                    self.cur_sorted = true;
                }
                return Some(slot);
            }
            self.cur += 1;
            self.cur_sorted = false;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let slot = self.settle()?;
        let e = self.buckets[slot].pop().expect("settled on non-empty");
        self.len -= 1;
        self.in_ring -= 1;
        Some(e)
    }

    pub(crate) fn peek(&mut self) -> Option<QueuedEvent> {
        let slot = self.settle()?;
        self.buckets[slot].last().copied()
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// All queued events in arbitrary order (for snapshots, which sort).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &QueuedEvent> {
        self.buckets.iter().flatten().chain(self.overflow.iter())
    }
}

/// The engine's event queue, behind a core-selected backend. Both
/// variants pop in identical `(time, seq)` order.
#[derive(Debug)]
pub(crate) enum EventQueue {
    Heap(BinaryHeap<QueuedEvent>),
    Calendar(CalendarQueue),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::Heap(BinaryHeap::new())
    }
}

impl EventQueue {
    /// Converts (or resets) this queue for a run under `core`, reusing
    /// allocations when the backend already matches.
    pub(crate) fn for_core(
        self,
        core: SchedulerCore,
        horizon: Duration,
        hint: usize,
    ) -> EventQueue {
        match (self, core) {
            (EventQueue::Heap(mut h), SchedulerCore::Reference) => {
                h.clear();
                EventQueue::Heap(h)
            }
            (EventQueue::Calendar(mut c), SchedulerCore::Optimized) => {
                c.reset(horizon, hint);
                EventQueue::Calendar(c)
            }
            (_, SchedulerCore::Reference) => EventQueue::Heap(BinaryHeap::new()),
            (_, SchedulerCore::Optimized) => {
                EventQueue::Calendar(CalendarQueue::new(horizon, hint))
            }
        }
    }

    pub(crate) fn push(&mut self, e: QueuedEvent) {
        match self {
            EventQueue::Heap(h) => h.push(e),
            EventQueue::Calendar(c) => c.push(e),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        match self {
            EventQueue::Heap(h) => h.pop(),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    /// The next event by `(time, seq)`. Takes `&mut self` because the
    /// calendar backend may need to settle onto its next bucket.
    pub(crate) fn peek(&mut self) -> Option<QueuedEvent> {
        match self {
            EventQueue::Heap(h) => h.peek().copied(),
            EventQueue::Calendar(c) => c.peek(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len(),
        }
    }

    pub(crate) fn reserve(&mut self, additional: usize) {
        match self {
            EventQueue::Heap(h) => {
                if h.capacity() < additional {
                    h.reserve(additional - h.capacity());
                }
            }
            // The ring pre-sizes via its bucket count; nothing to do.
            EventQueue::Calendar(_) => {}
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            EventQueue::Heap(h) => h.clear(),
            EventQueue::Calendar(c) => c.wipe(),
        }
    }

    /// All queued events in arbitrary order (snapshots sort them into the
    /// canonical `(time, seq)` form, so iteration order never matters).
    pub(crate) fn iter(&self) -> Box<dyn Iterator<Item = &QueuedEvent> + '_> {
        match self {
            EventQueue::Heap(h) => Box::new(h.iter()),
            EventQueue::Calendar(c) => Box::new(c.iter()),
        }
    }
}

/// SoA pending queue: one append-only `(seq, task)` column per priority
/// level. The engine's sequence counter is strictly monotone, so each
/// column is sorted by construction; removal tombstones in place (task =
/// `usize::MAX`) and compacts lazily once tombstones outnumber live
/// entries. Iteration order — descending level, then ascending seq —
/// matches `BTreeMap<(Reverse<u8>, u64), usize>` exactly.
#[derive(Debug, Default)]
pub(crate) struct PendingSoa {
    levels: Vec<Vec<(u64, usize)>>,
    live: usize,
    dead: usize,
}

const TOMBSTONE: usize = usize::MAX;

impl PendingSoa {
    fn insert(&mut self, level: u8, seq: u64, task: usize) {
        let l = level as usize;
        if self.levels.len() <= l {
            self.levels.resize_with(l + 1, Vec::new);
        }
        debug_assert!(
            self.levels[l].last().is_none_or(|&(s, _)| s < seq),
            "pending seq must be monotone per level"
        );
        self.levels[l].push((seq, task));
        self.live += 1;
    }

    fn remove(&mut self, level: u8, seq: u64) {
        let Some(v) = self.levels.get_mut(level as usize) else {
            return;
        };
        if let Ok(i) = v.binary_search_by_key(&seq, |&(s, _)| s) {
            if v[i].1 != TOMBSTONE {
                v[i].1 = TOMBSTONE;
                self.live -= 1;
                self.dead += 1;
            }
        }
        if self.dead > 64 && self.dead > self.live {
            for v in &mut self.levels {
                v.retain(|&(_, t)| t != TOMBSTONE);
            }
            self.dead = 0;
        }
    }

    fn for_each(&self, mut f: impl FnMut(u8, u64, usize)) {
        for l in (0..self.levels.len()).rev() {
            for &(seq, task) in &self.levels[l] {
                if task != TOMBSTONE {
                    f(l as u8, seq, task);
                }
            }
        }
    }

    fn clear(&mut self) {
        for v in &mut self.levels {
            v.clear();
        }
        self.live = 0;
        self.dead = 0;
    }
}

/// The engine's pending queue, behind a core-selected backend. Both
/// variants iterate in `(descending level, ascending seq)` order.
#[derive(Debug)]
pub(crate) enum PendingQueue {
    Map(BTreeMap<(Reverse<u8>, u64), usize>),
    Soa(PendingSoa),
}

impl PendingQueue {
    pub(crate) fn for_core(core: SchedulerCore) -> PendingQueue {
        match core {
            SchedulerCore::Reference => PendingQueue::Map(BTreeMap::new()),
            SchedulerCore::Optimized => PendingQueue::Soa(PendingSoa::default()),
        }
    }

    pub(crate) fn insert(&mut self, level: u8, seq: u64, task: usize) {
        match self {
            PendingQueue::Map(m) => {
                m.insert((Reverse(level), seq), task);
            }
            PendingQueue::Soa(s) => s.insert(level, seq, task),
        }
    }

    pub(crate) fn remove(&mut self, level: u8, seq: u64) {
        match self {
            PendingQueue::Map(m) => {
                m.remove(&(Reverse(level), seq));
            }
            PendingQueue::Soa(s) => s.remove(level, seq),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            PendingQueue::Map(m) => m.len(),
            PendingQueue::Soa(s) => s.live,
        }
    }

    /// Visits every pending `(level, seq, task)` in descending-level,
    /// ascending-seq order — the scheduling (and serialization) order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(u8, u64, usize)) {
        match self {
            PendingQueue::Map(m) => {
                for (&(Reverse(level), seq), &task) in m.iter() {
                    f(level, seq, task);
                }
            }
            PendingQueue::Soa(s) => s.for_each(f),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            PendingQueue::Map(m) => m.clear(),
            PendingQueue::Soa(s) => s.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: Timestamp, seq: u64) -> QueuedEvent {
        QueuedEvent {
            time,
            seq,
            kind: EventKind::Kick,
        }
    }

    /// Drains both queues fully, checking every pop agrees.
    fn drain_both(cal: &mut CalendarQueue, heap: &mut BinaryHeap<QueuedEvent>) {
        loop {
            let expect = heap.pop();
            assert_eq!(cal.peek(), expect, "peek disagrees with heap");
            let got = cal.pop();
            assert_eq!(got, expect);
            if expect.is_none() {
                break;
            }
        }
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn pops_in_time_seq_order() {
        let mut cal = CalendarQueue::new(1000, 16);
        let mut heap = BinaryHeap::new();
        for (i, &t) in [500u64, 10, 10, 999, 0, 250, 10, 750].iter().enumerate() {
            let e = ev(t, i as u64 + 1);
            cal.push(e);
            heap.push(e);
        }
        drain_both(&mut cal, &mut heap);
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // Window covers [0, ~1000); everything else ladders via overflow.
        let mut cal = CalendarQueue::new(1000, 16);
        let mut heap = BinaryHeap::new();
        for (i, &t) in [5u64, 100_000, 2_000, 999_999, 50, 1_000_000_000]
            .iter()
            .enumerate()
        {
            let e = ev(t, i as u64 + 1);
            cal.push(e);
            heap.push(e);
        }
        drain_both(&mut cal, &mut heap);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Pops interleave with pushes that are never in the past —
        // exactly the engine's usage pattern.
        let mut cal = CalendarQueue::new(10_000, 8);
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |cal: &mut CalendarQueue, heap: &mut BinaryHeap<QueuedEvent>, t: u64| {
            seq += 1;
            let e = ev(t, seq);
            cal.push(e);
            heap.push(e);
        };
        push(&mut cal, &mut heap, 100);
        push(&mut cal, &mut heap, 40_000); // overflow
        push(&mut cal, &mut heap, 100); // same timestamp, later seq
        for _ in 0..2 {
            let a = cal.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
            // Push relative to "now", like event handlers do.
            push(&mut cal, &mut heap, a.time + 7);
            push(&mut cal, &mut heap, a.time + 90_000);
        }
        drain_both(&mut cal, &mut heap);
    }

    #[test]
    fn reset_reuses_and_empties() {
        let mut cal = CalendarQueue::new(100, 8);
        cal.push(ev(5, 1));
        cal.push(ev(500, 2));
        cal.reset(1_000_000, 4096);
        assert_eq!(cal.len(), 0);
        assert_eq!(cal.pop(), None);
        cal.push(ev(999_999, 3));
        assert_eq!(cal.pop().map(|e| e.seq), Some(3));
    }

    #[test]
    fn pending_soa_orders_like_btreemap() {
        let mut map = PendingQueue::for_core(SchedulerCore::Reference);
        let mut soa = PendingQueue::for_core(SchedulerCore::Optimized);
        let entries: &[(u8, u64, usize)] = &[
            (2, 1, 10),
            (0, 2, 11),
            (2, 3, 12),
            (9, 4, 13),
            (0, 5, 14),
            (2, 6, 15),
        ];
        for &(level, seq, task) in entries {
            map.insert(level, seq, task);
            soa.insert(level, seq, task);
        }
        map.remove(2, 3);
        soa.remove(2, 3);
        map.remove(9, 4);
        soa.remove(9, 4);
        map.remove(9, 4); // double-remove is a no-op
        soa.remove(9, 4);
        assert_eq!(map.len(), soa.len());
        let collect = |q: &PendingQueue| {
            let mut v = Vec::new();
            q.for_each(|l, s, t| v.push((l, s, t)));
            v
        };
        assert_eq!(collect(&map), collect(&soa));
    }

    #[test]
    fn pending_soa_compaction_preserves_order() {
        let mut map = PendingQueue::for_core(SchedulerCore::Reference);
        let mut soa = PendingQueue::for_core(SchedulerCore::Optimized);
        for seq in 1..=400u64 {
            let level = (seq % 3) as u8;
            map.insert(level, seq, seq as usize);
            soa.insert(level, seq, seq as usize);
        }
        // Remove enough to trigger compaction (dead > 64 && dead > live).
        for seq in 1..=300u64 {
            let level = (seq % 3) as u8;
            map.remove(level, seq);
            soa.remove(level, seq);
        }
        let collect = |q: &PendingQueue| {
            let mut v = Vec::new();
            q.for_each(|l, s, t| v.push((l, s, t)));
            v
        };
        assert_eq!(collect(&map), collect(&soa));
        assert_eq!(map.len(), soa.len());
        // Removal after compaction still finds its entry.
        map.remove(1, 301);
        soa.remove(1, 301);
        assert_eq!(collect(&map), collect(&soa));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ev(time: Timestamp, seq: u64) -> QueuedEvent {
        QueuedEvent {
            time,
            seq,
            kind: EventKind::Kick,
        }
    }

    proptest! {
        /// The calendar queue and the reference heap pop identical
        /// `(time, seq)` sequences under random insert/pop
        /// interleavings, including far-future and same-timestamp
        /// events. Each scripted op is `(selector, value)`: selectors
        /// 0–2 push near the current time (0 offsets exercise
        /// same-timestamp ties), 3 pushes far future (exercising the
        /// overflow ladder and re-anchoring), 4–5 pop.
        #[test]
        fn calendar_matches_heap(
            ops in prop::collection::vec((0u64..6, 0u64..10_000_000), 1..200)
        ) {
            let mut cal = CalendarQueue::new(50_000, 32);
            let mut heap = BinaryHeap::new();
            let mut now = 0u64; // engine invariant: pushes are never in the past
            let mut seq = 0u64;
            for (sel, value) in ops {
                if sel <= 3 {
                    let ahead = if sel == 3 { 100_000 + value } else { value % 5_000 };
                    seq += 1;
                    let e = ev(now + ahead, seq);
                    cal.push(e);
                    heap.push(e);
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(
                        a.map(|e| (e.time, e.seq)),
                        b.map(|e| (e.time, e.seq))
                    );
                    if let Some(e) = b {
                        now = e.time;
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain whatever is left in lockstep.
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(
                    a.map(|e| (e.time, e.seq)),
                    b.map(|e| (e.time, e.seq))
                );
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
