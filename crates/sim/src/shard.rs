//! Deterministic shard planning for the parallel simulator.
//!
//! A shard is a contiguous group of failure domains plus the jobs routed to
//! it. The plan is a pure function of `(fleet, workload, shards, seed)` —
//! thread count never enters it — which is the first half of the
//! bit-reproducibility argument (DESIGN.md §5): with a fixed plan and a
//! private RNG stream per shard, every shard computes the same records no
//! matter which thread runs it, and the canonical merge in
//! [`crate::engine`] assembles them in a fixed order.
//!
//! Shard boundaries always coincide with failure-domain boundaries
//! ([`FleetConfig::shard_ranges`]), so a correlated rack outage never
//! straddles two shards.

use cgc_gen::{split_seed, FleetConfig, Workload};
use std::ops::Range;

/// One shard of the simulation: a contiguous domain/machine slice of the
/// fleet, the jobs routed to it, and its private RNG stream seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index (also the RNG stream index).
    pub index: usize,
    /// Failure domains owned by this shard.
    pub domains: Range<usize>,
    /// Machines owned by this shard (global ids, contiguous).
    pub machines: Range<usize>,
    /// Global indices of the jobs this shard simulates, ascending.
    pub jobs: Vec<usize>,
    /// Seed of this shard's private RNG stream.
    pub seed: u64,
}

/// The full shard plan for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards, in machine-id order.
    pub shards: Vec<ShardSpec>,
    /// Prefix sums of per-job task counts: job `j`'s `k`-th task has the
    /// global task id `task_base[j] + k`. Length `jobs + 1`.
    pub task_base: Vec<usize>,
}

impl ShardPlan {
    /// Builds the plan: domain-aligned machine ranges via
    /// [`FleetConfig::shard_ranges`], then greedy min-load job routing —
    /// each job (in submission-table order) goes to the shard with the
    /// lowest tasks-per-machine load, ties to the lowest shard index.
    pub fn new(fleet: &FleetConfig, workload: &Workload, shards: usize, master_seed: u64) -> Self {
        let mut specs: Vec<ShardSpec> = fleet
            .shard_ranges(shards)
            .into_iter()
            .enumerate()
            .map(|(index, (domains, machines))| ShardSpec {
                index,
                domains,
                machines,
                jobs: Vec::new(),
                seed: split_seed(master_seed, index as u64),
            })
            .collect();

        let mut task_base = Vec::with_capacity(workload.jobs.len() + 1);
        task_base.push(0);
        let mut assigned = vec![0usize; specs.len()];
        for (j, spec) in workload.jobs.iter().enumerate() {
            task_base.push(task_base[j] + spec.tasks.len());
            // Integer cross-multiplied load comparison — no float ties:
            // load(s) = assigned(s) / machines(s), and the `.then` on the
            // index makes the order total, so `min_by` is unambiguous.
            let best = (0..specs.len())
                .min_by(|&a, &b| {
                    let ma = specs[a].machines.len().max(1);
                    let mb = specs[b].machines.len().max(1);
                    (assigned[a] * mb).cmp(&(assigned[b] * ma)).then(a.cmp(&b))
                })
                .expect("shard_ranges returns at least one shard");
            assigned[best] += spec.tasks.len().max(1);
            specs[best].jobs.push(j);
        }
        ShardPlan {
            shards: specs,
            task_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_gen::GoogleWorkload;

    fn plan(shards: usize) -> (ShardPlan, Workload) {
        let workload = GoogleWorkload::scaled(40, 2 * 3_600).generate(7);
        let fleet = FleetConfig::google(40); // 4 domains of 10
        (ShardPlan::new(&fleet, &workload, shards, 0xC10D), workload)
    }

    #[test]
    fn every_job_lands_in_exactly_one_shard() {
        let (p, w) = plan(4);
        let mut seen = vec![0usize; w.jobs.len()];
        for s in &p.shards {
            assert!(s.jobs.windows(2).all(|w| w[0] < w[1]), "jobs not ascending");
            for &j in &s.jobs {
                seen[j] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "job lost or duplicated");
    }

    #[test]
    fn task_base_is_the_task_count_prefix() {
        let (p, w) = plan(2);
        assert_eq!(p.task_base.len(), w.jobs.len() + 1);
        assert_eq!(*p.task_base.last().unwrap(), w.num_tasks());
        for (j, spec) in w.jobs.iter().enumerate() {
            assert_eq!(p.task_base[j + 1] - p.task_base[j], spec.tasks.len());
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let (a, _) = plan(4);
        let (b, _) = plan(4);
        assert_eq!(a, b);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let (p, w) = plan(4);
        let loads: Vec<usize> = p
            .shards
            .iter()
            .map(|s| s.jobs.iter().map(|&j| w.jobs[j].tasks.len()).sum())
            .collect();
        let total: usize = loads.iter().sum();
        assert_eq!(total, w.num_tasks());
        let max = *loads.iter().max().unwrap();
        // Greedy min-load keeps the heaviest shard within the mean plus
        // one job's worth of tasks.
        let biggest_job = w.jobs.iter().map(|j| j.tasks.len()).max().unwrap_or(0);
        assert!(
            max <= total / loads.len() + biggest_job,
            "max={max} total={total} biggest_job={biggest_job}"
        );
    }

    #[test]
    fn shard_seeds_are_distinct_streams() {
        let (p, _) = plan(4);
        for pair in p.shards.windows(2) {
            assert_ne!(pair[0].seed, pair[1].seed);
        }
    }
}
