//! Deterministic shard planning for the parallel simulator.
//!
//! A shard is a contiguous group of failure domains plus the job slices
//! routed to it. The plan is a pure function of `(fleet, workload,
//! shards, seed)` — thread count never enters it — which is the first
//! half of the bit-reproducibility argument (DESIGN.md §5): with a fixed
//! plan and a private RNG stream per shard, every shard computes the same
//! records no matter which thread runs it, and the canonical merge in
//! [`crate::engine`] assembles them in a fixed order.
//!
//! Shard boundaries always coincide with failure-domain boundaries
//! ([`FleetConfig::shard_ranges`]), so a correlated rack outage never
//! straddles two shards.
//!
//! Jobs are routed as [`JobSlice`]s, not whole jobs: cloud workloads are
//! heavy-tailed (the paper's Fig. 2 — one job can hold most of the
//! trace's tasks), so a wide job is chunked into contiguous task ranges
//! that spread across shards. Tasks of the same job are independent in
//! the model (each draws its own placement and outcome), so the split
//! only changes which RNG stream serves a task — exactly like routing to
//! a different shard already did.

use cgc_gen::{split_seed, FleetConfig, Workload};
use std::ops::Range;

/// A contiguous range of one job's tasks, routed to a shard as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSlice {
    /// Global job index.
    pub job: usize,
    /// The task range (indices local to the job) this slice covers.
    pub tasks: Range<usize>,
}

/// One shard of the simulation: a contiguous domain/machine slice of the
/// fleet, the job slices routed to it, and its private RNG stream seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index (also the RNG stream index).
    pub index: usize,
    /// Failure domains owned by this shard.
    pub domains: Range<usize>,
    /// Machines owned by this shard (global ids, contiguous).
    pub machines: Range<usize>,
    /// Job slices this shard simulates, ascending by `(job, tasks.start)`.
    pub jobs: Vec<JobSlice>,
    /// Seed of this shard's private RNG stream.
    pub seed: u64,
}

/// The full shard plan for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards, in machine-id order.
    pub shards: Vec<ShardSpec>,
    /// Prefix sums of per-job task counts: job `j`'s `k`-th task has the
    /// global task id `task_base[j] + k`. Length `jobs + 1`.
    pub task_base: Vec<usize>,
}

impl ShardPlan {
    /// Builds the plan: domain-aligned machine ranges via
    /// [`FleetConfig::shard_ranges`], then greedy min-load routing of job
    /// slices — wide jobs are first chunked so no single slice exceeds
    /// ~an eighth of a balanced shard's share, then each slice (in `(job,
    /// chunk)` order) goes to the shard with the lowest tasks-per-machine
    /// load, ties to the lowest shard index.
    pub fn new(fleet: &FleetConfig, workload: &Workload, shards: usize, master_seed: u64) -> Self {
        let mut specs: Vec<ShardSpec> = fleet
            .shard_ranges(shards)
            .into_iter()
            .enumerate()
            .map(|(index, (domains, machines))| ShardSpec {
                index,
                domains,
                machines,
                jobs: Vec::new(),
                seed: split_seed(master_seed, index as u64),
            })
            .collect();

        let mut task_base = Vec::with_capacity(workload.jobs.len() + 1);
        task_base.push(0);
        for (j, spec) in workload.jobs.iter().enumerate() {
            task_base.push(task_base[j] + spec.tasks.len());
        }
        // Slice cap: aim for ≥ 8 chunks per shard across the whole
        // workload, so even a single dominant job spreads evenly instead
        // of pinning one shard at 80%+ of all events.
        let total_tasks = *task_base.last().expect("prefix has at least the zero");
        let chunk_cap = (total_tasks.div_ceil(specs.len() * 8)).max(1);

        let mut assigned = vec![0usize; specs.len()];
        for (j, spec) in workload.jobs.iter().enumerate() {
            let n = spec.tasks.len();
            let pieces = n.div_ceil(chunk_cap).max(1);
            for p in 0..pieces {
                let tasks = (p * n / pieces)..((p + 1) * n / pieces);
                // Integer cross-multiplied load comparison — no float
                // ties: load(s) = assigned(s) / machines(s), and the
                // `.then` on the index makes the order total, so `min_by`
                // is unambiguous.
                let best = (0..specs.len())
                    .min_by(|&a, &b| {
                        let ma = specs[a].machines.len().max(1);
                        let mb = specs[b].machines.len().max(1);
                        (assigned[a] * mb).cmp(&(assigned[b] * ma)).then(a.cmp(&b))
                    })
                    .expect("shard_ranges returns at least one shard");
                assigned[best] += tasks.len().max(1);
                specs[best].jobs.push(JobSlice { job: j, tasks });
            }
        }
        ShardPlan {
            shards: specs,
            task_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_gen::GoogleWorkload;

    fn plan(shards: usize) -> (ShardPlan, Workload) {
        let workload = GoogleWorkload::scaled(40, 2 * 3_600).generate(7);
        let fleet = FleetConfig::google(40); // 4 domains of 10
        (ShardPlan::new(&fleet, &workload, shards, 0xC10D), workload)
    }

    #[test]
    fn every_task_lands_in_exactly_one_shard() {
        let (p, w) = plan(4);
        let mut seen: Vec<Vec<usize>> = w.jobs.iter().map(|j| vec![0; j.tasks.len()]).collect();
        for s in &p.shards {
            assert!(
                s.jobs
                    .windows(2)
                    .all(|w| (w[0].job, w[0].tasks.start) < (w[1].job, w[1].tasks.start)),
                "slices not ascending"
            );
            for slice in &s.jobs {
                assert!(slice.tasks.end <= w.jobs[slice.job].tasks.len());
                for t in slice.tasks.clone() {
                    seen[slice.job][t] += 1;
                }
            }
        }
        assert!(
            seen.iter().flatten().all(|&n| n == 1),
            "task lost or duplicated"
        );
    }

    #[test]
    fn task_base_is_the_task_count_prefix() {
        let (p, w) = plan(2);
        assert_eq!(p.task_base.len(), w.jobs.len() + 1);
        assert_eq!(*p.task_base.last().unwrap(), w.num_tasks());
        for (j, spec) in w.jobs.iter().enumerate() {
            assert_eq!(p.task_base[j + 1] - p.task_base[j], spec.tasks.len());
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let (a, _) = plan(4);
        let (b, _) = plan(4);
        assert_eq!(a, b);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let (p, w) = plan(4);
        let loads: Vec<usize> = p
            .shards
            .iter()
            .map(|s| s.jobs.iter().map(|slice| slice.tasks.len()).sum())
            .collect();
        let total: usize = loads.iter().sum();
        assert_eq!(total, w.num_tasks());
        let max = *loads.iter().max().unwrap();
        // Slice chunking caps any routed unit at ~total/(shards*8), so
        // greedy min-load keeps the heaviest shard within the mean plus
        // one chunk's worth of tasks — even when one job dominates.
        let chunk_cap = total.div_ceil(p.shards.len() * 8).max(1);
        assert!(
            max <= total / loads.len() + chunk_cap,
            "max={max} total={total} chunk_cap={chunk_cap}"
        );
    }

    #[test]
    fn wide_jobs_split_across_shards() {
        // Force the paper's heavy tail (Fig. 2): one job holding most of
        // the trace's tasks. It must be sliced over more than one shard,
        // and every task must still land exactly once.
        let mut workload = GoogleWorkload::scaled(40, 2 * 3_600).generate(7);
        let template = workload.jobs[0].tasks[0].clone();
        workload.jobs[0].tasks = vec![template; 400];
        let fleet = FleetConfig::google(40);
        let p = ShardPlan::new(&fleet, &workload, 4, 0xC10D);
        let holders = p
            .shards
            .iter()
            .filter(|s| s.jobs.iter().any(|slice| slice.job == 0))
            .count();
        assert!(holders > 1, "dominant job (400 tasks) stayed on one shard");
        let mut seen = vec![0usize; 400];
        for s in &p.shards {
            for slice in s.jobs.iter().filter(|slice| slice.job == 0) {
                for t in slice.tasks.clone() {
                    seen[t] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "task lost or duplicated");
    }

    #[test]
    fn shard_seeds_are_distinct_streams() {
        let (p, _) = plan(4);
        for pair in p.shards.windows(2) {
            assert_ne!(pair[0].seed, pair[1].seed);
        }
    }
}
