//! The discrete-event simulation engine.
//!
//! Drives a [`Workload`] through the cluster model:
//!
//! 1. each job's tasks enter the pending queue at the job's submission
//!    time (paper Fig. 1, step 1);
//! 2. a scheduling pass places pending tasks in priority-then-FCFS order
//!    onto machines chosen by the placement policy (step 2); when
//!    preemption is enabled, a task that does not fit may evict
//!    lower-priority tasks;
//! 3. at schedule time an [`AttemptPlan`] decides how the attempt ends —
//!    finish, fail, kill or lost (steps 4/5); failures and evictions
//!    resubmit up to a configured budget (step 6);
//! 4. every `sample_period` seconds each machine's instantaneous usage is
//!    recorded, broken down by priority class, with per-task jitter so CPU
//!    usage carries the noise the paper measures in Fig. 13.
//!
//! The engine emits a [`Trace`] through [`cgc_trace::TraceBuilder`], which
//! re-validates the whole event stream against the task life-cycle state
//! machine — an end-to-end consistency check on the simulation itself.
//!
//! # Sharded execution
//!
//! With [`SimConfig::shards`] > 1 the fleet is split along failure-domain
//! boundaries into independent shards ([`crate::shard::ShardPlan`]), each
//! simulated by its own engine with a private RNG stream split from the
//! master seed. Shard outputs carry global ids and merge into one
//! canonical trace; because the plan and the merge order are pure
//! functions of the config, the output for a given `(seed, shards)` is
//! bit-identical whether the shards run on 1 thread or 8
//! ([`SimConfig::threads`]). `shards <= 1` takes the pre-sharding code
//! path and reproduces historical seeded traces exactly.
//!
//! # Sim-time telemetry
//!
//! [`Simulator::run_with_telemetry`] attaches a [`TelemetryProbe`] to
//! every engine: on a fixed sim-time grid it samples pending-queue depth
//! per priority band, the running-task count, free CPU/memory over up
//! machines, the event-heap size, and the blacklist size, and it feeds
//! log-bucketed histograms of per-band queueing delay (first submit →
//! first placement), resubmit wait, and per-attempt run length. The
//! probe only *reads* engine state — it never touches the RNG or the
//! event stream — so a telemetry run emits the same trace as a plain
//! run, and per-shard bundles merged in shard order are byte-identical
//! across thread counts ([`cgc_obs::TelemetryBundle::absorb`]).

use crate::checkpoint::{
    run_fingerprint, CheckpointError, CheckpointOptions, CheckpointSink, CounterSnapshot,
    EngineSnapshot, HeapEntry, HeapEventKind, HostFailureSnapshot, MachineSnapshot, PendingEntry,
    PhaseSnapshot, ProbeSnapshot, RngState, RunCheckpoint, RunningSnapshot, CHECKPOINT_VERSION,
};
use crate::config::{PlacementPolicy, SimConfig};
use crate::outcome::AttemptPlan;
use crate::queue::{EventKind, EventQueue, PendingQueue, QueuedEvent};
use crate::shard::{JobSlice, ShardPlan, ShardSpec};
use cgc_gen::Workload;
use cgc_obs::{TelemetryBundle, TimelineSample, NUM_BANDS};
use cgc_trace::task::{TaskEvent, TaskEventKind};
use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
use cgc_trace::{
    Demand, Duration, JobId, MachineId, MachineRecord, Priority, TaskId, Timestamp, Trace,
    TraceBuilder,
};
use rand::{Rng, SeedableRng};
// ChaCha12 *is* what rand 0.8's `StdRng` wraps, and neither type overrides
// `seed_from_u64`, so naming it directly changes no seeded stream — it only
// gains the stream-position getters that checkpoint/restore needs.
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::HashMap;
use std::mem;
use std::ops::Range;

/// Maximum placement failures per scheduling pass before the pass gives
/// up. Deep enough that narrow jobs behind wide head-of-line blockers
/// still backfill (grid schedulers backfill aggressively; without it,
/// saturated nodes show spurious one-sample utilization dips).
const MAX_SCAN_FAILURES: usize = 512;

/// The simulator. Construct with a config, then [`run`](Simulator::run).
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

/// Reusable engine allocations: the event queue and every per-pass
/// scratch buffer. One run leaves its capacities behind for the next, so
/// repeated simulations (parameter sweeps, benchmarks) stop paying the
/// allocation tax — pass the same scratch to
/// [`Simulator::run_with_scratch`]. The queue backend is re-derived from
/// each run's [`SchedulerCore`](crate::SchedulerCore) and horizon, so a
/// scratch can be reused across configs.
#[derive(Default)]
pub struct SimScratch {
    queue: EventQueue,
    preferred: Vec<usize>,
    last_resort: Vec<usize>,
    pass_buf: Vec<((Reverse<u8>, u64), usize)>,
    victims: Vec<(u8, Reverse<Timestamp>, usize)>,
    down_victims: Vec<usize>,
}

impl SimScratch {
    /// An empty scratch (allocates lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TaskInfo {
    /// Engine-local job index (position in the engine's job list).
    job: usize,
    demand: Demand,
    priority: Priority,
    runtime: Duration,
    cpu_processors: f64,
    utilization: f64,
}

#[derive(Debug, Clone, Copy)]
struct RunningTask {
    task: usize,
    start: Timestamp,
    demand: Demand,
    priority: Priority,
    /// Mean CPU actually consumed (demand × utilization).
    cpu_base: f64,
    /// Mean memory actually consumed.
    mem_base: f64,
}

#[derive(Debug, Clone)]
struct MachineState {
    /// Nominal capacity (what usage samples clamp against).
    capacity: Demand,
    /// Capacity the scheduler packs against: CPU overcommitted, memory
    /// with headroom.
    placeable: Demand,
    free: Demand,
    running: Vec<RunningTask>,
    /// False while the machine is in an outage.
    up: bool,
    /// End of the latest outage covering this machine; `MachineUp` events
    /// that fire before it are stale and ignored.
    down_until: Timestamp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Pending,
    Running { machine: usize },
    Dead,
}

/// Sim-time telemetry recorder, attached to an engine by
/// [`Simulator::run_with_telemetry`]. Pure observer: it reads queue and
/// fleet state at tick boundaries and at the existing life-cycle hooks,
/// and never draws randomness or schedules events — the determinism
/// suite pins that a telemetry run's trace is bit-identical to a plain
/// run's.
struct TelemetryProbe {
    /// Tick spacing of the sim-time grid, seconds (>= 1).
    interval: Duration,
    bundle: TelemetryBundle,
    /// First submission time per local task; `u64::MAX` until submitted.
    first_submit: Vec<Timestamp>,
    /// Whether the task has been placed at least once (the queueing-delay
    /// histogram counts only the first placement).
    ever_placed: Vec<bool>,
    /// End time of the task's previous attempt; `u64::MAX` if none.
    last_end: Vec<Timestamp>,
}

impl TelemetryProbe {
    fn new(interval: Duration, horizon: Duration, n_tasks: usize) -> Self {
        TelemetryProbe {
            interval: interval.max(1),
            bundle: TelemetryBundle::new("simulation", interval, horizon),
            first_submit: vec![Timestamp::MAX; n_tasks],
            ever_placed: vec![false; n_tasks],
            last_end: vec![Timestamp::MAX; n_tasks],
        }
    }

    /// Records the end of one attempt (finish, fail, kill, eviction, or
    /// machine loss): feeds the run-length histogram and arms the
    /// resubmit-wait measurement for the next placement.
    fn attempt_ended(&mut self, time: Timestamp, task: usize, start: Timestamp) {
        self.bundle.run_length.record(time.saturating_sub(start));
        self.last_end[task] = time;
    }
}

/// One engine's slice of the run: which machines and jobs it owns (in
/// global-id space) and its private RNG. The unsharded run is the
/// degenerate case — the whole fleet, every job, the master RNG.
struct EngineInput<'w> {
    records: &'w [MachineRecord],
    /// Global id of `records[0]` (shards own contiguous machine ranges).
    machine_base: usize,
    /// Failure domains owned by this engine (global indices).
    domains: Range<usize>,
    /// Job slices this engine simulates, ascending by `(job, start)`.
    jobs: &'w [JobSlice],
    /// Prefix sums of per-job task counts over the *whole* workload:
    /// job `j`'s `k`-th task has the global task id `task_base[j] + k`.
    task_base: &'w [usize],
    rng: ChaCha12Rng,
    /// Shard index for metrics attribution (0 for the unsharded run).
    shard: usize,
    /// Telemetry sampling interval; `None` runs without a probe.
    telemetry: Option<Duration>,
    /// Checkpoint collector shared by every shard; `None` disables
    /// checkpointing entirely (the default).
    sink: Option<&'w CheckpointSink>,
    /// First sim-time checkpoint boundary (`Timestamp::MAX` when off).
    next_boundary: Timestamp,
    /// Snapshot to resume this shard from instead of seeding a fresh run.
    resume: Option<&'w EngineSnapshot>,
}

/// Per-engine event tallies, batched in plain integers on the hot paths
/// and flushed to the global metrics registry once per engine run.
#[derive(Default)]
struct EngineCounters {
    placements: u64,
    evictions: u64,
    retries: u64,
    fault_injections: u64,
    blacklist_hits: u64,
}

/// What one engine run produces, already in global-id space.
struct EngineOutput {
    events: Vec<TaskEvent>,
    /// `(global job index, core-seconds)` per routed slice, ascending by
    /// job; a job split across shards contributes one entry per slice,
    /// summed at merge time.
    job_cpu_seconds: Vec<(usize, f64)>,
    series: Vec<HostSeries>,
    /// This engine's telemetry bundle, when a probe was attached.
    telemetry: Option<TelemetryBundle>,
}

struct Engine<'a> {
    config: &'a SimConfig,
    rng: ChaCha12Rng,
    /// Emitted events (global task/machine ids), pushed to the trace
    /// builder at merge time in emission order.
    events: Vec<TaskEvent>,
    queue: EventQueue,
    seq: u64,
    /// Pending queue ordered by (descending priority, FCFS sequence).
    pending: PendingQueue,
    machines: Vec<MachineState>,
    /// Global id of local machine 0.
    machine_base: usize,
    /// Failure domains this engine owns (global indices).
    domains: Range<usize>,
    tasks: Vec<TaskInfo>,
    /// Local task index → global task id.
    task_gid: Vec<usize>,
    phase: Vec<TaskPhase>,
    attempt: Vec<u32>,
    resubmits_left: Vec<u32>,
    /// How each task's current attempt will terminate (set at schedule
    /// time, read when the completion event fires).
    completion_kind: Vec<TaskEventKind>,
    /// Accumulated core-seconds per local job (for Formula 4 CPU usage).
    job_cpu_seconds: Vec<f64>,
    /// Failures so far per task (drives the backoff exponent).
    fails: Vec<u32>,
    /// Whether each task is a deterministic crash-looper; decided lazily
    /// at first submission so fault-free runs draw no extra randomness.
    looper: Vec<Option<bool>>,
    /// Per-(task, machine) failure counts for blacklisting.
    host_failures: HashMap<(usize, usize), u32>,
    series: Vec<HostSeries>,
    horizon: Duration,
    // Scratch buffers (from SimScratch; returned after the run). Taken
    // with `mem::take` inside the methods that use them, so the hot
    // scheduling paths never allocate per dispatch.
    preferred: Vec<usize>,
    last_resort: Vec<usize>,
    pass_buf: Vec<((Reverse<u8>, u64), usize)>,
    victims: Vec<(u8, Reverse<Timestamp>, usize)>,
    down_victims: Vec<usize>,
    counters: EngineCounters,
    /// Sim-time telemetry recorder; `None` outside telemetry runs.
    telemetry: Option<TelemetryProbe>,
    /// Next usage-sample grid point (engine state so checkpoints can
    /// resume mid-grid).
    next_sample: Timestamp,
    /// Next telemetry-tick grid point (`Timestamp::MAX` without a probe).
    next_tick: Timestamp,
    /// True once the event loop has drained; checkpoints taken during the
    /// trailing sample/tick flush resume straight into that flush.
    drained: bool,
    /// This engine's shard index (names its slot at the sink).
    shard: usize,
    /// Checkpoint collector; `None` disables boundary snapshots.
    sink: Option<&'a CheckpointSink>,
    /// Sim-time gap between checkpoint boundaries.
    ckpt_every: Duration,
    /// Next checkpoint boundary (`Timestamp::MAX` when checkpointing is
    /// off, so the hot loop pays one u64 compare and nothing else).
    next_boundary: Timestamp,
    /// Live progress probe, captured once per run (`None` when no
    /// heartbeat is attached, so the hot loop pays a `None` branch).
    /// Write-only: the engine stores watermarks and tallies but never
    /// reads them, which is what keeps the probe determinism-neutral.
    progress: Option<&'static cgc_obs::ProgressProbe>,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the workload to the end of its horizon and returns the
    /// validated trace.
    pub fn run(&self, workload: &Workload) -> Trace {
        self.run_with_scratch(workload, &mut SimScratch::new())
    }

    /// Like [`run`](Self::run), but reuses the caller's scratch
    /// allocations (event heap, scheduling buffers) across runs. The
    /// scratch never influences the output — only how much the run
    /// allocates.
    pub fn run_with_scratch(&self, workload: &Workload, scratch: &mut SimScratch) -> Trace {
        self.run_inner(workload, scratch, None, None, None)
            .expect("checkpointing disabled, no error path")
            .0
    }

    /// Like [`run`](Self::run), but fans the finished trace's records out
    /// to `sinks` in **canonical file order** (header, machines, jobs,
    /// tasks, events, usage series — the order every
    /// [`BatchSource`](cgc_trace::BatchSource) yields and the text writer
    /// lays out) before returning the trace itself.
    ///
    /// This is the producer half of the fused sim→characterize pipeline:
    /// pair a [`cgc_trace::BatchChannelSink`] here with a
    /// [`cgc_trace::SimBatches`] consumer on another thread and the
    /// analysis passes ingest simulator output with no trace file in
    /// between; add a [`cgc_trace::TextWriterSink`] to the slice and the
    /// same walk also serializes the trace. Emission happens *after* the
    /// shard merge so every sink observes the exact record sequence a
    /// file roundtrip would — that ordering is what makes the fused
    /// report byte-identical to the roundtrip report.
    ///
    /// On a sink error (consumer hung up, writer failed) the error is
    /// returned and the trace is dropped: a partial emission is never
    /// mistaken for a complete one. The simulation itself cannot fail.
    pub fn run_with_sinks(
        &self,
        workload: &Workload,
        sinks: &mut [&mut dyn cgc_trace::RecordSink],
    ) -> Result<Trace, cgc_trace::SinkError> {
        let trace = self.run(workload);
        cgc_trace::emit_trace(&trace, sinks)?;
        Ok(trace)
    }

    /// Like [`run`](Self::run), but also records sim-time telemetry on a
    /// grid of ticks at `0, interval, … < horizon` seconds. The probe is
    /// a pure observer: the returned trace is bit-identical to what
    /// [`run`](Self::run) produces, and the bundle itself is
    /// byte-identical for a given `(seed, shards, interval)` no matter
    /// how many threads executed the shards.
    pub fn run_with_telemetry(
        &self,
        workload: &Workload,
        interval: Duration,
    ) -> (Trace, TelemetryBundle) {
        let (trace, telemetry) = self
            .run_inner(workload, &mut SimScratch::new(), Some(interval), None, None)
            .expect("checkpointing disabled, no error path");
        (trace, telemetry.expect("telemetry requested"))
    }

    /// Like [`run`](Self::run), optionally writing periodic checkpoints
    /// and/or resuming from one — the crash-safe entry point.
    ///
    /// With `checkpoint` set, every shard engine snapshots its complete
    /// state at sim-time boundaries `every, 2·every, …` and the sink
    /// atomically replaces `checkpoint.path` once all shards reach a
    /// boundary. With `resume` set, the run starts from the checkpoint's
    /// boundary instead of t = 0 and produces **byte-identical** trace
    /// and telemetry output to an uninterrupted run — the contract
    /// `tests/checkpoint.rs` pins across cut points and thread counts.
    ///
    /// `telemetry` must match the interrupted run's interval (a
    /// checkpoint records whether telemetry was on); a checkpoint from a
    /// different config, workload, or shard count is rejected as
    /// [`CheckpointError::Mismatch`] rather than replayed into garbage.
    pub fn run_checkpointed(
        &self,
        workload: &Workload,
        telemetry: Option<Duration>,
        checkpoint: Option<&CheckpointOptions>,
        resume: Option<&RunCheckpoint>,
    ) -> Result<(Trace, Option<TelemetryBundle>), CheckpointError> {
        self.run_inner(
            workload,
            &mut SimScratch::new(),
            telemetry,
            checkpoint,
            resume,
        )
    }

    fn run_inner(
        &self,
        workload: &Workload,
        scratch: &mut SimScratch,
        telemetry: Option<Duration>,
        checkpoint: Option<&CheckpointOptions>,
        resume: Option<&RunCheckpoint>,
    ) -> Result<(Trace, Option<TelemetryBundle>), CheckpointError> {
        let _span = cgc_obs::span(cgc_obs::stages::SIMULATE);
        let config = &self.config;
        // The fleet is drawn once from the master seed, before any
        // sharding decision, so the machine population is identical for
        // every shard count.
        let mut master = ChaCha12Rng::seed_from_u64(config.seed);
        let records = config.fleet.generate(&mut master);

        // Scenario identity, computed only when checkpoints are in play.
        let fingerprint = if checkpoint.is_some() || resume.is_some() {
            Some(run_fingerprint(config, workload))
        } else {
            None
        };
        if let Some(r) = resume {
            let fp = fingerprint.expect("resume implies fingerprint");
            if r.version != CHECKPOINT_VERSION {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint is format v{}, this build runs v{CHECKPOINT_VERSION}",
                    r.version
                )));
            }
            if r.fingerprint != fp {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint fingerprint {:016x} does not match this \
                     config/workload ({fp:016x}); resuming would not reproduce \
                     the interrupted run",
                    r.fingerprint
                )));
            }
            if r.telemetry != telemetry {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint telemetry interval {:?} does not match the \
                     requested {telemetry:?}",
                    r.telemetry
                )));
            }
        }

        let outputs: Vec<EngineOutput> = if config.shards <= 1 {
            if let Some(r) = resume {
                if r.shards.len() != 1 {
                    return Err(CheckpointError::Mismatch(format!(
                        "checkpoint holds {} shard snapshots, this config runs 1",
                        r.shards.len()
                    )));
                }
            }
            let sink = checkpoint.map(|o| {
                CheckpointSink::new(
                    o.clone(),
                    fingerprint.expect("checkpoint implies fingerprint"),
                    telemetry,
                    1,
                )
            });
            let next_boundary = sink.as_ref().map_or(Timestamp::MAX, |s| {
                first_boundary(s.every(), resume.map(|r| r.at))
            });
            // Pre-sharding path: one engine owns everything and continues
            // the master RNG right after the fleet draws, which keeps
            // every historical seeded trace bit-identical. (On resume the
            // restored stream position replaces the RNG wholesale.)
            let jobs: Vec<JobSlice> = workload
                .jobs
                .iter()
                .enumerate()
                .map(|(j, spec)| JobSlice {
                    job: j,
                    tasks: 0..spec.tasks.len(),
                })
                .collect();
            let mut task_base = Vec::with_capacity(workload.jobs.len() + 1);
            task_base.push(0);
            for (j, spec) in workload.jobs.iter().enumerate() {
                task_base.push(task_base[j] + spec.tasks.len());
            }
            cgc_obs::progress().begin_run(workload.horizon, 1);
            vec![run_engine(
                config,
                workload,
                EngineInput {
                    records: &records,
                    machine_base: 0,
                    domains: 0..config.fleet.num_domains(),
                    jobs: &jobs,
                    task_base: &task_base,
                    rng: master,
                    shard: 0,
                    telemetry,
                    sink: sink.as_ref(),
                    next_boundary,
                    resume: resume.map(|r| &r.shards[0]),
                },
                scratch,
            )]
        } else {
            let plan = ShardPlan::new(&config.fleet, workload, config.shards, config.seed);
            if let Some(r) = resume {
                if r.shards.len() != plan.shards.len() {
                    return Err(CheckpointError::Mismatch(format!(
                        "checkpoint holds {} shard snapshots, this config runs {}",
                        r.shards.len(),
                        plan.shards.len()
                    )));
                }
            }
            let sink = checkpoint.map(|o| {
                CheckpointSink::new(
                    o.clone(),
                    fingerprint.expect("checkpoint implies fingerprint"),
                    telemetry,
                    plan.shards.len(),
                )
            });
            let next_boundary = sink.as_ref().map_or(Timestamp::MAX, |s| {
                first_boundary(s.every(), resume.map(|r| r.at))
            });
            let sink_ref = sink.as_ref();
            cgc_obs::progress().begin_run(workload.horizon, plan.shards.len());
            let run_one = |(shard, spec): (usize, &ShardSpec)| {
                run_engine(
                    config,
                    workload,
                    EngineInput {
                        records: &records[spec.machines.clone()],
                        machine_base: spec.machines.start,
                        domains: spec.domains.clone(),
                        jobs: &spec.jobs,
                        task_base: &plan.task_base,
                        rng: ChaCha12Rng::seed_from_u64(spec.seed),
                        shard,
                        telemetry,
                        sink: sink_ref,
                        next_boundary,
                        resume: resume.map(|r| &r.shards[shard]),
                    },
                    &mut SimScratch::new(),
                )
            };
            // The thread count only picks the executor; both arms produce
            // shard outputs in shard-index order (rayon's indexed collect
            // preserves order), so the merge below is identical.
            if config.threads > 1 {
                plan.shards.par_iter().enumerate().map(run_one).collect()
            } else {
                plan.shards.iter().enumerate().map(run_one).collect()
            }
        };

        // Fold shard bundles in shard-index order: element-wise integer
        // sums and a fixed f64 summation order keep the merged bundle
        // byte-identical across thread counts.
        let mut outputs = outputs;
        let bundle = telemetry.map(|_| {
            let mut merged: Option<TelemetryBundle> = None;
            for out in &mut outputs {
                let shard_bundle = out
                    .telemetry
                    .take()
                    .expect("probe attached to every engine");
                match &mut merged {
                    Some(m) => m.absorb(&shard_bundle),
                    None => merged = Some(shard_bundle),
                }
            }
            merged.expect("at least one engine ran")
        });

        Ok((merge_outputs(workload, &records, outputs), bundle))
    }
}

/// The first checkpoint boundary of a run: the first multiple of `every`
/// strictly after the resume point (or just `every` for a fresh run).
fn first_boundary(every: Duration, resume_at: Option<Timestamp>) -> Timestamp {
    match resume_at {
        Some(at) => (at / every).saturating_add(1).saturating_mul(every),
        None => every,
    }
}

/// Runs one engine over its machine/job slice.
fn run_engine(
    config: &SimConfig,
    workload: &Workload,
    input: EngineInput<'_>,
    scratch: &mut SimScratch,
) -> EngineOutput {
    let EngineInput {
        records,
        machine_base,
        domains,
        jobs,
        task_base,
        rng,
        shard,
        telemetry,
        sink,
        next_boundary,
        resume,
    } = input;
    let _span = cgc_obs::span_indexed(cgc_obs::stages::SHARD, shard);

    // Flatten this engine's job slices into dense local task tables.
    let n_tasks: usize = jobs.iter().map(|s| s.tasks.len()).sum();
    let mut tasks = Vec::with_capacity(n_tasks);
    let mut task_gid = Vec::with_capacity(n_tasks);
    for (local_job, slice) in jobs.iter().enumerate() {
        let spec = &workload.jobs[slice.job];
        for (k, t) in spec.tasks[slice.tasks.clone()].iter().enumerate() {
            task_gid.push(task_base[slice.job] + slice.tasks.start + k);
            tasks.push(TaskInfo {
                job: local_job,
                demand: t.demand,
                priority: spec.priority,
                runtime: t.runtime.max(1),
                cpu_processors: t.cpu_processors,
                utilization: t.utilization,
            });
        }
    }

    let machines: Vec<MachineState> = records
        .iter()
        .map(|m| {
            let capacity = m.capacity();
            let placeable = Demand::new(
                capacity.cpu * config.cpu_overcommit,
                capacity.memory * config.memory_headroom,
            );
            MachineState {
                capacity,
                placeable,
                free: placeable,
                running: Vec::with_capacity(8),
                up: true,
                down_until: 0,
            }
        })
        .collect();
    // Pre-size every sample grid: the run appends exactly one sample per
    // period per machine, so reserve once instead of doubling along.
    let n_samples = (workload.horizon / config.sample_period.max(1)) as usize + 1;
    let series = (0..machines.len())
        .map(|i| {
            let mut s = HostSeries::new(MachineId::from(machine_base + i), 0, config.sample_period);
            s.samples.reserve(n_samples);
            s
        })
        .collect();

    let SimScratch {
        queue,
        mut preferred,
        mut last_resort,
        mut pass_buf,
        victims,
        down_victims,
    } = mem::take(scratch);
    // Re-derive capacities from *this* engine's routed slice — a shard
    // owns only its share of machines and tasks, so sizing from the
    // global cardinality would over-allocate every shard (and a reused
    // scratch would under-serve a larger follow-up run).
    let mut queue = queue.for_core(config.core, workload.horizon, 3 * n_tasks + 8);
    queue.reserve(n_tasks);
    preferred.reserve(records.len().saturating_sub(preferred.capacity()));
    last_resort.reserve(records.len().saturating_sub(last_resort.capacity()));
    pass_buf.reserve(n_tasks.saturating_sub(pass_buf.capacity()));

    let mut engine = Engine {
        config,
        rng,
        events: Vec::with_capacity(3 * n_tasks + 8),
        queue,
        seq: 0,
        pending: PendingQueue::for_core(config.core),
        machines,
        machine_base,
        domains,
        tasks,
        task_gid,
        phase: vec![TaskPhase::Dead; n_tasks],
        attempt: vec![0; n_tasks],
        resubmits_left: vec![config.max_resubmits; n_tasks],
        completion_kind: vec![TaskEventKind::Finish; n_tasks],
        job_cpu_seconds: vec![0.0; jobs.len()],
        fails: vec![0; n_tasks],
        looper: vec![None; n_tasks],
        host_failures: HashMap::new(),
        series,
        horizon: workload.horizon,
        preferred,
        last_resort,
        pass_buf,
        victims,
        down_victims,
        counters: EngineCounters::default(),
        telemetry: telemetry.map(|iv| TelemetryProbe::new(iv, workload.horizon, n_tasks)),
        next_sample: 0,
        next_tick: if telemetry.is_some() {
            0
        } else {
            Timestamp::MAX
        },
        drained: false,
        shard,
        sink,
        ckpt_every: sink.map_or(Duration::MAX, |s| s.every()),
        next_boundary,
        progress: cgc_obs::progress_if_active(),
    };

    match resume {
        Some(snapshot) => {
            // Resume: the snapshot replaces the seeded initial state
            // wholesale — heap, RNG position, queues, machines, emitted
            // events — so the run continues exactly where it stopped.
            engine.restore(snapshot);
            cgc_obs::metrics().checkpoint_restores.add(1);
        }
        None => {
            // Seed the queue with every task submission.
            let mut task_idx = 0usize;
            for slice in jobs {
                let spec = &workload.jobs[slice.job];
                for _ in slice.tasks.clone() {
                    engine.push(spec.submit, EventKind::Submit { task: task_idx });
                    task_idx += 1;
                }
            }

            // Seed machine outages: per-machine Poisson over the horizon.
            if config.machine_failures_per_day > 0.0 {
                engine.seed_outages(workload.horizon);
            }
            // Seed correlated failure-domain outages (scripted + random).
            engine.seed_domain_outages(workload.horizon);
        }
    }

    engine.run();

    // Flush the batched tallies to the global registry in one shot per
    // engine run (each `add` is gated on the instrumentation switch).
    {
        let m = cgc_obs::metrics();
        let c = &engine.counters;
        m.placements.add(c.placements);
        m.evictions.add(c.evictions);
        m.retries.add(c.retries);
        m.fault_injections.add(c.fault_injections);
        m.blacklist_hits.add(c.blacklist_hits);
        let samples: u64 = engine.series.iter().map(|s| s.samples.len() as u64).sum();
        m.samples_recorded.add(samples);
        m.record_shard_events(shard, engine.events.len() as u64);
    }

    // Hand the scratch allocations back for the next run, and map
    // per-job usage to global job ids for the merge.
    let Engine {
        mut queue,
        mut preferred,
        mut last_resort,
        mut pass_buf,
        mut victims,
        mut down_victims,
        events,
        job_cpu_seconds,
        series,
        telemetry: probe,
        ..
    } = engine;
    queue.clear();
    preferred.clear();
    last_resort.clear();
    pass_buf.clear();
    victims.clear();
    down_victims.clear();
    *scratch = SimScratch {
        queue,
        preferred,
        last_resort,
        pass_buf,
        victims,
        down_victims,
    };

    EngineOutput {
        events,
        job_cpu_seconds: job_cpu_seconds
            .into_iter()
            .enumerate()
            .map(|(local, cpu_s)| (jobs[local].job, cpu_s))
            .collect(),
        series,
        telemetry: probe.map(|p| p.bundle),
    }
}

/// Assembles engine outputs into the canonical trace.
///
/// Machines, jobs and tasks are added in global-id order straight from
/// the fleet and workload tables, so their ids never depend on the shard
/// layout. Events are pushed shard by shard: every task lives in exactly
/// one shard, so the builder's stable `(time, task)` sort sees the same
/// within-task emission order no matter how shards interleave. Series in
/// shard order *is* ascending machine-id order, because shards own
/// contiguous machine ranges.
fn merge_outputs(
    workload: &Workload,
    records: &[MachineRecord],
    outputs: Vec<EngineOutput>,
) -> Trace {
    let _span = cgc_obs::span(cgc_obs::stages::MERGE);
    let mut builder = TraceBuilder::new(workload.system.clone(), workload.horizon);
    for m in records {
        builder.add_machine(m.cpu_capacity, m.memory_capacity, m.page_cache_capacity);
    }
    let mut mean_memory = Vec::with_capacity(workload.jobs.len());
    for spec in &workload.jobs {
        let job_id = builder.add_job(spec.user, spec.priority, spec.submit);
        for t in &spec.tasks {
            builder.add_task(job_id, t.demand);
        }
        mean_memory.push(spec.nominal_memory());
    }
    // A job sliced across shards reports core-seconds once per slice;
    // accumulate in shard order (deterministic f64 summation) and set
    // each job's usage exactly once. A job in one shard sums a single
    // term, so unsharded totals are bit-identical to the historical path.
    let mut job_cpu = vec![0.0f64; workload.jobs.len()];
    for out in outputs {
        for ev in out.events {
            builder.push_event(ev);
        }
        for (job, cpu_s) in out.job_cpu_seconds {
            job_cpu[job] += cpu_s;
        }
        for s in out.series {
            builder.add_host_series(s);
        }
    }
    for (job, &cpu_s) in job_cpu.iter().enumerate() {
        builder.set_job_usage(JobId::from(job), cpu_s, mean_memory[job]);
    }
    builder
        .build()
        .expect("simulator emits only legal event sequences")
}

impl Engine<'_> {
    fn push(&mut self, time: Timestamp, kind: EventKind) {
        self.seq += 1;
        self.queue.push(QueuedEvent {
            time,
            seq: self.seq,
            kind,
        });
    }

    fn run(&mut self) {
        // The telemetry grid advances exactly like the usage-sample grid:
        // a tick fires once every event before it has been processed, so
        // tick contents depend only on sim-time state — never on how
        // same-timestamp events happened to be ordered.
        let tick_step = match &self.telemetry {
            Some(p) => p.interval,
            None => Timestamp::MAX,
        };
        if !self.drained {
            // Peek-then-pop: a checkpoint boundary at or before the
            // next event's time snapshots with that event still
            // queued, so a resumed run pops it afresh and replays the
            // identical sequence.
            while let Some(next) = self.queue.peek() {
                if next.time >= self.horizon {
                    // Pop the post-horizon event before stopping, exactly
                    // like the pre-checkpoint loop did, so the trailing
                    // telemetry ticks observe the same queue size.
                    self.queue.pop();
                    break;
                }
                while self.next_boundary <= next.time {
                    let at = self.next_boundary;
                    self.take_checkpoint(at);
                    self.next_boundary = at.saturating_add(self.ckpt_every);
                }
                let ev = self.queue.pop().expect("peeked just above");
                if let Some(p) = self.progress {
                    p.on_event(self.shard, ev.time);
                }
                while self.next_sample <= ev.time {
                    let at = self.next_sample;
                    self.take_samples(at);
                    self.next_sample += self.config.sample_period;
                }
                while self.next_tick <= ev.time {
                    let at = self.next_tick;
                    self.telemetry_tick(at);
                    self.next_tick = at.saturating_add(tick_step);
                }
                match ev.kind {
                    EventKind::Submit { task } => self.handle_submit(ev.time, task),
                    EventKind::Complete { task, attempt } => {
                        self.handle_complete(ev.time, task, attempt)
                    }
                    EventKind::Kick => self.schedule_pass(ev.time),
                    EventKind::MachineDown { machine, until } => {
                        self.handle_machine_down(ev.time, machine, until)
                    }
                    EventKind::MachineUp { machine } => self.handle_machine_up(ev.time, machine),
                }
            }
            self.drained = true;
        }
        // Boundaries past the last event snapshot `drained` state *before*
        // the trailing grids run (they draw RNG for usage jitter), so a
        // resume from one skips straight to the flush below.
        while self.next_boundary < self.horizon {
            let at = self.next_boundary;
            self.take_checkpoint(at);
            self.next_boundary = at.saturating_add(self.ckpt_every);
        }
        // Finish the sampling grids to the horizon.
        while self.next_sample < self.horizon {
            let at = self.next_sample;
            self.take_samples(at);
            self.next_sample += self.config.sample_period;
        }
        while self.next_tick < self.horizon {
            let at = self.next_tick;
            self.telemetry_tick(at);
            self.next_tick = at.saturating_add(tick_step);
        }
        // Account CPU time of tasks still running at the horizon.
        for m in &self.machines {
            for r in &m.running {
                let info = &self.tasks[r.task];
                self.job_cpu_seconds[info.job] +=
                    info.cpu_processors * (self.horizon - r.start) as f64;
            }
        }
        if let Some(p) = self.progress {
            // The last queued event usually fires before the horizon;
            // snap this shard's watermark so completion reaches 1.0.
            p.shard_done(self.shard, self.horizon);
        }
    }

    /// Hands the sink a complete snapshot of this engine at boundary
    /// `at`. No-op without a sink; the sink assembles and atomically
    /// writes the [`RunCheckpoint`] once every shard reaches `at`.
    fn take_checkpoint(&self, at: Timestamp) {
        let Some(sink) = self.sink else {
            return;
        };
        sink.submit(self.shard, at, self.snapshot());
    }

    /// Captures the engine's complete state. Everything the event loop
    /// reads or mutates is here; collections without a canonical order
    /// (heap, hash map) are sorted so equal states serialize to equal
    /// bytes.
    fn snapshot(&self) -> EngineSnapshot {
        let mut heap: Vec<HeapEntry> = self
            .queue
            .iter()
            .map(|e| HeapEntry {
                time: e.time,
                seq: e.seq,
                kind: snap_event(e.kind),
            })
            .collect();
        // Queue iteration order is arbitrary (heap layout, calendar
        // buckets), but pop order is a pure function of (time, seq) — seq
        // is unique — so sorting here loses nothing and makes the
        // snapshot canonical: both cores serialize identical bytes.
        heap.sort_unstable_by_key(|e| (e.time, e.seq));
        let mut host_failures: Vec<HostFailureSnapshot> = self
            .host_failures
            .iter()
            .map(|(&(task, machine), &count)| HostFailureSnapshot {
                task,
                machine,
                count,
            })
            .collect();
        host_failures.sort_unstable_by_key(|h| (h.task, h.machine));
        EngineSnapshot {
            rng: RngState::capture(&self.rng),
            seq: self.seq,
            next_sample: self.next_sample,
            next_tick: self.next_tick,
            drained: self.drained,
            events: self.events.clone(),
            heap,
            pending: {
                let mut pending = Vec::with_capacity(self.pending.len());
                self.pending
                    .for_each(|level, seq, task| pending.push(PendingEntry { level, seq, task }));
                pending
            },
            machines: self
                .machines
                .iter()
                .map(|m| MachineSnapshot {
                    free: m.free,
                    up: m.up,
                    down_until: m.down_until,
                    // Live order is preserved: sampling iterates the
                    // running set in order, drawing RNG per task.
                    running: m
                        .running
                        .iter()
                        .map(|r| RunningSnapshot {
                            task: r.task,
                            start: r.start,
                            demand: r.demand,
                            priority: r.priority,
                            cpu_base: r.cpu_base,
                            mem_base: r.mem_base,
                        })
                        .collect(),
                })
                .collect(),
            phase: self
                .phase
                .iter()
                .map(|p| match *p {
                    TaskPhase::Pending => PhaseSnapshot::Pending,
                    TaskPhase::Running { machine } => PhaseSnapshot::Running { machine },
                    TaskPhase::Dead => PhaseSnapshot::Dead,
                })
                .collect(),
            attempt: self.attempt.clone(),
            resubmits_left: self.resubmits_left.clone(),
            completion_kind: self.completion_kind.clone(),
            job_cpu_seconds: self.job_cpu_seconds.clone(),
            fails: self.fails.clone(),
            looper: self.looper.clone(),
            host_failures,
            series: self.series.iter().map(|s| s.samples.clone()).collect(),
            counters: CounterSnapshot {
                placements: self.counters.placements,
                evictions: self.counters.evictions,
                retries: self.counters.retries,
                fault_injections: self.counters.fault_injections,
                blacklist_hits: self.counters.blacklist_hits,
            },
            telemetry: self.telemetry.as_ref().map(|p| ProbeSnapshot {
                bundle: p.bundle.clone(),
                first_submit: p.first_submit.clone(),
                ever_placed: p.ever_placed.clone(),
                last_end: p.last_end.clone(),
            }),
        }
    }

    /// Replaces this freshly-constructed engine's state with a snapshot.
    /// The caller guarantees (via the checkpoint fingerprint) that the
    /// snapshot came from the same config and workload, so the static
    /// tables — tasks, capacities, series metadata — already match.
    fn restore(&mut self, snap: &EngineSnapshot) {
        debug_assert_eq!(self.machines.len(), snap.machines.len());
        debug_assert_eq!(self.phase.len(), snap.phase.len());
        debug_assert_eq!(self.series.len(), snap.series.len());
        self.rng = snap.rng.restore();
        self.seq = snap.seq;
        self.next_sample = snap.next_sample;
        self.next_tick = snap.next_tick;
        self.drained = snap.drained;
        self.events = snap.events.clone();
        self.queue.clear();
        for e in &snap.heap {
            self.queue.push(QueuedEvent {
                time: e.time,
                seq: e.seq,
                kind: event_from_snap(e.kind),
            });
        }
        self.pending.clear();
        for p in &snap.pending {
            self.pending.insert(p.level, p.seq, p.task);
        }
        for (m, ms) in self.machines.iter_mut().zip(&snap.machines) {
            m.free = ms.free;
            m.up = ms.up;
            m.down_until = ms.down_until;
            m.running = ms
                .running
                .iter()
                .map(|r| RunningTask {
                    task: r.task,
                    start: r.start,
                    demand: r.demand,
                    priority: r.priority,
                    cpu_base: r.cpu_base,
                    mem_base: r.mem_base,
                })
                .collect();
        }
        self.phase = snap
            .phase
            .iter()
            .map(|p| match *p {
                PhaseSnapshot::Pending => TaskPhase::Pending,
                PhaseSnapshot::Running { machine } => TaskPhase::Running { machine },
                PhaseSnapshot::Dead => TaskPhase::Dead,
            })
            .collect();
        self.attempt = snap.attempt.clone();
        self.resubmits_left = snap.resubmits_left.clone();
        self.completion_kind = snap.completion_kind.clone();
        self.job_cpu_seconds = snap.job_cpu_seconds.clone();
        self.fails = snap.fails.clone();
        self.looper = snap.looper.clone();
        self.host_failures = snap
            .host_failures
            .iter()
            .map(|h| ((h.task, h.machine), h.count))
            .collect();
        for (s, samples) in self.series.iter_mut().zip(&snap.series) {
            s.samples = samples.clone();
        }
        self.counters = EngineCounters {
            placements: snap.counters.placements,
            evictions: snap.counters.evictions,
            retries: snap.counters.retries,
            fault_injections: snap.counters.fault_injections,
            blacklist_hits: snap.counters.blacklist_hits,
        };
        if let (Some(probe), Some(ps)) = (self.telemetry.as_mut(), snap.telemetry.as_ref()) {
            probe.bundle = ps.bundle.clone();
            probe.first_submit = ps.first_submit.clone();
            probe.ever_placed = ps.ever_placed.clone();
            probe.last_end = ps.last_end.clone();
        }
    }

    fn emit(&mut self, time: Timestamp, task: usize, machine: Option<usize>, kind: TaskEventKind) {
        self.events.push(TaskEvent {
            time,
            task: TaskId::from(self.task_gid[task]),
            machine: machine.map(|mi| MachineId::from(self.machine_base + mi)),
            kind,
        });
    }

    /// Bimodal failure model: is this task a deterministic crash-looper?
    /// Decided once, at first submission, so that fault-free
    /// configurations draw exactly the same random sequence as before the
    /// fault model existed.
    fn is_crash_looper(&mut self, task: usize) -> bool {
        if let Some(l) = self.looper[task] {
            return l;
        }
        let fraction = self.config.faults.crash_loop_fraction;
        let l = fraction > 0.0 && self.rng.gen_bool(fraction.min(1.0));
        if l {
            // Borg-style throttle: the looper gets a fixed attempt budget
            // instead of the regular resubmission budget.
            self.resubmits_left[task] = self.config.faults.crash_loop_attempt_cap.saturating_sub(1);
        }
        self.looper[task] = Some(l);
        l
    }

    fn handle_submit(&mut self, time: Timestamp, task: usize) {
        if self.config.faults.crash_loop_fraction > 0.0 {
            self.is_crash_looper(task);
        }
        // A non-zero attempt number means a resubmission after a failure
        // or eviction: exactly the retries that reach the trace.
        if self.attempt[task] > 0 {
            self.counters.retries += 1;
        }
        self.emit(time, task, None, TaskEventKind::Submit);
        if let Some(p) = self.telemetry.as_mut() {
            if p.first_submit[task] == Timestamp::MAX {
                p.first_submit[task] = time;
            }
        }
        self.phase[task] = TaskPhase::Pending;
        let level = self.tasks[task].priority.level();
        self.seq += 1;
        self.pending.insert(level, self.seq, task);
        if self.config.schedule_latency == 0 {
            self.schedule_pass(time);
        } else {
            self.push(time + self.config.schedule_latency, EventKind::Kick);
        }
    }

    fn handle_complete(&mut self, time: Timestamp, task: usize, attempt: u32) {
        if self.attempt[task] != attempt {
            return; // stale: the attempt was evicted
        }
        let TaskPhase::Running { machine } = self.phase[task] else {
            return;
        };
        let m = &mut self.machines[machine];
        let Some(pos) = m.running.iter().position(|r| r.task == task) else {
            return;
        };
        let r = m.running.swap_remove(pos);
        m.free += r.demand;
        m.free = m.free.clamped(&m.placeable);

        let info = self.tasks[task];
        self.job_cpu_seconds[info.job] += info.cpu_processors * (time - r.start) as f64;

        // The plan kind was encoded when the completion was scheduled; we
        // re-derive it from the planned duration by storing it... simpler:
        // the kind rides along in `pending_completion_kind`.
        let kind = self.completion_kind[task];
        self.emit(time, task, Some(machine), kind);
        if let Some(p) = self.telemetry.as_mut() {
            p.attempt_ended(time, task, r.start);
        }
        self.phase[task] = TaskPhase::Dead;

        if kind == TaskEventKind::Fail {
            self.fails[task] += 1;
            if self.config.faults.blacklist_after > 0 {
                *self.host_failures.entry((task, machine)).or_insert(0) += 1;
            }
            if self.resubmits_left[task] > 0 {
                self.resubmits_left[task] -= 1;
                let delay = self.retry_delay(task, 1);
                self.push(time + delay, EventKind::Submit { task });
            }
        }

        self.schedule_pass(time);
    }

    /// Scheduler-side delay before resubmitting a failed task: fixed
    /// `legacy` seconds without faults, exponential backoff with jitter
    /// when faults are enabled.
    fn retry_delay(&mut self, task: usize, legacy: Duration) -> Duration {
        if self.config.faults.enabled() {
            self.config
                .faults
                .retry
                .delay(self.fails[task], &mut self.rng)
        } else {
            legacy
        }
    }

    /// Records one telemetry tick: queue depths, fleet occupancy, free
    /// capacity, heap and blacklist sizes. Reads only; costs nothing
    /// outside telemetry runs.
    fn telemetry_tick(&mut self, time: Timestamp) {
        let Engine {
            telemetry,
            pending,
            tasks,
            machines,
            queue,
            host_failures,
            config,
            ..
        } = self;
        let Some(probe) = telemetry.as_mut() else {
            return;
        };
        let mut per_band = [0u64; NUM_BANDS];
        pending.for_each(|_, _, task| {
            per_band[tasks[task].priority.class().index()] += 1;
        });
        let mut running = 0u64;
        let mut free_cpu = 0.0;
        let mut free_memory = 0.0;
        for m in machines.iter() {
            if m.up {
                // Running tasks only live on up machines: an outage fails
                // its tasks before any later tick can observe them.
                running += m.running.len() as u64;
                free_cpu += m.free.cpu;
                free_memory += m.free.memory;
            }
        }
        let threshold = config.faults.blacklist_after;
        let blacklisted = if threshold > 0 {
            host_failures.values().filter(|&&n| n >= threshold).count() as u64
        } else {
            0
        };
        probe.bundle.push_tick(
            TimelineSample {
                t: time,
                pending: per_band,
                running,
                heap_events: queue.len() as u64,
                blacklisted,
            },
            free_cpu,
            free_memory,
        );
    }

    fn take_samples(&mut self, time: Timestamp) {
        let Engine {
            machines,
            rng,
            series,
            config,
            progress,
            shard,
            ..
        } = self;
        if let Some(p) = progress {
            // One sample lands per machine below, on every grid point.
            p.on_samples(*shard, machines.len() as u64);
        }
        for (mi, m) in machines.iter().enumerate() {
            if !m.up {
                // A down machine reports nothing; record an all-zero
                // sample to keep the grid continuous.
                series[mi].samples.push(UsageSample::default());
                continue;
            }
            let mut sample = UsageSample::default();
            let mut cpu_total = 0.0;
            let mut mem_total = 0.0;
            for r in &m.running {
                let cpu_jitter = lognormal_jitter(rng, config.cpu_jitter_sigma);
                let mem_jitter = lognormal_jitter(rng, config.mem_jitter_sigma);
                // Memory ramps up over the first ~10 minutes of a task.
                let ramp = ((time.saturating_sub(r.start)) as f64 / 600.0).clamp(0.05, 1.0);
                let cpu = (r.cpu_base * cpu_jitter).min(r.demand.cpu * 1.5);
                let mem = (r.mem_base * ramp * mem_jitter).min(r.demand.memory);
                let class = r.priority.class();
                *sample.cpu.class_mut(class) += cpu;
                *sample.memory_used.class_mut(class) += mem;
                *sample.memory_assigned.class_mut(class) += r.demand.memory;
                cpu_total += cpu;
                mem_total += mem;
            }
            // Clamp the per-class splits into capacity proportionally.
            if cpu_total > m.capacity.cpu {
                scale_split(&mut sample.cpu, m.capacity.cpu / cpu_total);
            }
            if mem_total > m.capacity.memory {
                let f = m.capacity.memory / mem_total;
                scale_split(&mut sample.memory_used, f);
            }
            // Page cache: a base of warm file pages plus cache pulled in by
            // running tasks, bounded by what main memory leaves free.
            let pc_jitter = lognormal_jitter(rng, 0.15);
            let used = sample.memory_used.total();
            sample.page_cache = ((0.08 + 0.9 * used) * pc_jitter)
                .min(m.capacity.memory - used.min(m.capacity.memory))
                .max(0.0);
            series[mi].samples.push(sample);
        }
    }

    /// Attempts to schedule pending tasks, in priority-then-FCFS order.
    fn schedule_pass(&mut self, time: Timestamp) {
        // Snapshot the queue into the reusable pass buffer (try_place
        // needs `&mut self`, so we cannot iterate the queue directly).
        let mut keys = mem::take(&mut self.pass_buf);
        keys.clear();
        self.pending
            .for_each(|level, seq, task| keys.push(((Reverse(level), seq), task)));
        let mut failures = 0usize;
        for &((Reverse(level), seq), task) in &keys {
            if failures >= MAX_SCAN_FAILURES {
                break;
            }
            if self.try_place(time, task) {
                self.pending.remove(level, seq);
            } else {
                failures += 1;
            }
        }
        self.pass_buf = keys;
    }

    /// Tries to place one task, possibly via preemption. Returns success.
    fn try_place(&mut self, time: Timestamp, task: usize) -> bool {
        let info = self.tasks[task];
        if let Some(mi) = self.pick_machine(task, &info.demand) {
            self.start_task(time, task, mi);
            return true;
        }
        if self.config.preemption {
            if let Some(mi) = self.pick_preemption_target(task, &info) {
                self.evict_for(time, mi, &info);
                debug_assert!(info.demand.fits_within(&self.machines[mi].free));
                self.start_task(time, task, mi);
                return true;
            }
        }
        false
    }

    /// True if the scheduler should avoid placing `task` on `machine`
    /// (the task failed there too often).
    fn blacklisted(&self, task: usize, machine: usize) -> bool {
        let threshold = self.config.faults.blacklist_after;
        threshold > 0
            && self
                .host_failures
                .get(&(task, machine))
                .is_some_and(|&n| n >= threshold)
    }

    /// Applies the placement policy to a candidate list (indices into
    /// `self.machines`, id-ordered).
    fn select_by_policy(&self, candidates: &[usize]) -> Option<usize> {
        let key = |&i: &usize| (self.machines[i].free.cpu, self.machines[i].free.memory);
        match self.config.placement {
            PlacementPolicy::LoadBalance => candidates
                .iter()
                .max_by(|a, b| key(a).partial_cmp(&key(b)).expect("capacities are finite"))
                .copied(),
            PlacementPolicy::BestFit => candidates
                .iter()
                .min_by(|a, b| key(a).partial_cmp(&key(b)).expect("capacities are finite"))
                .copied(),
            PlacementPolicy::FirstFit => candidates.first().copied(),
        }
    }

    fn pick_machine(&mut self, task: usize, demand: &Demand) -> Option<usize> {
        // Two tiers: preferred machines first, blacklisted ones only as a
        // desperation fallback (better a flaky host than starvation).
        // Candidate lists live in reusable scratch buffers.
        let mut preferred = mem::take(&mut self.preferred);
        let mut last_resort = mem::take(&mut self.last_resort);
        preferred.clear();
        last_resort.clear();
        for (mi, m) in self.machines.iter().enumerate() {
            if m.up && demand.fits_within(&m.free) {
                if self.blacklisted(task, mi) {
                    last_resort.push(mi);
                } else {
                    preferred.push(mi);
                }
            }
        }
        // Every fitting-but-blacklisted machine is one hit the blacklist
        // scored, whether or not the fallback tier ends up being used.
        self.counters.blacklist_hits += last_resort.len() as u64;
        let pick = self
            .select_by_policy(&preferred)
            .or_else(|| self.select_by_policy(&last_resort));
        self.preferred = preferred;
        self.last_resort = last_resort;
        pick
    }

    /// Finds a machine where evicting strictly-lower-priority tasks frees
    /// enough room. Prefers non-blacklisted machines, then the machine
    /// sacrificing the least demand.
    fn pick_preemption_target(&self, task: usize, info: &TaskInfo) -> Option<usize> {
        // best = (blacklisted, sacrificed): prefer clean hosts, then the
        // cheapest eviction set.
        let mut best: Option<(usize, (bool, f64))> = None;
        for (mi, m) in self.machines.iter().enumerate() {
            if !m.up {
                continue;
            }
            let mut avail = m.free;
            let mut sacrificed = 0.0;
            for r in &m.running {
                if info.priority.preempts(r.priority) {
                    avail += r.demand;
                    sacrificed += r.demand.cpu + r.demand.memory;
                }
            }
            if info.demand.fits_within(&avail) {
                let score = (self.blacklisted(task, mi), sacrificed);
                match best {
                    Some((_, s)) if s <= score => {}
                    _ => best = Some((mi, score)),
                }
            }
        }
        best.map(|(mi, _)| mi)
    }

    /// Evicts lowest-priority tasks from `mi` until `info.demand` fits.
    fn evict_for(&mut self, time: Timestamp, mi: usize, info: &TaskInfo) {
        // Evict in ascending priority, then youngest first (less work lost).
        let mut victims = mem::take(&mut self.victims);
        victims.clear();
        victims.extend(
            self.machines[mi]
                .running
                .iter()
                .filter(|r| info.priority.preempts(r.priority))
                .map(|r| (r.priority.level(), Reverse(r.start), r.task)),
        );
        victims.sort();
        for &(_, _, victim) in &victims {
            if info.demand.fits_within(&self.machines[mi].free) {
                break;
            }
            self.evict_task(time, mi, victim);
        }
        self.victims = victims;
    }

    fn evict_task(&mut self, time: Timestamp, mi: usize, task: usize) {
        let m = &mut self.machines[mi];
        let pos = m
            .running
            .iter()
            .position(|r| r.task == task)
            .expect("victim chosen from this machine's running set");
        let r = m.running.swap_remove(pos);
        m.free += r.demand;
        m.free = m.free.clamped(&m.placeable);

        let info = self.tasks[task];
        self.job_cpu_seconds[info.job] += info.cpu_processors * (time - r.start) as f64;
        self.attempt[task] += 1; // invalidate the queued completion
        self.phase[task] = TaskPhase::Dead;
        self.counters.evictions += 1;
        self.emit(time, task, Some(mi), TaskEventKind::Evict);
        if let Some(p) = self.telemetry.as_mut() {
            p.attempt_ended(time, task, r.start);
        }

        if self.resubmits_left[task] > 0 {
            self.resubmits_left[task] -= 1;
            // Back off before retrying: immediate resubmission under
            // memory pressure triggers eviction cascades (evictee evicts
            // someone else one machine over).
            self.push(time + 300, EventKind::Submit { task });
        }
    }

    fn start_task(&mut self, time: Timestamp, task: usize, mi: usize) {
        let info = self.tasks[task];
        let plan = if self.looper[task] == Some(true) {
            // Crash-loopers fail deterministically, early in the run
            // (missing binary, bad config): the defining behaviour behind
            // the Google trace's inflated abnormal-event counts.
            AttemptPlan::Fail(self.rng.gen_range(0.01..0.08))
        } else {
            self.config.outcome.draw(&mut self.rng)
        };
        let duration = plan.duration(info.runtime);
        self.attempt[task] = self.attempt[task].wrapping_add(1);
        let attempt = self.attempt[task];

        self.counters.placements += 1;
        self.emit(time, task, Some(mi), TaskEventKind::Schedule);
        if let Some(p) = self.telemetry.as_mut() {
            if !p.ever_placed[task] {
                p.ever_placed[task] = true;
                let band = info.priority.class().index();
                p.bundle.queue_delay[band].record(time.saturating_sub(p.first_submit[task]));
            }
            if p.last_end[task] != Timestamp::MAX {
                p.bundle
                    .resubmit_wait
                    .record(time.saturating_sub(p.last_end[task]));
            }
        }
        self.phase[task] = TaskPhase::Running { machine: mi };
        self.completion_kind[task] = match plan {
            AttemptPlan::Finish => TaskEventKind::Finish,
            AttemptPlan::Fail(_) => TaskEventKind::Fail,
            AttemptPlan::Kill(_) => TaskEventKind::Kill,
            AttemptPlan::Lost(_) => TaskEventKind::Lost,
        };

        let m = &mut self.machines[mi];
        m.free = m.free.saturating_sub(&info.demand);
        m.running.push(RunningTask {
            task,
            start: time,
            demand: info.demand,
            priority: info.priority,
            cpu_base: info.demand.cpu * info.utilization,
            mem_base: info.demand.memory * (0.55 + 0.45 * info.utilization),
        });

        self.push(time + duration, EventKind::Complete { task, attempt });
    }
}

impl Engine<'_> {
    /// Draws the outage schedule for every machine.
    fn seed_outages(&mut self, horizon: Duration) {
        let rate_per_sec = self.config.machine_failures_per_day / 86_400.0;
        let (lo, hi) = self.config.outage_duration;
        for mi in 0..self.machines.len() {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-outage gaps.
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / rate_per_sec;
                if t >= horizon as f64 {
                    break;
                }
                let down_at = t as Timestamp;
                let duration = if hi > lo {
                    self.rng.gen_range(lo..hi)
                } else {
                    lo.max(1)
                };
                self.push(
                    down_at,
                    EventKind::MachineDown {
                        machine: mi,
                        until: down_at + duration,
                    },
                );
                // The machine cannot fail again while down.
                t += duration as f64;
            }
        }
    }

    /// Draws the correlated-outage schedule: scripted outages first, then
    /// a Poisson process per failure domain this engine owns. Every
    /// machine of an affected domain goes down at the same instant.
    fn seed_domain_outages(&mut self, horizon: Duration) {
        let faults = self.config.faults.clone();
        for o in faults.injected_outages_in(self.domains.clone()) {
            if o.at < horizon {
                self.push_domain_outage(o.domain, o.at, o.duration.max(1));
            }
        }
        if faults.domain_outages_per_day <= 0.0 {
            return;
        }
        let rate_per_sec = faults.domain_outages_per_day / 86_400.0;
        let (lo, hi) = faults.domain_outage_duration;
        for domain in self.domains.clone() {
            let mut t = 0.0f64;
            loop {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / rate_per_sec;
                if t >= horizon as f64 {
                    break;
                }
                let duration = if hi > lo {
                    self.rng.gen_range(lo..hi)
                } else {
                    lo.max(1)
                };
                self.push_domain_outage(domain, t as Timestamp, duration);
                t += duration as f64;
            }
        }
    }

    fn push_domain_outage(&mut self, domain: usize, at: Timestamp, duration: Duration) {
        for machine in self.config.fleet.domain_members(domain) {
            // Members are global ids; this engine owns a contiguous slice
            // starting at `machine_base`.
            let local = machine.wrapping_sub(self.machine_base);
            if machine >= self.machine_base && local < self.machines.len() {
                self.push(
                    at,
                    EventKind::MachineDown {
                        machine: local,
                        until: at + duration,
                    },
                );
            }
        }
    }

    fn handle_machine_down(&mut self, time: Timestamp, mi: usize, until: Timestamp) {
        self.counters.fault_injections += 1;
        // Extend, never shorten: overlapping outages keep the machine
        // down until the latest scheduled return.
        if until > self.machines[mi].down_until {
            self.machines[mi].down_until = until;
            self.push(until, EventKind::MachineUp { machine: mi });
        }
        self.machines[mi].up = false;
        // Every running task dies with the machine.
        let mut victims = mem::take(&mut self.down_victims);
        victims.clear();
        victims.extend(self.machines[mi].running.iter().map(|r| r.task));
        for &task in &victims {
            let m = &mut self.machines[mi];
            let pos = m
                .running
                .iter()
                .position(|r| r.task == task)
                .expect("victim taken from this machine's running set");
            let r = m.running.swap_remove(pos);
            let info = self.tasks[task];
            self.job_cpu_seconds[info.job] += info.cpu_processors * (time - r.start) as f64;
            self.attempt[task] = self.attempt[task].wrapping_add(1);
            self.phase[task] = TaskPhase::Dead;
            self.completion_kind[task] = TaskEventKind::Fail;
            self.emit(time, task, Some(mi), TaskEventKind::Fail);
            if let Some(p) = self.telemetry.as_mut() {
                p.attempt_ended(time, task, r.start);
            }
            self.fails[task] += 1;
            if self.resubmits_left[task] > 0 {
                self.resubmits_left[task] -= 1;
                let delay = self.retry_delay(task, 60);
                self.push(time + delay, EventKind::Submit { task });
            }
        }
        self.down_victims = victims;
        // Free capacity is irrelevant while down; reset for the return.
        let m = &mut self.machines[mi];
        m.free = m.placeable;
    }

    fn handle_machine_up(&mut self, time: Timestamp, mi: usize) {
        if time < self.machines[mi].down_until {
            return; // a longer overlapping outage still holds it down
        }
        self.machines[mi].up = true;
        self.schedule_pass(time);
    }
}

fn snap_event(kind: EventKind) -> HeapEventKind {
    match kind {
        EventKind::Submit { task } => HeapEventKind::Submit { task },
        EventKind::Complete { task, attempt } => HeapEventKind::Complete { task, attempt },
        EventKind::Kick => HeapEventKind::Kick,
        EventKind::MachineDown { machine, until } => HeapEventKind::MachineDown { machine, until },
        EventKind::MachineUp { machine } => HeapEventKind::MachineUp { machine },
    }
}

fn event_from_snap(kind: HeapEventKind) -> EventKind {
    match kind {
        HeapEventKind::Submit { task } => EventKind::Submit { task },
        HeapEventKind::Complete { task, attempt } => EventKind::Complete { task, attempt },
        HeapEventKind::Kick => EventKind::Kick,
        HeapEventKind::MachineDown { machine, until } => EventKind::MachineDown { machine, until },
        HeapEventKind::MachineUp { machine } => EventKind::MachineUp { machine },
    }
}

fn scale_split(split: &mut ClassSplit, factor: f64) {
    split.low *= factor;
    split.middle *= factor;
    split.high *= factor;
}

fn lognormal_jitter<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box-Muller on demand is slower than rand_distr, but this keeps the
    // hot sampling loop allocation-free and dependency-light.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let z = (-2.0 * u.ln()).sqrt() * v.cos();
    (sigma * z).exp()
}
