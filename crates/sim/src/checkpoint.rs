//! Simulator checkpoint/restore: crash-safe, bit-identical resume.
//!
//! A checkpoint captures the **complete** state of every shard engine at a
//! sim-time boundary — event heap, RNG stream position, pending queue,
//! per-machine running sets, fault/blacklist bookkeeping, emitted events,
//! usage samples and the telemetry probe — so that a run interrupted at
//! that boundary and resumed later produces byte-identical trace output
//! (and a byte-identical telemetry bundle) to an uninterrupted run. That
//! guarantee extends the determinism contract in `tests/determinism.rs`
//! and is exercised directly by `tests/checkpoint.rs`.
//!
//! # File format
//!
//! A checkpoint file is one header line followed by a JSON body:
//!
//! ```text
//! #cgc-checkpoint v1 crc=1a2b3c4d len=123456
//! {"version":1,"fingerprint":...,...}
//! ```
//!
//! The header records the CRC-32 and byte length of the body, so a torn
//! or bit-rotted checkpoint is rejected as [`CheckpointError::Corrupt`]
//! before deserialization is attempted. Files are written through
//! [`cgc_trace::write_atomic`], so a crash mid-checkpoint leaves the
//! previous checkpoint intact rather than a torn file.
//!
//! Resuming validates a fingerprint of the config and workload skeleton:
//! a checkpoint replayed against a different scenario is rejected as
//! [`CheckpointError::Mismatch`] instead of silently producing garbage.
//! The thread count is deliberately excluded from the fingerprint — it is
//! an execution knob that never affects output, and resuming on a
//! different thread count is explicitly supported (and tested).

use crate::config::SimConfig;
use cgc_gen::Workload;
use cgc_obs::TelemetryBundle;
use cgc_trace::task::{TaskEvent, TaskEventKind};
use cgc_trace::usage::UsageSample;
use cgc_trace::{crc32, write_atomic_with, Demand, Duration, Priority, Timestamp};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Magic first token of a checkpoint file's header line.
const MAGIC: &str = "#cgc-checkpoint";

/// Why a checkpoint could not be written, read, or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(String),
    /// The file is not a checkpoint, is truncated, fails its checksum,
    /// or carries a body that does not deserialize.
    Corrupt(String),
    /// The checkpoint is intact but belongs to a different scenario
    /// (config/workload fingerprint, telemetry interval, or shard count
    /// disagree with the resuming run).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Captured position of a shard's [`ChaCha12Rng`] stream. ChaCha's state
/// is exactly (seed, stream id, word position), all of which have public
/// getters and setters, so capture/restore is lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 256-bit seed.
    pub seed: [u8; 32],
    /// ChaCha stream identifier.
    pub stream: u64,
    /// High 64 bits of the 128-bit word position.
    pub word_pos_hi: u64,
    /// Low 64 bits of the 128-bit word position.
    pub word_pos_lo: u64,
}

impl RngState {
    /// Captures the generator's current position.
    pub fn capture(rng: &ChaCha12Rng) -> RngState {
        let word_pos = rng.get_word_pos();
        RngState {
            seed: rng.get_seed(),
            stream: rng.get_stream(),
            word_pos_hi: (word_pos >> 64) as u64,
            word_pos_lo: word_pos as u64,
        }
    }

    /// Rebuilds a generator at the captured position.
    pub fn restore(&self) -> ChaCha12Rng {
        let mut rng = ChaCha12Rng::from_seed(self.seed);
        rng.set_stream(self.stream);
        rng.set_word_pos(((self.word_pos_hi as u128) << 64) | self.word_pos_lo as u128);
        rng
    }
}

/// Snapshot of one queued engine event (mirrors the engine's private
/// event type so the engine's internals stay private).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapEventKind {
    /// A task arrives in the pending queue.
    Submit {
        /// Global task index.
        task: usize,
    },
    /// A running attempt ends.
    Complete {
        /// Global task index.
        task: usize,
        /// Attempt number the completion belongs to.
        attempt: u32,
    },
    /// Revisit the pending queue.
    Kick,
    /// A machine fails.
    MachineDown {
        /// Shard-local machine index.
        machine: usize,
        /// Sim time the machine recovers.
        until: Timestamp,
    },
    /// A machine recovers.
    MachineUp {
        /// Shard-local machine index.
        machine: usize,
    },
}

/// One entry of the event heap, in canonical `(time, seq)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapEntry {
    /// Event time.
    pub time: Timestamp,
    /// Tie-breaking sequence number (unique per event).
    pub seq: u64,
    /// The event itself.
    pub kind: HeapEventKind,
}

/// One entry of the priority-ordered pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingEntry {
    /// Priority level (higher schedules first).
    pub level: u8,
    /// FIFO sequence within the level.
    pub seq: u64,
    /// Global task index.
    pub task: usize,
}

/// One task currently running on a machine. Order within a machine's
/// running set is part of engine state (sampling iterates it in order,
/// drawing RNG per task), so it is preserved exactly.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunningSnapshot {
    /// Global task index.
    pub task: usize,
    /// Sim time the attempt started.
    pub start: Timestamp,
    /// Resources the attempt holds.
    pub demand: Demand,
    /// Attempt priority.
    pub priority: Priority,
    /// Mean CPU usage drawn for this attempt.
    pub cpu_base: f64,
    /// Mean memory usage drawn for this attempt.
    pub mem_base: f64,
}

/// One machine's scheduler-visible state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// Free capacity.
    pub free: Demand,
    /// Whether the machine is up.
    pub up: bool,
    /// Sim time a down machine recovers (0 when up).
    pub down_until: Timestamp,
    /// Running attempts, in live order.
    pub running: Vec<RunningSnapshot>,
}

/// Where a task currently is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseSnapshot {
    /// Queued (or not yet submitted).
    Pending,
    /// Running on a machine (shard-local index).
    Running {
        /// Shard-local machine index.
        machine: usize,
    },
    /// Finished for good.
    Dead,
}

/// Scheduler activity counters (flushed to `cgc-obs` at end of run).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Successful placements.
    pub placements: u64,
    /// Preemption evictions.
    pub evictions: u64,
    /// Fault-model retries.
    pub retries: u64,
    /// Injected attempt failures.
    pub fault_injections: u64,
    /// Placements refused by a blacklist.
    pub blacklist_hits: u64,
}

/// One `(task, machine) → failure count` blacklist cell, sorted by key
/// for a canonical serialized form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostFailureSnapshot {
    /// Global task index.
    pub task: usize,
    /// Shard-local machine index.
    pub machine: usize,
    /// Failures of this task on this machine.
    pub count: u32,
}

/// The telemetry probe's accumulated state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeSnapshot {
    /// The bundle accumulated so far (timeline, histograms, capacity).
    pub bundle: TelemetryBundle,
    /// Per-task first submission time.
    pub first_submit: Vec<Timestamp>,
    /// Per-task "has ever been placed" flag.
    pub ever_placed: Vec<bool>,
    /// Per-task end time of the last attempt.
    pub last_end: Vec<Timestamp>,
}

/// Complete state of one shard engine at a checkpoint boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// RNG stream position.
    pub rng: RngState,
    /// Next event tie-break sequence number.
    pub seq: u64,
    /// Next usage-sample grid point.
    pub next_sample: Timestamp,
    /// Next telemetry tick grid point (`Timestamp::MAX` when telemetry
    /// is off).
    pub next_tick: Timestamp,
    /// Whether the event loop has drained (checkpoints taken after the
    /// last event resume straight into the trailing sample/tick grids).
    pub drained: bool,
    /// Task events emitted so far, in emission order.
    pub events: Vec<TaskEvent>,
    /// The future: queued events in canonical `(time, seq)` order.
    pub heap: Vec<HeapEntry>,
    /// The pending queue.
    pub pending: Vec<PendingEntry>,
    /// Per-machine state, in shard-local order.
    pub machines: Vec<MachineSnapshot>,
    /// Per-task life-cycle phase.
    pub phase: Vec<PhaseSnapshot>,
    /// Per-task attempt counter.
    pub attempt: Vec<u32>,
    /// Per-task resubmission budget remaining.
    pub resubmits_left: Vec<u32>,
    /// Per-task final completion kind drawn by the outcome model.
    pub completion_kind: Vec<TaskEventKind>,
    /// Per-job accumulated CPU-seconds.
    pub job_cpu_seconds: Vec<f64>,
    /// Per-task consecutive failure count (drives retry backoff).
    pub fails: Vec<u32>,
    /// Per-task crash-looper determination, if already drawn.
    pub looper: Vec<Option<bool>>,
    /// Blacklist cells, sorted by `(task, machine)`.
    pub host_failures: Vec<HostFailureSnapshot>,
    /// Per-machine usage samples recorded so far.
    pub series: Vec<Vec<UsageSample>>,
    /// Scheduler activity counters.
    pub counters: CounterSnapshot,
    /// Telemetry probe state, present iff the run records telemetry.
    pub telemetry: Option<ProbeSnapshot>,
}

/// A whole run's checkpoint: one [`EngineSnapshot`] per shard, taken at
/// the same sim-time boundary, plus the identity needed to refuse a
/// resume against the wrong scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the config + workload skeleton (see
    /// [`run_fingerprint`]).
    pub fingerprint: u64,
    /// The sim-time boundary the snapshot was taken at.
    pub at: Timestamp,
    /// Telemetry interval of the run, if telemetry was on.
    pub telemetry: Option<Duration>,
    /// One snapshot per shard, in shard order.
    pub shards: Vec<EngineSnapshot>,
}

/// FNV-1a, hand rolled because `std`'s `DefaultHasher` is explicitly not
/// stable across releases and a checkpoint must outlive the binary that
/// wrote it.
struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Version of the sharded job-routing algorithm, salted into the
/// fingerprint of sharded runs only. Bump it whenever
/// [`crate::shard::ShardPlan`] changes its job→shard assignment: the
/// per-shard task tables a checkpoint indexes into would no longer
/// match, so an old sharded checkpoint must be refused rather than
/// replayed into garbage. Unsharded runs have no routing, so their
/// fingerprints (and checkpoints) stay stable across routing versions.
const ROUTING_VERSION: u64 = 2;

/// Fingerprints a scenario: the full config (canonical JSON, with the
/// thread count and scheduler core neutralized — both are execution
/// knobs that never affect output) plus the workload skeleton (system,
/// horizon, and each job's submit time, priority and task count). Two
/// runs with equal fingerprints replay the same scenario, so resuming
/// across them is sound; threads and core may differ freely.
pub fn run_fingerprint(config: &SimConfig, workload: &Workload) -> u64 {
    let mut canonical = config.clone();
    canonical.threads = 1;
    canonical.core = crate::SchedulerCore::Optimized;
    let mut h = Fnv1a::new();
    let cfg_json = serde_json::to_string(&canonical).expect("SimConfig serializes");
    // Strip the (fixed, canonicalized) core field so configs serialized
    // before the knob existed hash identically — old unsharded
    // checkpoints keep resuming.
    let cfg_json = cfg_json.replace(",\"core\":\"Optimized\"", "");
    h.write(cfg_json.as_bytes());
    if config.shards > 1 {
        h.write_u64(ROUTING_VERSION);
    }
    h.write(workload.system.as_bytes());
    h.write_u64(workload.horizon);
    h.write_u64(workload.jobs.len() as u64);
    for job in &workload.jobs {
        h.write_u64(job.submit);
        h.write_u64(u64::from(job.priority.level()));
        h.write_u64(job.tasks.len() as u64);
    }
    h.finish()
}

/// Serializes and atomically writes a checkpoint.
pub fn save_checkpoint(path: &Path, ckpt: &RunCheckpoint) -> Result<(), CheckpointError> {
    let body = serde_json::to_vec(ckpt)
        .map_err(|e| CheckpointError::Io(format!("serializing checkpoint: {e}")))?;
    let header = format!(
        "{MAGIC} v{CHECKPOINT_VERSION} crc={:08x} len={}\n",
        crc32(&body),
        body.len()
    );
    write_atomic_with(path, |w| {
        w.write_all(header.as_bytes())?;
        w.write_all(&body)
    })
    .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
}

/// Reads and verifies a checkpoint: header shape, format version, body
/// length and CRC-32 are all checked before deserialization, so torn or
/// bit-rotted files fail with a typed [`CheckpointError::Corrupt`].
pub fn load_checkpoint(path: &Path) -> Result<RunCheckpoint, CheckpointError> {
    let bytes =
        fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::Corrupt("missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| CheckpointError::Corrupt("header is not UTF-8".into()))?;
    let mut words = header.split_whitespace();
    if words.next() != Some(MAGIC) {
        return Err(CheckpointError::Corrupt(format!(
            "{}: not a checkpoint file",
            path.display()
        )));
    }
    match words.next() {
        Some("v1") => {}
        Some(v) => {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported checkpoint format {v} (this build reads v{CHECKPOINT_VERSION})"
            )))
        }
        None => return Err(CheckpointError::Corrupt("truncated header".into())),
    }
    let recorded_crc = words
        .next()
        .and_then(|w| w.strip_prefix("crc="))
        .and_then(|w| u32::from_str_radix(w, 16).ok())
        .ok_or_else(|| CheckpointError::Corrupt("malformed crc field".into()))?;
    let recorded_len = words
        .next()
        .and_then(|w| w.strip_prefix("len="))
        .and_then(|w| w.parse::<usize>().ok())
        .ok_or_else(|| CheckpointError::Corrupt("malformed len field".into()))?;
    let body = &bytes[nl + 1..];
    if body.len() != recorded_len {
        return Err(CheckpointError::Corrupt(format!(
            "truncated: {} body bytes, header records {recorded_len}",
            body.len()
        )));
    }
    let computed = crc32(body);
    if computed != recorded_crc {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: computed {computed:08x}, header records {recorded_crc:08x}"
        )));
    }
    let ckpt: RunCheckpoint = serde_json::from_slice(body)
        .map_err(|e| CheckpointError::Corrupt(format!("body does not deserialize: {e}")))?;
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "body claims version {} inside a v{CHECKPOINT_VERSION} file",
            ckpt.version
        )));
    }
    Ok(ckpt)
}

/// Where and how often to checkpoint a run.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Target file; each completed boundary atomically replaces it.
    pub path: PathBuf,
    /// Sim-time interval between checkpoint boundaries (≥ 1 second;
    /// boundaries land at exact multiples of this interval).
    pub every: Duration,
    /// Additionally keep every boundary as `<path>.<boundary>` instead
    /// of only the latest. Used by the resume-determinism tests.
    pub retain_all: bool,
    /// Abort the process (exit code 70) after this many completed
    /// checkpoint writes — a deterministic stand-in for `kill -9` so CI
    /// can exercise crash/resume without racing a timer.
    pub die_after: Option<u64>,
}

impl CheckpointOptions {
    /// Checkpoints to `path` every `every` sim-seconds.
    pub fn new(path: impl Into<PathBuf>, every: Duration) -> CheckpointOptions {
        CheckpointOptions {
            path: path.into(),
            every,
            retain_all: false,
            die_after: None,
        }
    }
}

struct SinkState {
    /// Per-boundary slots, one per shard; a boundary is written once all
    /// shards have submitted.
    slots: BTreeMap<Timestamp, Vec<Option<EngineSnapshot>>>,
    /// Highest boundary already written to the main path. Shards progress
    /// independently, so a straggler can complete an *earlier* boundary
    /// after a later one was written; that earlier file must not clobber
    /// the later one.
    last_written: Option<Timestamp>,
    /// Completed boundary writes so far (drives `die_after`).
    writes: u64,
}

/// Collects per-shard snapshots and writes a [`RunCheckpoint`] once every
/// shard has reached a boundary. Shared by reference across the rayon
/// shard tasks; the mutex is touched only at boundaries (a handful of
/// times per run), never in the event loop.
pub(crate) struct CheckpointSink {
    opts: CheckpointOptions,
    fingerprint: u64,
    telemetry: Option<Duration>,
    nshards: usize,
    state: Mutex<SinkState>,
}

impl CheckpointSink {
    pub(crate) fn new(
        opts: CheckpointOptions,
        fingerprint: u64,
        telemetry: Option<Duration>,
        nshards: usize,
    ) -> CheckpointSink {
        CheckpointSink {
            opts,
            fingerprint,
            telemetry,
            nshards,
            state: Mutex::new(SinkState {
                slots: BTreeMap::new(),
                last_written: None,
                writes: 0,
            }),
        }
    }

    /// The checkpoint interval, clamped to at least one sim-second.
    pub(crate) fn every(&self) -> Duration {
        self.opts.every.max(1)
    }

    /// A shard delivers its snapshot for boundary `at`. When the last
    /// shard arrives the assembled checkpoint is written atomically.
    pub(crate) fn submit(&self, shard: usize, at: Timestamp, snap: EngineSnapshot) {
        let mut st = self.state.lock().expect("checkpoint sink lock");
        let slot = st
            .slots
            .entry(at)
            .or_insert_with(|| vec![None; self.nshards]);
        slot[shard] = Some(snap);
        if slot.iter().any(|s| s.is_none()) {
            return;
        }
        let shards: Vec<EngineSnapshot> = st
            .slots
            .remove(&at)
            .expect("slot just filled")
            .into_iter()
            .map(|s| s.expect("all shards present"))
            .collect();
        let ckpt = RunCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: self.fingerprint,
            at,
            telemetry: self.telemetry,
            shards,
        };
        self.write(&mut st, &ckpt);
    }

    fn write(&self, st: &mut SinkState, ckpt: &RunCheckpoint) {
        let mut ok = true;
        if self.opts.retain_all {
            let mut name = self.opts.path.clone().into_os_string();
            name.push(format!(".{}", ckpt.at));
            if let Err(e) = save_checkpoint(&PathBuf::from(name), ckpt) {
                eprintln!("warning: {e}");
                ok = false;
            }
        }
        let newer = match st.last_written {
            Some(prev) => ckpt.at > prev,
            None => true,
        };
        if newer {
            match save_checkpoint(&self.opts.path, ckpt) {
                Ok(()) => st.last_written = Some(ckpt.at),
                Err(e) => {
                    // A failed checkpoint write must not sink the run it
                    // exists to protect: warn and carry on.
                    eprintln!("warning: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            st.writes += 1;
            cgc_obs::metrics().checkpoint_writes.add(1);
            if let Some(n) = self.opts.die_after {
                if st.writes >= n {
                    eprintln!(
                        "checkpoint at t={} written; aborting as requested (--die-after {n})",
                        ckpt.at
                    );
                    // `process::exit` skips panic hooks, so this crash
                    // path dumps the flight record (if one is armed) and
                    // flushes span observers explicitly — the whole point
                    // of --die-after is rehearsing a real crash, and a
                    // real crash leaves a post-mortem.
                    let _ = cgc_obs::dump_flight_record(
                        "die-after",
                        &format!("--die-after {n} at t={}", ckpt.at),
                    );
                    cgc_obs::flush_observers();
                    std::process::exit(70);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_state_round_trips_mid_stream() {
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let state = RngState::capture(&rng);
        let mut restored = state.restore();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn chacha12_seed_from_u64_matches_stdrng() {
        // The engine swapped `StdRng` for `ChaCha12Rng` to gain state
        // capture; rand 0.8's StdRng *is* ChaCha12, and neither type
        // overrides `seed_from_u64`, so historical seeds keep producing
        // the same streams. This pins that equivalence.
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn tiny_checkpoint() -> RunCheckpoint {
        RunCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: 0xDEAD_BEEF,
            at: 3_600,
            telemetry: Some(300),
            shards: vec![EngineSnapshot {
                rng: RngState::capture(&ChaCha12Rng::seed_from_u64(1)),
                seq: 9,
                next_sample: 300,
                next_tick: 300,
                drained: false,
                events: Vec::new(),
                heap: vec![HeapEntry {
                    time: 4_000,
                    seq: 5,
                    kind: HeapEventKind::Kick,
                }],
                pending: vec![PendingEntry {
                    level: 9,
                    seq: 2,
                    task: 0,
                }],
                machines: vec![MachineSnapshot {
                    free: Demand::new(0.5, 0.5),
                    up: true,
                    down_until: 0,
                    running: Vec::new(),
                }],
                phase: vec![PhaseSnapshot::Pending],
                attempt: vec![0],
                resubmits_left: vec![3],
                completion_kind: vec![TaskEventKind::Finish],
                job_cpu_seconds: vec![0.0],
                fails: vec![0],
                looper: vec![None],
                host_failures: Vec::new(),
                series: vec![Vec::new()],
                counters: CounterSnapshot::default(),
                telemetry: None,
            }],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let path = std::env::temp_dir().join(format!("cgc-ckpt-rt-{}.bin", std::process::id()));
        let ckpt = tiny_checkpoint();
        save_checkpoint(&path, &ckpt).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.at, ckpt.at);
        assert_eq!(loaded.fingerprint, ckpt.fingerprint);
        assert_eq!(loaded.shards.len(), 1);
        assert_eq!(loaded.shards[0].heap, ckpt.shards[0].heap);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_rejected_at_every_byte() {
        let path = std::env::temp_dir().join(format!("cgc-ckpt-bad-{}.bin", std::process::id()));
        save_checkpoint(&path, &tiny_checkpoint()).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip one bit at a spread of positions; every flip must yield a
        // typed error (never a panic, never a silently-different resume).
        for pos in (0..clean.len()).step_by(clean.len() / 37 + 1) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(
                load_checkpoint(&path).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
        // Truncation too.
        fs::write(&path, &clean[..clean.len() - 7]).unwrap();
        match load_checkpoint(&path) {
            Err(CheckpointError::Corrupt(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_model_knobs() {
        use cgc_gen::{FleetConfig, GoogleWorkload};
        let workload = GoogleWorkload::scaled(10, 3_600).generate(1);
        let base = SimConfig::google(FleetConfig::google(10));
        let fp = run_fingerprint(&base, &workload);
        assert_eq!(
            fp,
            run_fingerprint(&base.clone().with_threads(8), &workload),
            "thread count is an execution knob, not part of the scenario"
        );
        assert_eq!(
            fp,
            run_fingerprint(
                &base.clone().with_core(crate::SchedulerCore::Reference),
                &workload
            ),
            "the scheduler core is an execution knob, not part of the scenario"
        );
        assert_ne!(
            fp,
            run_fingerprint(&base.clone().with_seed(99), &workload),
            "seed is part of the scenario"
        );
        assert_ne!(
            fp,
            run_fingerprint(&base.clone().with_shards(4), &workload),
            "shard count changes the model"
        );
        let other = GoogleWorkload::scaled(10, 3_600).generate(2);
        assert_ne!(fp, run_fingerprint(&base, &other));
    }
}
