//! Correlated failure injection and retry policy.
//!
//! The paper's sharpest Cloud-vs-Grid contrast is failure behaviour
//! (§IV.B.1): 59.2% of Google completion events are abnormal, and the
//! event counts are inflated by *crash loops* — tasks that fail
//! deterministically and are resubmitted over and over. The base
//! [`OutcomeModel`](crate::OutcomeModel) draws i.i.d. per-attempt
//! outcomes, which cannot produce either the heavy-tailed attempts-per-
//! task distribution or correlated bursts of failures. This module adds:
//!
//! * **failure domains** — racks/power domains defined by
//!   [`cgc_gen::FleetConfig::machines_per_domain`]; a domain outage downs
//!   every member machine at the same instant, failing all their tasks;
//! * a **bimodal task-failure model** — a small fraction of tasks are
//!   deterministic *crash-loopers* whose every attempt fails quickly,
//!   while the rest fail transiently per the base outcome model;
//! * **exponential backoff with jitter** between resubmissions
//!   ([`RetryPolicy`]), so retries of the same task never land in the
//!   same scheduling instant;
//! * **per-task machine blacklisting** — after repeated failures on the
//!   same host the scheduler stops placing that task there (with a
//!   desperation fallback when every fitting machine is blacklisted);
//! * a **crash-loop throttle** capping runaway resubmission, Borg-style:
//!   a crash-looper is abandoned after
//!   [`crash_loop_attempt_cap`](FaultConfig::crash_loop_attempt_cap)
//!   attempts.
//!
//! Everything is driven by the simulator's seeded RNG, so runs remain
//! reproducible; the `google()`/`grid()` presets of
//! [`SimConfig`](crate::SimConfig) keep faults disabled and behave
//! exactly as before — opt in with
//! [`SimConfig::with_faults`](crate::SimConfig::with_faults).

use cgc_trace::{Duration, Timestamp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential backoff with multiplicative jitter between resubmissions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry, in seconds.
    pub base: Duration,
    /// Ceiling on the backoff delay, in seconds.
    pub max: Duration,
    /// Jitter fraction: the delay is scaled by a uniform factor in
    /// `1 ± jitter` (0 disables jitter).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No waiting beyond one second — the legacy immediate-retry
    /// behaviour, kept for fault-free configurations.
    pub fn immediate() -> Self {
        RetryPolicy {
            base: 1,
            max: 1,
            jitter: 0.0,
        }
    }

    /// Delay before the next attempt, given how many times the task has
    /// failed so far (≥ 1 when called). Doubles per failure from `base`
    /// up to `max`, then jitters. Always at least one second.
    pub fn delay<R: Rng + ?Sized>(&self, failures: u32, rng: &mut R) -> Duration {
        let exp = failures.saturating_sub(1).min(32);
        let nominal = self
            .base
            .max(1)
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max.max(1));
        if self.jitter <= 0.0 {
            return nominal;
        }
        let lo = (1.0 - self.jitter).max(0.0);
        let factor = rng.gen_range(lo..1.0 + self.jitter);
        ((nominal as f64 * factor).round() as Duration).max(1)
    }
}

/// One scripted domain outage (for deterministic tests and what-if runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainOutage {
    /// Failure-domain index (see `FleetConfig::machines_per_domain`).
    pub domain: usize,
    /// When every machine in the domain goes down.
    pub at: Timestamp,
    /// How long the outage lasts, in seconds.
    pub duration: Duration,
}

/// Fault-injection configuration, disabled by default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected correlated outages per failure domain and day (0 disables
    /// random domain outages; scripted ones still fire).
    pub domain_outages_per_day: f64,
    /// Domain-outage duration range in seconds (uniform).
    pub domain_outage_duration: (u64, u64),
    /// Fraction of tasks that are deterministic crash-loopers: every
    /// attempt fails almost immediately, regardless of the outcome model.
    pub crash_loop_fraction: f64,
    /// Total attempts granted to a crash-looper before the scheduler
    /// gives up on it (the Borg-style crash-loop throttle).
    pub crash_loop_attempt_cap: u32,
    /// Backoff between resubmissions of failed tasks.
    pub retry: RetryPolicy,
    /// After this many failures of one task on one machine, the scheduler
    /// stops placing the task there (0 disables blacklisting).
    pub blacklist_after: u32,
    /// Scripted outages, fired in addition to the random schedule.
    pub injected_outages: Vec<DomainOutage>,
}

impl FaultConfig {
    /// Faults fully disabled: the simulator behaves exactly as without
    /// this module (bit-identical traces for a given seed).
    pub fn none() -> Self {
        FaultConfig {
            domain_outages_per_day: 0.0,
            domain_outage_duration: (600, 3_600),
            crash_loop_fraction: 0.0,
            crash_loop_attempt_cap: 0,
            retry: RetryPolicy::immediate(),
            blacklist_after: 0,
            injected_outages: Vec::new(),
        }
    }

    /// Google-like faults. The crash-looper fraction and attempt cap are
    /// calibrated so that, combined with `OutcomeModel::google()` and
    /// preemption-driven evictions, the completion-event mix lands on the
    /// paper's 59.2% abnormal share (see DESIGN.md, "Fault model").
    pub fn google() -> Self {
        FaultConfig {
            domain_outages_per_day: 0.03,
            domain_outage_duration: (600, 7_200),
            crash_loop_fraction: 0.012,
            crash_loop_attempt_cap: 12,
            retry: RetryPolicy {
                base: 10,
                max: 960,
                jitter: 0.5,
            },
            blacklist_after: 3,
            injected_outages: Vec::new(),
        }
    }

    /// Grid-like faults: node failures exist but crash loops are rare and
    /// schedulers retry patiently (minutes, not seconds).
    pub fn grid() -> Self {
        FaultConfig {
            domain_outages_per_day: 0.005,
            domain_outage_duration: (1_800, 12 * 3_600),
            crash_loop_fraction: 0.001,
            crash_loop_attempt_cap: 4,
            retry: RetryPolicy {
                base: 60,
                max: 3_600,
                jitter: 0.3,
            },
            blacklist_after: 2,
            injected_outages: Vec::new(),
        }
    }

    /// True if any fault mechanism is active.
    pub fn enabled(&self) -> bool {
        self.domain_outages_per_day > 0.0
            || self.crash_loop_fraction > 0.0
            || self.blacklist_after > 0
            || !self.injected_outages.is_empty()
            || self.retry != RetryPolicy::immediate()
    }

    /// Scripted outages whose failure domain lies in `domains`. The
    /// sharded simulator uses this so each shard replays exactly its own
    /// racks' outages (shard boundaries are domain-aligned, so no outage
    /// is split or double-counted).
    pub fn injected_outages_in(
        &self,
        domains: std::ops::Range<usize>,
    ) -> impl Iterator<Item = &DomainOutage> {
        self.injected_outages
            .iter()
            .filter(move |o| domains.contains(&o.domain))
    }

    /// Adds a scripted outage (builder style).
    pub fn with_outage(mut self, domain: usize, at: Timestamp, duration: Duration) -> Self {
        self.injected_outages.push(DomainOutage {
            domain,
            at,
            duration,
        });
        self
    }

    /// Replaces the crash-looper fraction (builder style).
    pub fn with_crash_loop_fraction(mut self, fraction: f64) -> Self {
        self.crash_loop_fraction = fraction;
        self
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backoff_doubles_up_to_max() {
        let p = RetryPolicy {
            base: 10,
            max: 100,
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.delay(1, &mut rng), 10);
        assert_eq!(p.delay(2, &mut rng), 20);
        assert_eq!(p.delay(3, &mut rng), 40);
        assert_eq!(p.delay(4, &mut rng), 80);
        assert_eq!(p.delay(5, &mut rng), 100); // capped
        assert_eq!(p.delay(60, &mut rng), 100); // huge counts do not overflow
    }

    #[test]
    fn jitter_stays_in_band_and_above_one() {
        let p = RetryPolicy {
            base: 8,
            max: 1_000,
            jitter: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for failures in 1..6 {
            for _ in 0..200 {
                let d = p.delay(failures, &mut rng);
                let nominal = 8u64 << (failures - 1);
                assert!(d >= 1);
                assert!(d as f64 >= nominal as f64 * 0.5 - 1.0);
                assert!(d as f64 <= nominal as f64 * 1.5 + 1.0);
            }
        }
    }

    #[test]
    fn none_is_disabled_and_presets_are_enabled() {
        assert!(!FaultConfig::none().enabled());
        assert!(FaultConfig::google().enabled());
        assert!(FaultConfig::grid().enabled());
        // A single scripted outage is enough to enable faults.
        assert!(FaultConfig::none().with_outage(0, 100, 60).enabled());
    }

    #[test]
    fn builders_compose() {
        let f = FaultConfig::none()
            .with_crash_loop_fraction(0.5)
            .with_retry(RetryPolicy {
                base: 2,
                max: 64,
                jitter: 0.1,
            })
            .with_outage(1, 500, 300);
        assert_eq!(f.crash_loop_fraction, 0.5);
        assert_eq!(f.retry.base, 2);
        assert_eq!(f.injected_outages.len(), 1);
        assert_eq!(f.injected_outages[0].domain, 1);
    }
}
