//! Benchmarks of the load-prediction toolkit (the paper's §VI future
//! work, implemented in `cgc-core::predict`).

use cgc_core::predict::{evaluate, fleet_prediction_error, PredictorKind};
use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_sim::{SimConfig, Simulator};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::Trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn load_series(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(12);
    let mut v = 0.35;
    (0..n)
        .map(|_| {
            v = (v + rng.gen_range(-0.03..0.03f64)).clamp(0.0, 1.0);
            v
        })
        .collect()
}

fn sim_trace() -> Trace {
    let machines = 16;
    let workload = GoogleWorkload::scaled_for_hostload(machines, 86_400).generate(3);
    Simulator::new(SimConfig::google(FleetConfig::google(machines))).run(&workload)
}

fn bench_predictors(c: &mut Criterion) {
    let series = load_series(864); // three days at 5-minute samples

    let mut g = c.benchmark_group("predict");
    for kind in PredictorKind::all_default() {
        g.bench_with_input(
            BenchmarkId::new("walk_forward_864", kind.label()),
            &kind,
            |b, &k| b.iter(|| evaluate(k, black_box(&series), 48)),
        );
    }
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let trace = sim_trace();
    let mut g = c.benchmark_group("predict_fleet");
    g.sample_size(10);
    for kind in [
        PredictorKind::LastValue,
        PredictorKind::AutoRegressive { order: 4 },
    ] {
        g.bench_with_input(
            BenchmarkId::new("fleet_16x1d", kind.label()),
            &kind,
            |b, &k| {
                b.iter(|| fleet_prediction_error(black_box(&trace), UsageAttribute::Cpu, k, 24, 48))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_predictors, bench_fleet);
criterion_main!(benches);
