//! Benchmarks of the low-level statistics kernels shared by all analyses.

use cgc_stats::{
    autocorrelation, counts_per_window, jain_fairness, mean_filter, noise_std, run_lengths, Ecdf,
    LevelQuantizer,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let xs = series(100_000);
    let times: Vec<u64> = {
        let mut rng = StdRng::seed_from_u64(4);
        (0..100_000).map(|_| rng.gen_range(0..2_592_000)).collect()
    };

    let mut g = c.benchmark_group("kernels");
    g.bench_function("ecdf_build_100k", |b| {
        b.iter(|| Ecdf::new(black_box(xs.clone())))
    });
    let ecdf = Ecdf::new(xs.clone());
    g.bench_function("ecdf_eval", |b| {
        b.iter(|| black_box(&ecdf).eval(black_box(0.5)))
    });
    g.bench_function("ecdf_quantile", |b| {
        b.iter(|| black_box(&ecdf).quantile(black_box(0.9)))
    });
    g.bench_function("mean_filter_w12", |b| {
        b.iter(|| mean_filter(black_box(&xs), 12))
    });
    g.bench_function("noise_std_w12", |b| {
        b.iter(|| noise_std(black_box(&xs), 12))
    });
    g.bench_function("autocorr_lag1", |b| {
        b.iter(|| autocorrelation(black_box(&xs), 1))
    });
    g.bench_function("jain_fairness", |b| {
        b.iter(|| jain_fairness(black_box(&xs)))
    });
    g.bench_function("counts_per_window_hourly", |b| {
        b.iter(|| counts_per_window(black_box(&times), 3_600, 2_592_000))
    });
    let quantizer = LevelQuantizer::usage_bands();
    let levels = quantizer.quantize_series(&xs);
    g.bench_function("quantize_100k", |b| {
        b.iter(|| quantizer.quantize_series(black_box(&xs)))
    });
    g.bench_function("run_lengths_100k", |b| {
        b.iter(|| run_lengths(black_box(&levels)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
