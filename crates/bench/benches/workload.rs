//! Benchmarks of the work-load analyses (Figs. 2–6, Table I, concl).
//!
//! Each target measures the analysis behind one paper artifact over a
//! fixed generated trace, so regressions in the characterization pipeline
//! show up per-figure.

use cgc_core::workload::{
    job_cpu_usage, job_length_analysis, job_memory_mb, priority_histogram, submission_analysis,
    task_length_analysis,
};
use cgc_gen::{GoogleWorkload, GridSystem, GridWorkload};
use cgc_trace::{Trace, DAY};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn google_trace() -> Trace {
    GoogleWorkload {
        horizon: 2 * DAY,
        ..GoogleWorkload::full_scale()
    }
    .generate(1)
    .into_workload_trace()
}

fn grid_trace() -> Trace {
    GridWorkload::full_scale(GridSystem::AuverGrid)
        .generate(1)
        .into_workload_trace()
}

fn bench_workload(c: &mut Criterion) {
    let google = google_trace();
    let grid = grid_trace();

    let mut g = c.benchmark_group("workload");
    g.bench_function("fig2_priority_histogram", |b| {
        b.iter(|| priority_histogram(black_box(&google)))
    });
    g.bench_function("fig3_job_length_google", |b| {
        b.iter(|| job_length_analysis(black_box(&google)))
    });
    g.bench_function("fig3_job_length_grid", |b| {
        b.iter(|| job_length_analysis(black_box(&grid)))
    });
    g.bench_function("fig4_task_length_masscount", |b| {
        b.iter(|| task_length_analysis(black_box(&google)))
    });
    g.bench_function("fig5_table1_submission", |b| {
        b.iter(|| submission_analysis(black_box(&google)))
    });
    g.bench_function("fig6_cpu_usage", |b| {
        b.iter(|| job_cpu_usage(black_box(&google)))
    });
    g.bench_function("fig6_memory_mb", |b| {
        b.iter(|| job_memory_mb(black_box(&google), black_box(32.0)))
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.bench_function("google_workload_1day", |b| {
        let cfg = GoogleWorkload {
            horizon: DAY,
            ..GoogleWorkload::full_scale()
        };
        b.iter(|| cfg.generate(black_box(3)))
    });
    g.bench_function("grid_workload_30days", |b| {
        let cfg = GridWorkload::full_scale(GridSystem::Sharcnet);
        b.iter(|| cfg.generate(black_box(3)))
    });
    g.finish();
}

criterion_group!(benches, bench_workload, bench_generation);
criterion_main!(benches);
