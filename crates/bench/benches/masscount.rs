//! Benchmarks of the mass–count disparity analysis (the paper's central
//! statistical tool, behind Figs. 4, 9, 11, 12 and Tables II/III).

use cgc_gen::Dist;
use cgc_stats::MassCount;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pareto_sample(n: usize) -> Vec<f64> {
    let d = Dist::BoundedPareto {
        alpha: 0.6,
        lo: 1.0,
        hi: 1e6,
    };
    let mut rng = StdRng::seed_from_u64(1);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn bench_masscount(c: &mut Criterion) {
    let mut g = c.benchmark_group("masscount");
    for n in [1_000usize, 10_000, 100_000] {
        let sample = pareto_sample(n);
        g.bench_with_input(BenchmarkId::new("build", n), &sample, |b, s| {
            b.iter(|| MassCount::new(black_box(s.clone())))
        });
        let mc = MassCount::new(sample.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("joint_ratio", n), &mc, |b, mc| {
            b.iter(|| black_box(mc).joint_ratio())
        });
        g.bench_with_input(BenchmarkId::new("summary", n), &mc, |b, mc| {
            b.iter(|| black_box(mc).summary())
        });
        g.bench_with_input(BenchmarkId::new("curves", n), &mc, |b, mc| {
            b.iter(|| black_box(mc).curves())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_masscount);
criterion_main!(benches);
