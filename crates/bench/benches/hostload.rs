//! Benchmarks of the host-load analyses (Figs. 7–13, Tables II/III) and
//! the simulator itself.

use cgc_core::hostload::{
    cpu_noise, host_comparison, max_load_distribution, mean_autocorr, queue_runlengths,
    usage_level_runs, usage_masscount,
};
use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_sim::{SimConfig, Simulator};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{Trace, DAY};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sim_trace() -> Trace {
    let machines = 32;
    let workload = GoogleWorkload::scaled_for_hostload(machines, DAY).generate(2);
    Simulator::new(SimConfig::google(FleetConfig::google(machines))).run(&workload)
}

fn bench_hostload(c: &mut Criterion) {
    let trace = sim_trace();

    let mut g = c.benchmark_group("hostload");
    g.bench_function("fig7_max_load", |b| {
        b.iter(|| max_load_distribution(black_box(&trace), UsageAttribute::Cpu, 25))
    });
    g.sample_size(10);
    g.bench_function("fig9_queue_runlengths", |b| {
        b.iter(|| queue_runlengths(black_box(&trace), 60))
    });
    g.bench_function("table2_cpu_level_runs", |b| {
        b.iter(|| usage_level_runs(black_box(&trace), UsageAttribute::Cpu, None))
    });
    g.bench_function("table3_memory_level_runs", |b| {
        b.iter(|| usage_level_runs(black_box(&trace), UsageAttribute::MemoryUsed, None))
    });
    g.bench_function("fig11_cpu_masscount", |b| {
        b.iter(|| usage_masscount(black_box(&trace), UsageAttribute::Cpu, None))
    });
    g.bench_function("fig12_memory_masscount", |b| {
        b.iter(|| usage_masscount(black_box(&trace), UsageAttribute::MemoryUsed, None))
    });
    g.bench_function("fig13_noise", |b| {
        b.iter(|| cpu_noise(black_box(&trace), UsageAttribute::Cpu, 12, 0))
    });
    g.bench_function("fig13_autocorr", |b| {
        b.iter(|| mean_autocorr(black_box(&trace), UsageAttribute::Cpu, 12))
    });
    g.bench_function("fig13_host_comparison", |b| {
        b.iter(|| host_comparison(black_box(&trace), 0))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("google_16_machines_6h", |b| {
        let machines = 16;
        let workload = GoogleWorkload::scaled_for_hostload(machines, 6 * 3_600).generate(5);
        let config = SimConfig::google(FleetConfig::google(machines));
        b.iter(|| Simulator::new(config.clone()).run(black_box(&workload)))
    });
    g.finish();
}

criterion_group!(benches, bench_hostload, bench_simulator);
criterion_main!(benches);
