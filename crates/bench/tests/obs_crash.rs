//! Observability surfaces under crash and clean-exit conditions, driven
//! through the real `gen_trace` binary.
//!
//! The flight recorder's whole reason to exist is the run that *doesn't*
//! reach its success path, so these tests spawn the binary and kill it
//! the same way the CI chaos job does (`--die-after`), then assert the
//! post-mortem artifact is present, versioned, and parseable. The clean
//! run covers the complementary contract: heartbeat JSONL and the
//! Prometheus exposition appear, and no flight record is dumped when
//! nothing went wrong.

use cgc_obs::{FlightRecord, HeartbeatRecord, FLIGHTREC_SCHEMA, HEARTBEAT_SCHEMA};
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgc-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn gen_trace(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gen_trace"))
        .args(args)
        .output()
        .expect("spawn gen_trace")
}

fn read_flight_record(path: &Path) -> FlightRecord {
    let json = std::fs::read_to_string(path).expect("flight record readable");
    serde_json::from_str(&json).expect("flight record parses")
}

#[test]
fn die_after_crash_leaves_parseable_flight_record() {
    let dir = scratch_dir("die");
    let out = dir.join("trace.cgct");
    let fr = dir.join("fr.json");
    let output = gen_trace(&[
        out.to_str().unwrap(),
        "--machines",
        "20",
        "--horizon",
        "3600",
        "--checkpoint-every",
        "600",
        "--die-after",
        "1",
        "--flight-recorder",
        fr.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(70),
        "die-after must abort with exit 70; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let record = read_flight_record(&fr);
    assert_eq!(record.schema, FLIGHTREC_SCHEMA);
    assert_eq!(record.reason, "die-after");
    assert!(
        record.detail.contains("--die-after 1"),
        "detail should name the kill: {:?}",
        record.detail
    );
    assert!(
        record.spans_seen > 0,
        "the run opened spans before dying; the ring must have seen them"
    );
    // No temp-file litter: the dump itself goes through an atomic write.
    assert!(!fr.with_extension("json.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interval_without_heartbeat_is_a_usage_error() {
    let dir = scratch_dir("usage");
    let out = dir.join("trace.cgct");
    let output = gen_trace(&[out.to_str().unwrap(), "--heartbeat-interval", "0.5"]);
    assert_eq!(
        output.status.code(),
        Some(2),
        "bad flag combinations exit 2; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--heartbeat-interval"),
        "the error must name the offending flag"
    );
    assert!(!out.exists(), "a usage error must not write the trace");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_emits_heartbeat_and_prom_but_no_flight_record() {
    let dir = scratch_dir("clean");
    let out = dir.join("trace.cgct");
    let hb = dir.join("hb.jsonl");
    let prom = dir.join("metrics.prom");
    let fr = dir.join("fr.json");
    let output = gen_trace(&[
        out.to_str().unwrap(),
        "--machines",
        "20",
        "--horizon",
        "3600",
        "--heartbeat",
        hb.to_str().unwrap(),
        "--heartbeat-interval",
        "0.01",
        "--prom-out",
        prom.to_str().unwrap(),
        "--flight-recorder",
        fr.to_str().unwrap(),
    ]);
    assert!(
        output.status.success(),
        "clean run failed; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(out.exists(), "the trace itself must still be written");

    // Heartbeat: every line is a versioned record; seq dense from 0 and
    // wall clock monotone across the stream.
    let jsonl = std::fs::read_to_string(&hb).expect("heartbeat file");
    let records: Vec<HeartbeatRecord> = jsonl
        .lines()
        .map(|line| serde_json::from_str(line).expect("heartbeat line parses"))
        .collect();
    assert!(!records.is_empty(), "at least the final record is emitted");
    let mut last_wall = 0u64;
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.schema, HEARTBEAT_SCHEMA);
        assert_eq!(r.seq, i as u64, "seq must be dense");
        assert!(r.wall_ms >= last_wall, "wall_ms must be monotone");
        last_wall = r.wall_ms;
        if let Some(c) = r.completion {
            assert!((0.0..=1.0).contains(&c), "completion out of range: {c}");
        }
    }

    // Prometheus: counter families carry their headers.
    let text = std::fs::read_to_string(&prom).expect("prom file");
    assert!(text.contains("# TYPE cgc_tasks_generated_total counter"));
    assert!(text.contains("# HELP cgc_tasks_generated_total"));
    assert!(text.ends_with('\n'), "exposition ends with a newline");

    // Nothing crashed, so the armed recorder must stay silent.
    assert!(!fr.exists(), "no flight record on a clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
