//! Minimal aligned-column table rendering for experiment output.

/// Renders rows as an aligned text table. The first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            if i + 1 < row.len() {
                out.extend(std::iter::repeat_n(' ', pad + 2));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Formats a float compactly: integers without decimals, small values with
/// enough precision to stay informative.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 100.0 || (v.fract() == 0.0 && a >= 1.0) {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(&[
            vec!["sys".into(), "max".into()],
            vec!["google".into(), "1421".into()],
            vec!["ag".into(), "818".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("sys"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "max" and "1421" start at the same offset.
        let off = lines[0].find("max").unwrap();
        assert_eq!(lines[2].find("1421").unwrap(), off);
    }

    #[test]
    fn empty_table() {
        assert_eq!(render(&[]), "");
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1421.0), "1421");
        assert_eq!(num(8.4), "8.40");
        assert_eq!(num(0.94), "0.940");
        assert_eq!(num(0.0011), "1.10e-3");
        assert_eq!(num(0.0), "0");
    }
}
