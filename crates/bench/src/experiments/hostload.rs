//! Host-load experiments: Figs. 7–13, Tables II/III, and the §VI
//! conclusion statistics.

use super::{ExperimentResult, MetricRow};
use crate::lab::Lab;
use crate::table::{self, num};
use cgc_core::hostload::comparison::NOISE_FILTER_WINDOW;
use cgc_core::hostload::{
    cpu_noise, host_comparison, max_load_distribution, queue_runlengths, usage_level_runs,
    usage_masscount,
};
use cgc_core::workload::task_length_analysis;
use cgc_gen::GridSystem;
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{MachineId, PriorityClass, QueueTimeline, Trace};

/// Fig. 7: distribution of the per-machine maximum host load.
pub fn fig7_max_load(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_sim();
    let mut detail_rows = vec![vec![
        "attribute".to_string(),
        "class cap".to_string(),
        "machines".to_string(),
        "mean max/cap".to_string(),
        "mode bin center".to_string(),
    ]];
    let mut summaries = Vec::new();
    for attr in UsageAttribute::ALL {
        let d = max_load_distribution(&trace, attr, 25);
        for c in &d.classes {
            if c.machines == 0 {
                continue;
            }
            detail_rows.push(vec![
                attr.name().to_string(),
                num(c.capacity),
                c.machines.to_string(),
                num(c.mean_relative_max),
                num(c.histogram.center(c.histogram.mode_bin())),
            ]);
        }
        let weighted: f64 = d
            .classes
            .iter()
            .map(|c| c.mean_relative_max * c.machines as f64)
            .sum::<f64>()
            / d.classes
                .iter()
                .map(|c| c.machines as f64)
                .sum::<f64>()
                .max(1.0);
        summaries.push((attr, weighted));
    }
    let get = |attr: UsageAttribute| {
        summaries
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };

    ExperimentResult {
        id: "fig7".into(),
        title: "Distribution of maximum host load".into(),
        rows: vec![
            MetricRow::new(
                "max CPU load vs capacity",
                "close to capacity (70-80% of hosts at cap)",
                format!("mean max/cap {}", num(get(UsageAttribute::Cpu))),
            ),
            MetricRow::new(
                "max consumed memory vs capacity",
                "~80% of capacity",
                format!("mean max/cap {}", num(get(UsageAttribute::MemoryUsed))),
            ),
            MetricRow::new(
                "max assigned memory vs capacity",
                "~90% of capacity",
                format!("mean max/cap {}", num(get(UsageAttribute::MemoryAssigned))),
            ),
            MetricRow::new(
                "capacity classes",
                "CPU {0.25,0.5,1}; mem {0.25,0.5,0.75,1}",
                "same discrete classes".to_string(),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// The machine with the median number of events — a representative host
/// for the Fig. 8 timeline (the busiest host is dominated by eviction
/// churn, the idlest by silence).
fn representative_machine(trace: &Trace) -> MachineId {
    let mut counts = vec![0u32; trace.machines.len()];
    for e in &trace.events {
        if let Some(m) = e.machine {
            counts[m.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| counts[i]);
    MachineId::from(order.get(order.len() / 2).copied().unwrap_or(0))
}

/// Fig. 8: task events and queue states on one machine.
pub fn fig8_queue_state(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_sim();
    let machine = representative_machine(&trace);
    let tl = QueueTimeline::for_machine(&trace, machine);

    // Sample the queue counts over the horizon for the detail table.
    let mut detail_rows = vec![vec![
        "day".to_string(),
        "pending".to_string(),
        "running".to_string(),
        "finished".to_string(),
        "abnormal".to_string(),
    ]];
    let steps = 12usize;
    for i in 0..=steps {
        let t = trace.horizon * i as u64 / steps as u64;
        let c = tl.at(t.saturating_sub(1));
        detail_rows.push(vec![
            format!("{:.2}", t as f64 / cgc_trace::DAY as f64),
            c.pending.to_string(),
            c.running.to_string(),
            c.finished.to_string(),
            c.abnormal.to_string(),
        ]);
    }

    // Fraction of time the pending queue is empty (paper: "always 0
    // except bootstrap").
    let series_len = (trace.horizon / 300).max(1);
    let mut empty = 0u64;
    for k in 0..series_len {
        if tl.at(k * 300).pending == 0 {
            empty += 1;
        }
    }
    let end = tl.at(trace.horizon - 1);

    ExperimentResult {
        id: "fig8".into(),
        title: "Task events and queuing state on a particular host".into(),
        rows: vec![
            MetricRow::new(
                "pending queue",
                "~always 0 (tasks scheduled immediately)",
                format!(
                    "empty {:.0}% of samples",
                    100.0 * empty as f64 / series_len as f64
                ),
            ),
            MetricRow::new(
                "running queue",
                "grows then stays stable (~tens of tasks)",
                format!("final running count {}", end.running),
            ),
            MetricRow::new(
                "completions",
                "finished grows linearly; many abnormal",
                format!("finished {} abnormal {}", end.finished, end.abnormal),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// Fig. 9: mass–count of unchanged running-queue-state durations.
pub fn fig9_queue_runlengths(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_sim();
    // 300 s matches the trace's reporting granularity; finer sampling
    // would split runs the original data cannot resolve.
    let r = queue_runlengths(&trace, 300);
    let mut detail_rows = vec![vec![
        "interval".to_string(),
        "runs".to_string(),
        "avg (min)".to_string(),
        "joint ratio".to_string(),
        "mm-dist (min)".to_string(),
    ]];
    let mut observed = Vec::new();
    for row in &r.intervals {
        let (joint, mm) = match &row.masscount {
            Some(mc) => (mc.joint_ratio_label(), num(mc.mm_distance)),
            None => ("-".to_string(), "-".to_string()),
        };
        if let Some(mc) = &row.masscount {
            observed.push((row.label.clone(), mc.joint_mass_pct, mc.mm_distance));
        }
        detail_rows.push(vec![
            row.label.clone(),
            row.runs.to_string(),
            num(row.duration_minutes.mean),
            joint,
            mm,
        ]);
    }
    let max_mass_pct = observed.iter().map(|o| o.1).fold(0.0, f64::max);

    ExperimentResult {
        id: "fig9".into(),
        title: "Mass-count of duration in unchanged queuing state".into(),
        rows: vec![
            MetricRow::new(
                "joint ratios",
                "10/90 to 16/84 (Pareto-like)",
                format!("mass side at most {:.0}%", max_mass_pct),
            ),
            MetricRow::new(
                "mm-distance",
                "370-972 min (smaller for busier intervals)",
                "see detail".to_string(),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// Fig. 10: snapshot of resource-usage load levels over sampled machines.
pub fn fig10_usage_bands(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_sim();
    let machines: Vec<MachineId> = (0..8.min(trace.machines.len()))
        .map(MachineId::from)
        .collect();

    let render_bands = |attr: UsageAttribute, class: Option<PriorityClass>| -> String {
        let bands = cgc_core::hostload::level_band_series(&trace, attr, class, &machines);
        let mut out = String::new();
        for (m, series) in bands {
            // One digit per ~2 hours: compact stripe like the figure.
            let stride = (series.len() / 36).max(1);
            let stripe: String = series
                .iter()
                .step_by(stride)
                .map(|b| char::from_digit(*b as u32, 10).unwrap_or('?'))
                .collect();
            out.push_str(&format!("{m:>4}  {stripe}\n"));
        }
        out
    };

    let mut detail = String::new();
    detail.push_str("CPU bands, all tasks (0=idle .. 4=full):\n");
    detail.push_str(&render_bands(UsageAttribute::Cpu, None));
    detail.push_str("CPU bands, high-priority view:\n");
    detail.push_str(&render_bands(
        UsageAttribute::Cpu,
        Some(PriorityClass::Middle),
    ));
    detail.push_str("Memory bands, all tasks:\n");
    detail.push_str(&render_bands(UsageAttribute::MemoryUsed, None));

    // Aggregate means for the metric rows.
    let cpu = usage_masscount(&trace, UsageAttribute::Cpu, None);
    let cpu_hi = usage_masscount(&trace, UsageAttribute::Cpu, Some(PriorityClass::Middle));
    let mem = usage_masscount(&trace, UsageAttribute::MemoryUsed, None);

    ExperimentResult {
        id: "fig10".into(),
        title: "Snapshot of resource usage load".into(),
        rows: vec![
            MetricRow::new(
                "CPU mostly idle vs capacity",
                "most machines in low bands most of the time",
                format!(
                    "mean CPU usage {:.0}%",
                    cpu.map(|u| u.percent.mean).unwrap_or(0.0)
                ),
            ),
            MetricRow::new(
                "high-priority CPU view",
                "much lighter than all-task view",
                format!("mean {:.0}%", cpu_hi.map(|u| u.percent.mean).unwrap_or(0.0)),
            ),
            MetricRow::new(
                "memory bands",
                "mostly high, slow-moving",
                format!(
                    "mean memory usage {:.0}%",
                    mem.map(|u| u.percent.mean).unwrap_or(0.0)
                ),
            ),
        ],
        detail,
    }
}

fn level_run_result(
    lab: &Lab,
    id: &str,
    title: &str,
    attr: UsageAttribute,
    paper_avg: &str,
    paper_joint: &str,
    paper_mm: &str,
) -> ExperimentResult {
    let trace = lab.google_sim();
    let t = usage_level_runs(&trace, attr, None);
    let mut detail_rows = vec![vec![
        "band".to_string(),
        "runs".to_string(),
        "avg (min)".to_string(),
        "max (min)".to_string(),
        "joint ratio".to_string(),
        "mm-dist (min)".to_string(),
    ]];
    let mut avg_all = Vec::new();
    for row in &t.rows {
        let (joint, mm) = match &row.masscount {
            Some(mc) => (mc.joint_ratio_label(), num(mc.mm_distance)),
            None => ("-".to_string(), "-".to_string()),
        };
        if row.runs > 0 {
            avg_all.push(row.duration_minutes.mean);
        }
        detail_rows.push(vec![
            row.label.clone(),
            row.runs.to_string(),
            num(row.duration_minutes.mean),
            num(row.duration_minutes.max),
            joint,
            mm,
        ]);
    }
    let mean_avg = avg_all.iter().sum::<f64>() / avg_all.len().max(1) as f64;

    ExperimentResult {
        id: id.into(),
        title: title.into(),
        rows: vec![
            MetricRow::new(
                "avg unchanged duration",
                paper_avg,
                format!("{} min", num(mean_avg)),
            ),
            MetricRow::new("joint ratios", paper_joint, "see detail".to_string()),
            MetricRow::new("mm-distances", paper_mm, "see detail".to_string()),
        ],
        detail: table::render(&detail_rows),
    }
}

/// Table II: continuous duration of unchanged CPU usage level.
pub fn table2_cpu_level_runs(lab: &Lab) -> ExperimentResult {
    level_run_result(
        lab,
        "table2",
        "Continuous duration of unchanged CPU usage level",
        UsageAttribute::Cpu,
        "~6 min per band",
        "26/74 to 30/70",
        "18-49 min",
    )
}

/// Table III: continuous duration of unchanged memory usage level.
pub fn table3_memory_level_runs(lab: &Lab) -> ExperimentResult {
    level_run_result(
        lab,
        "table3",
        "Continuous duration of unchanged memory usage level",
        UsageAttribute::MemoryUsed,
        "6-10 min per band (slower than CPU)",
        "18/82 to 26/74",
        "63-351 min",
    )
}

fn masscount_result(
    lab: &Lab,
    id: &str,
    title: &str,
    attr: UsageAttribute,
    paper_all: (&str, &str, &str),
    paper_high: (&str, &str, &str),
) -> ExperimentResult {
    let trace = lab.google_sim();
    let all = usage_masscount(&trace, attr, None);
    // The paper's "high priority" view means priorities above 4,
    // i.e. the middle-and-high clusters.
    let high = usage_masscount(&trace, attr, Some(PriorityClass::Middle));

    let fmt = |u: &Option<cgc_core::hostload::UsageMassCount>| match u {
        Some(u) => (
            format!("{:.0}%", u.percent.mean),
            u.masscount.joint_ratio_label(),
            format!("{:.0}%", u.masscount.mm_distance),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    };
    let (mean_a, joint_a, mm_a) = fmt(&all);
    let (mean_h, joint_h, mm_h) = fmt(&high);

    ExperimentResult {
        id: id.into(),
        title: title.into(),
        rows: vec![
            MetricRow::new("mean usage (all tasks)", paper_all.0, mean_a),
            MetricRow::new("joint ratio (all)", paper_all.1, joint_a),
            MetricRow::new("mm-distance (all)", paper_all.2, mm_a),
            MetricRow::new("mean usage (high-priority)", paper_high.0, mean_h),
            MetricRow::new("joint ratio (high)", paper_high.1, joint_h),
            MetricRow::new("mm-distance (high)", paper_high.2, mm_h),
        ],
        detail: String::new(),
    }
}

/// Fig. 11: mass–count disparity of CPU usage.
pub fn fig11_cpu_masscount(lab: &Lab) -> ExperimentResult {
    masscount_result(
        lab,
        "fig11",
        "Mass-count disparity of CPU usage",
        UsageAttribute::Cpu,
        ("~35%", "40/60", "13%"),
        ("~20%", "38/62", "13%"),
    )
}

/// Fig. 12: mass–count disparity of memory usage.
pub fn fig12_memory_masscount(lab: &Lab) -> ExperimentResult {
    masscount_result(
        lab,
        "fig12",
        "Mass-count disparity of memory usage",
        UsageAttribute::MemoryUsed,
        ("~60%", "43/57", "8%"),
        ("~50%", "41/59", "13%"),
    )
}

/// Fig. 13: host-load comparison between the Google cluster and grids.
pub fn fig13_cloud_grid_comparison(lab: &Lab) -> ExperimentResult {
    let google = lab.google_sim();
    let auver = lab.grid_sim(GridSystem::AuverGrid);
    let sharcnet = lab.grid_sim(GridSystem::Sharcnet);

    let mut detail_rows = vec![vec![
        "system".to_string(),
        "cpu util".to_string(),
        "mem util".to_string(),
        "noise min".to_string(),
        "noise mean".to_string(),
        "noise max".to_string(),
        "autocorr".to_string(),
    ]];
    let mut comps = Vec::new();
    for trace in [&google, &auver, &sharcnet] {
        // Skip the first simulated day: the real trace starts
        // mid-operation, while the simulation fills an empty cluster.
        let skip = (cgc_trace::DAY / 300) as usize;
        if let Some(c) = host_comparison(trace, skip) {
            detail_rows.push(vec![
                c.system.clone(),
                num(c.cpu_mean_utilization),
                num(c.memory_mean_utilization),
                num(c.cpu_noise.min),
                num(c.cpu_noise.mean),
                num(c.cpu_noise.max),
                num(c.cpu_autocorrelation),
            ]);
            comps.push(c);
        }
    }

    let ratio = if comps.len() >= 2 && comps[1].cpu_noise.mean > 0.0 {
        comps[0].cpu_noise.mean / comps[1].cpu_noise.mean
    } else {
        0.0
    };
    let google_mem_over_cpu = comps
        .first()
        .map(|c| c.memory_mean_utilization > c.cpu_mean_utilization)
        .unwrap_or(false);
    let grid_cpu_over_mem = comps
        .get(1)
        .map(|c| c.cpu_mean_utilization > c.memory_mean_utilization)
        .unwrap_or(false);
    let autocorr_contrast = match (comps.first(), comps.get(1)) {
        (Some(g), Some(a)) => format!(
            "google {} vs auvergrid {}",
            num(g.cpu_autocorrelation),
            num(a.cpu_autocorrelation)
        ),
        _ => "-".to_string(),
    };

    ExperimentResult {
        id: "fig13".into(),
        title: "Host load comparison between Google cluster and Grid systems".into(),
        rows: vec![
            MetricRow::new(
                "google: mem usage > cpu usage",
                "yes (cloud tasks are not compute-bound)",
                if google_mem_over_cpu { "yes" } else { "no" }.to_string(),
            ),
            MetricRow::new(
                "grids: cpu usage > mem usage",
                "yes (compute-intensive)",
                if grid_cpu_over_mem { "yes" } else { "no" }.to_string(),
            ),
            MetricRow::new(
                "cpu noise, google vs auvergrid",
                "~20x (0.028 vs 0.0011)",
                format!("{}x", num(ratio)),
            ),
            MetricRow::new(
                "cpu autocorrelation",
                "google ~0 (-8e-6), grid positive",
                autocorr_contrast,
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// §VI conclusion headlines: task-length quantiles and the completion mix.
pub fn concl_headline_stats(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_sim();
    let tl = task_length_analysis(&trace).expect("sim trace has executed tasks");
    let counts = trace.completion_counts();
    let skip = (cgc_trace::DAY / 300) as usize;
    let noise = cpu_noise(&trace, UsageAttribute::Cpu, NOISE_FILTER_WINDOW, skip);
    let autocorr = cgc_core::hostload::mean_autocorr_all_lags(&trace, UsageAttribute::Cpu, skip);

    ExperimentResult {
        id: "concl".into(),
        title: "Section VI headline statistics".into(),
        rows: vec![
            MetricRow::new(
                "tasks finishing within 10 min",
                "~55%",
                format!("{:.0}%", 100.0 * tl.frac_under_10min),
            ),
            MetricRow::new(
                "tasks shorter than 1 hour",
                "~90%",
                format!("{:.0}%", 100.0 * tl.frac_under_1h),
            ),
            MetricRow::new(
                "abnormal completion events",
                "59.2%",
                format!("{:.1}%", 100.0 * counts.abnormal_fraction()),
            ),
            MetricRow::new(
                "fail share of abnormal",
                "50%",
                format!("{:.0}%", 100.0 * counts.fail_share_of_abnormal()),
            ),
            MetricRow::new(
                "kill share of abnormal",
                "30.7%",
                format!("{:.0}%", 100.0 * counts.kill_share_of_abnormal()),
            ),
            MetricRow::new(
                "cpu noise mean",
                "0.028 (min 0.00024, max 0.081)",
                noise
                    .map(|n| format!("{} ({} / {})", num(n.mean), num(n.min), num(n.max)))
                    .unwrap_or_else(|| "-".into()),
            ),
            MetricRow::new(
                "cpu autocorrelation",
                "~ -8e-6",
                autocorr.map(num).unwrap_or_else(|| "-".into()),
            ),
        ],
        detail: String::new(),
    }
}
