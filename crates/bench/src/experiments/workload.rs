//! Work-load experiments: Figs. 2–6 and Table I.

use super::{ExperimentResult, MetricRow};
use crate::lab::Lab;
use crate::table::{self, num};
use cgc_core::workload::{
    job_cpu_usage, job_length_analysis, job_memory_mb, priority_histogram, submission_analysis,
    task_length_analysis,
};
use cgc_gen::GridSystem;
use cgc_trace::{DAY, HOUR};

/// Fig. 2: number of jobs and tasks per priority.
pub fn fig2_priorities(lab: &Lab) -> ExperimentResult {
    let trace = lab.google_workload();
    let h = priority_histogram(&trace);
    let (job_classes, task_classes) = h.class_totals();
    let total_jobs = h.total_jobs().max(1) as f64;
    let total_tasks = h.total_tasks().max(1) as f64;

    let mut detail_rows = vec![vec![
        "priority".to_string(),
        "jobs".to_string(),
        "jobs%".to_string(),
        "tasks".to_string(),
        "tasks%".to_string(),
    ]];
    for p in cgc_trace::Priority::all() {
        let i = p.index();
        detail_rows.push(vec![
            p.to_string(),
            h.jobs[i].to_string(),
            format!("{:.1}", 100.0 * h.jobs[i] as f64 / total_jobs),
            h.tasks[i].to_string(),
            format!("{:.1}", 100.0 * h.tasks[i] as f64 / total_tasks),
        ]);
    }

    ExperimentResult {
        id: "fig2".into(),
        title: "Statistics based on different priorities".into(),
        rows: vec![
            MetricRow::new(
                "priority clusters",
                "3 (low 1-4, mid 5-8, high 9-12)",
                "3 (same grouping)",
            ),
            MetricRow::new(
                "low-priority job share",
                "dominant (levels 1-4 hold most jobs)",
                format!("{:.0}%", 100.0 * job_classes[0] as f64 / total_jobs),
            ),
            MetricRow::new(
                "mid/high job share",
                "-",
                format!(
                    "{:.0}% / {:.0}%",
                    100.0 * job_classes[1] as f64 / total_jobs,
                    100.0 * job_classes[2] as f64 / total_jobs
                ),
            ),
            MetricRow::new(
                "low-priority task share",
                "dominant",
                format!("{:.0}%", 100.0 * task_classes[0] as f64 / total_tasks),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// Fig. 3: CDF of job length, Google vs the grids.
pub fn fig3_job_length(lab: &Lab) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut detail_rows = vec![vec![
        "system".to_string(),
        "F(1000s)".to_string(),
        "F(2000s)".to_string(),
        "median(s)".to_string(),
        "mean(s)".to_string(),
    ]];

    let google = lab.google_workload();
    let ga = job_length_analysis(&google).expect("google trace has finished jobs");
    detail_rows.push(vec![
        "google".to_string(),
        num(ga.frac_under_1000s),
        num(ga.frac_under_2000s),
        num(ga.summary.median),
        num(ga.summary.mean),
    ]);
    rows.push(MetricRow::new(
        "google F(1000s)",
        ">0.80 (\"over 80% shorter than 1000s\")",
        num(ga.frac_under_1000s),
    ));

    let mut worst_grid_frac: f64 = 1.0;
    for sys in GridSystem::TABLE1 {
        let trace = lab.grid_workload(sys);
        if let Some(a) = job_length_analysis(&trace) {
            worst_grid_frac = worst_grid_frac.min(a.frac_under_2000s);
            detail_rows.push(vec![
                sys.label().to_string(),
                num(a.frac_under_1000s),
                num(a.frac_under_2000s),
                num(a.summary.median),
                num(a.summary.mean),
            ]);
        }
    }
    rows.push(MetricRow::new(
        "grids F(2000s)",
        "<0.5 (\"most longer than 2000s\")",
        format!("min {} across grids", num(worst_grid_frac)),
    ));

    ExperimentResult {
        id: "fig3".into(),
        title: "CDF of job length of Google and Grid systems".into(),
        rows,
        detail: table::render(&detail_rows),
    }
}

/// Fig. 4: mass–count disparity of task lengths, Google vs AuverGrid.
pub fn fig4_task_length_masscount(lab: &Lab) -> ExperimentResult {
    let google = task_length_analysis(&lab.google_workload()).expect("google tasks ran");
    let auver = task_length_analysis(&lab.grid_workload(GridSystem::AuverGrid))
        .expect("auvergrid tasks ran");

    let rows = vec![
        MetricRow::new(
            "google joint ratio",
            "6/94",
            google.masscount.joint_ratio_label(),
        ),
        MetricRow::new(
            "auvergrid joint ratio",
            "24/76",
            auver.masscount.joint_ratio_label(),
        ),
        MetricRow::new(
            "google mm-distance (days)",
            "23.19",
            num(google.masscount.mm_distance / DAY as f64),
        ),
        MetricRow::new(
            "auvergrid mm-distance (days)",
            "0.82",
            num(auver.masscount.mm_distance / DAY as f64),
        ),
        MetricRow::new(
            "mean task length (h)",
            "google 5.6, auvergrid 7.2",
            format!(
                "google {}, auvergrid {}",
                num(google.summary.mean / HOUR as f64),
                num(auver.summary.mean / HOUR as f64)
            ),
        ),
        MetricRow::new(
            "max task length (days)",
            "google 29, auvergrid 18",
            format!(
                "google {}, auvergrid {}",
                num(google.summary.max / DAY as f64),
                num(auver.summary.max / DAY as f64)
            ),
        ),
        MetricRow::new(
            "google tasks <3h",
            "94%",
            format!("{:.0}%", 100.0 * google.frac_under_3h),
        ),
    ];

    ExperimentResult {
        id: "fig4".into(),
        title: "Mass-count disparity of task lengths (Google vs AuverGrid)".into(),
        rows,
        detail: String::new(),
    }
}

/// Fig. 5: CDF of the job-submission interval.
pub fn fig5_submission_intervals(lab: &Lab) -> ExperimentResult {
    let mut detail_rows = vec![vec![
        "system".to_string(),
        "median interval(s)".to_string(),
        "F(10s)".to_string(),
        "F(60s)".to_string(),
        "F(600s)".to_string(),
    ]];
    let mut google_median = 0.0;
    let mut grid_medians: Vec<f64> = Vec::new();

    let mut push = |label: &str, trace: &cgc_trace::Trace| -> Option<f64> {
        let a = submission_analysis(trace)?;
        let e = a.intervals()?;
        detail_rows.push(vec![
            label.to_string(),
            num(a.interval_summary.median),
            num(e.eval(10.0)),
            num(e.eval(60.0)),
            num(e.eval(600.0)),
        ]);
        Some(a.interval_summary.median)
    };

    if let Some(m) = push("google", &lab.google_workload()) {
        google_median = m;
    }
    for sys in GridSystem::TABLE1 {
        if let Some(m) = push(sys.label(), &lab.grid_workload(sys)) {
            grid_medians.push(m);
        }
    }
    let min_grid = grid_medians.iter().cloned().fold(f64::INFINITY, f64::min);

    ExperimentResult {
        id: "fig5".into(),
        title: "CDF of submission interval of Google and Grid systems".into(),
        rows: vec![MetricRow::new(
            "google intervals vs grids",
            "much shorter (higher frequency)",
            format!(
                "google median {}s vs shortest grid median {}s",
                num(google_median),
                num(min_grid)
            ),
        )],
        detail: table::render(&detail_rows),
    }
}

/// Table I: jobs submitted per hour.
pub fn table1_submission_rates(lab: &Lab) -> ExperimentResult {
    let mut detail_rows = vec![vec![
        "system".to_string(),
        "max".to_string(),
        "avg".to_string(),
        "min".to_string(),
        "fairness".to_string(),
        "paper(max/avg/min/fair)".to_string(),
    ]];
    let mut rows = Vec::new();

    let google = lab.google_workload();
    let ga = submission_analysis(&google).expect("google has submissions");
    detail_rows.push(vec![
        "google".to_string(),
        num(ga.rate.max),
        num(ga.rate.avg),
        num(ga.rate.min),
        num(ga.rate.fairness),
        "1421/552/36/0.94".to_string(),
    ]);
    rows.push(MetricRow::new(
        "google avg jobs/hour",
        "552",
        num(ga.rate.avg),
    ));
    rows.push(MetricRow::new(
        "google fairness",
        "0.94",
        num(ga.rate.fairness),
    ));

    let mut max_grid_fairness: f64 = 0.0;
    for sys in GridSystem::TABLE1 {
        let trace = lab.grid_workload(sys);
        let a = submission_analysis(&trace).expect("grid traces have submissions");
        let (pmax, pavg, pmin, pfair) = sys.paper_table1_row().expect("TABLE1 systems have rows");
        max_grid_fairness = max_grid_fairness.max(a.rate.fairness);
        detail_rows.push(vec![
            sys.label().to_string(),
            num(a.rate.max),
            num(a.rate.avg),
            num(a.rate.min),
            num(a.rate.fairness),
            format!("{}/{}/{}/{}", num(pmax), num(pavg), num(pmin), num(pfair)),
        ]);
    }
    rows.push(MetricRow::new(
        "grid fairness range",
        "0.04-0.51 (all below Google)",
        format!("max across grids {}", num(max_grid_fairness)),
    ));

    ExperimentResult {
        id: "table1".into(),
        title: "The number of jobs submitted per hour".into(),
        rows,
        detail: table::render(&detail_rows),
    }
}

/// Fig. 6: per-job CPU and memory utilization.
pub fn fig6_job_utilization(lab: &Lab) -> ExperimentResult {
    let google = lab.google_workload();
    let auver = lab.grid_workload(GridSystem::AuverGrid);
    let das2 = lab.grid_workload(GridSystem::Das2);
    let sharcnet = lab.grid_workload(GridSystem::Sharcnet);

    let mut detail_rows = vec![vec![
        "system".to_string(),
        "cpu median".to_string(),
        "cpu p90".to_string(),
        "F(cpu<=1)".to_string(),
        "mem median(MB)".to_string(),
    ]];
    let mut cpu_stats = Vec::new();
    for (label, trace, mem_cap_gb) in [
        ("google@32GB", &google, 32.0),
        ("google@64GB", &google, 64.0),
        ("auvergrid", &auver, 64.0),
        ("das-2", &das2, 64.0),
        ("sharcnet", &sharcnet, 64.0),
    ] {
        let cpu = job_cpu_usage(trace).expect("jobs finished");
        let mem = job_memory_mb(trace, mem_cap_gb).expect("jobs exist");
        detail_rows.push(vec![
            label.to_string(),
            num(cpu.median()),
            num(cpu.quantile(0.9)),
            num(cpu.eval(1.0)),
            num(mem.median()),
        ]);
        cpu_stats.push((label, cpu.eval(1.0), mem.median()));
    }

    let google_f1 = cpu_stats[0].1;
    let grid_f1 = cpu_stats[2].1;
    let google_mem = cpu_stats[0].2;
    let grid_mem = cpu_stats[2].2;

    ExperimentResult {
        id: "fig6".into(),
        title: "CPU & memory usage of jobs".into(),
        rows: vec![
            MetricRow::new(
                "google jobs within 1 processor",
                "large majority",
                format!("{:.0}%", 100.0 * google_f1),
            ),
            MetricRow::new(
                "grid jobs within 1 processor",
                "far fewer (parallel programs)",
                format!("auvergrid {:.0}%", 100.0 * grid_f1),
            ),
            MetricRow::new(
                "median job memory (MB)",
                "google smaller than grids",
                format!(
                    "google@32GB {} vs auvergrid {}",
                    num(google_mem),
                    num(grid_mem)
                ),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}
