//! The per-table/per-figure experiments.
//!
//! Ids follow the paper: `fig2` … `fig13`, `table1` … `table3`, plus
//! `concl` for the Section VI headline statistics.

pub mod extensions;
pub mod hostload;
pub mod workload;

use crate::lab::Lab;
use serde::Serialize;
use std::fmt;

/// One compared metric: the paper's reported value next to ours.
#[derive(Debug, Clone, Serialize)]
pub struct MetricRow {
    /// Metric name.
    pub metric: String,
    /// Value the paper reports ("-" where the paper gives no number).
    pub paper: String,
    /// Value measured on the simulated substrate.
    pub measured: String,
}

impl MetricRow {
    /// Convenience constructor.
    pub fn new(
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        MetricRow {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// Output of one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "fig4").
    pub id: String,
    /// Paper artifact it reproduces.
    pub title: String,
    /// Paper-vs-measured metric rows.
    pub rows: Vec<MetricRow>,
    /// Rendered data series / tables backing the figure.
    pub detail: String,
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut rows = vec![vec![
            "metric".to_string(),
            "paper".to_string(),
            "measured".to_string(),
        ]];
        rows.extend(
            self.rows
                .iter()
                .map(|r| vec![r.metric.clone(), r.paper.clone(), r.measured.clone()]),
        );
        write!(f, "{}", crate::table::render(&rows))?;
        if !self.detail.is_empty() {
            writeln!(f, "{}", self.detail)?;
        }
        Ok(())
    }
}

/// All experiment ids, in the paper's order, followed by extension
/// experiments (prediction, periodicity, users, churn, placement).
pub fn all_experiment_ids() -> &'static [&'static str] {
    &[
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "table1",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table2",
        "table3",
        "fig11",
        "fig12",
        "fig13",
        "concl",
        "ext-predict",
        "ext-diurnal",
        "ext-users",
        "ext-churn",
        "ext-placement",
        "ext-fit",
    ]
}

/// Runs one experiment by id. `None` for unknown ids.
pub fn run_experiment(id: &str, lab: &Lab) -> Option<ExperimentResult> {
    Some(match id {
        "fig2" => workload::fig2_priorities(lab),
        "fig3" => workload::fig3_job_length(lab),
        "fig4" => workload::fig4_task_length_masscount(lab),
        "fig5" => workload::fig5_submission_intervals(lab),
        "table1" => workload::table1_submission_rates(lab),
        "fig6" => workload::fig6_job_utilization(lab),
        "fig7" => hostload::fig7_max_load(lab),
        "fig8" => hostload::fig8_queue_state(lab),
        "fig9" => hostload::fig9_queue_runlengths(lab),
        "fig10" => hostload::fig10_usage_bands(lab),
        "table2" => hostload::table2_cpu_level_runs(lab),
        "table3" => hostload::table3_memory_level_runs(lab),
        "fig11" => hostload::fig11_cpu_masscount(lab),
        "fig12" => hostload::fig12_memory_masscount(lab),
        "fig13" => hostload::fig13_cloud_grid_comparison(lab),
        "concl" => hostload::concl_headline_stats(lab),
        "ext-predict" => extensions::ext_prediction(lab),
        "ext-diurnal" => extensions::ext_diurnal(lab),
        "ext-users" => extensions::ext_users(lab),
        "ext-churn" => extensions::ext_churn(lab),
        "ext-placement" => extensions::ext_placement(lab),
        "ext-fit" => extensions::ext_fit(lab),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_known() {
        let ids = all_experiment_ids();
        let mut sorted: Vec<_> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn unknown_id_is_none() {
        let lab = Lab::new(crate::Scale::Quick);
        assert!(run_experiment("fig99", &lab).is_none());
    }

    #[test]
    fn result_display_includes_rows() {
        let r = ExperimentResult {
            id: "x".into(),
            title: "demo".into(),
            rows: vec![MetricRow::new("m", "1", "2")],
            detail: "series".into(),
        };
        let text = r.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("measured"));
        assert!(text.contains("series"));
    }
}
