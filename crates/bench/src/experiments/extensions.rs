//! Extension experiments beyond the paper's figures.
//!
//! These exercise the paper's *stated implications*: load prediction (its
//! Section VI future work), the diurnal-periodicity claim behind Table I's
//! fairness gap, user-population skew, machine churn, and the placement
//! design choice attributed to the Google scheduler.

use super::{ExperimentResult, MetricRow};
use crate::lab::Lab;
use crate::table::{self, num};
use cgc_core::predict::{fleet_prediction_error, PredictorKind};
use cgc_core::workload::user_activity;
use cgc_gen::{FleetConfig, GoogleWorkload, GridSystem};
use cgc_sim::{PlacementPolicy, SimConfig, Simulator};
use cgc_stats::{counts_per_window, period_power};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{DAY, HOUR};

/// `ext-predict`: one-step host-load prediction, cloud vs grid.
pub fn ext_prediction(lab: &Lab) -> ExperimentResult {
    let google = lab.google_sim();
    let grid = lab.grid_sim(GridSystem::AuverGrid);
    let skip = (DAY / 300) as usize;
    let warmup = 48;

    let mut detail_rows = vec![vec![
        "predictor".to_string(),
        "google rmse".to_string(),
        "auvergrid rmse".to_string(),
        "ratio".to_string(),
    ]];
    let mut best: Option<(String, f64)> = None;
    let mut baseline_ratio = 0.0;
    for kind in PredictorKind::all_default() {
        let g = fleet_prediction_error(&google, UsageAttribute::Cpu, kind, skip, warmup);
        let a = fleet_prediction_error(&grid, UsageAttribute::Cpu, kind, skip, warmup);
        let ratio = g.rmse() / a.rmse().max(1e-9);
        if matches!(kind, PredictorKind::LastValue) {
            baseline_ratio = ratio;
        }
        if best.as_ref().is_none_or(|(_, e)| g.rmse() < *e) {
            best = Some((kind.label(), g.rmse()));
        }
        detail_rows.push(vec![
            kind.label(),
            num(g.rmse()),
            num(a.rmse()),
            format!("{:.0}x", ratio),
        ]);
    }
    let (best_name, best_rmse) = best.expect("at least one predictor");

    ExperimentResult {
        id: "ext-predict".into(),
        title: "Host-load prediction difficulty, cloud vs grid (paper §VI future work)".into(),
        rows: vec![
            MetricRow::new(
                "grid load predictability",
                "grid load is smooth/predictable (high autocorrelation)",
                format!(
                    "last-value is {:.0}x worse on cloud than grid",
                    baseline_ratio
                ),
            ),
            MetricRow::new(
                "best cloud predictor",
                "-",
                format!("{best_name} (rmse {})", num(best_rmse)),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// `ext-diurnal`: diurnal periodicity of submissions, cloud vs grids.
pub fn ext_diurnal(lab: &Lab) -> ExperimentResult {
    let mut detail_rows = vec![vec!["system".to_string(), "diurnal strength".to_string()]];
    // Fraction of the hourly-rate variance explained by the 24 h cycle.
    let strength = |trace: &cgc_trace::Trace| {
        let view = cgc_core::TraceView::new(trace);
        let counts = counts_per_window(view.submission_times(), HOUR, trace.horizon);
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        period_power(&xs, 24.0)
    };

    let google = strength(&lab.google_workload());
    detail_rows.push(vec!["google".to_string(), num(google)]);
    let mut max_grid: f64 = 0.0;
    let mut diurnal_grids = 0usize;
    for sys in GridSystem::TABLE1 {
        let s = strength(&lab.grid_workload(sys));
        max_grid = max_grid.max(s);
        if s > 2.0 * google {
            diurnal_grids += 1;
        }
        detail_rows.push(vec![sys.label().to_string(), num(s)]);
    }

    ExperimentResult {
        id: "ext-diurnal".into(),
        title: "Diurnal periodicity of job submissions (behind Table I fairness)".into(),
        rows: vec![
            MetricRow::new(
                "grid submissions are diurnal",
                "\"strong diurnal periodicity\" (paper §III.3)",
                format!(
                    "{diurnal_grids}/7 grids exceed 2x google; strongest {}",
                    num(max_grid)
                ),
            ),
            MetricRow::new(
                "google submissions",
                "flat profile",
                format!("24h power {}", num(google)),
            ),
            MetricRow::new(
                "burst-dominated grids",
                "SHARCNET/MetaCentrum fairness driven by batch bursts",
                "low 24h power despite low fairness".to_string(),
            ),
        ],
        detail: table::render(&detail_rows),
    }
}

/// `ext-users`: user-population skew.
pub fn ext_users(lab: &Lab) -> ExperimentResult {
    let mut detail_rows = vec![vec![
        "system".to_string(),
        "users".to_string(),
        "gini".to_string(),
        "top-10% share".to_string(),
        "top-user share".to_string(),
    ]];
    for trace in [
        lab.google_workload(),
        lab.grid_workload(GridSystem::AuverGrid),
        lab.grid_workload(GridSystem::Sharcnet),
    ] {
        if let Some(a) = user_activity(&trace) {
            detail_rows.push(vec![
                trace.system.clone(),
                a.users.to_string(),
                num(a.gini),
                format!("{:.0}%", 100.0 * a.top_decile_share),
                format!("{:.0}%", 100.0 * a.top_user_share),
            ]);
        }
    }
    ExperimentResult {
        id: "ext-users".into(),
        title: "Per-user submission skew".into(),
        rows: vec![MetricRow::new(
            "user populations",
            "each job belongs to one user (paper §II)",
            "see detail".to_string(),
        )],
        detail: table::render(&detail_rows),
    }
}

/// `ext-churn`: machine-outage ablation.
pub fn ext_churn(_lab: &Lab) -> ExperimentResult {
    let machines = 24;
    let workload = GoogleWorkload::scaled_for_hostload(machines, DAY).generate(9);
    let mut detail_rows = vec![vec![
        "outages/machine/day".to_string(),
        "fail events".to_string(),
        "abnormal %".to_string(),
        "unfinished tasks".to_string(),
    ]];
    let mut fail_at_zero = 0;
    let mut fail_at_high = 0;
    for rate in [0.0, 0.5, 2.0] {
        let config = SimConfig::google(FleetConfig::google(machines)).with_machine_churn(rate);
        let trace = Simulator::new(config).run(&workload);
        let c = trace.completion_counts();
        if rate == 0.0 {
            fail_at_zero = c.fail;
        } else {
            fail_at_high = c.fail;
        }
        let unfinished = trace
            .tasks
            .iter()
            .filter(|t| t.outcome == cgc_trace::task::TaskOutcome::Unfinished)
            .count();
        detail_rows.push(vec![
            num(rate),
            c.fail.to_string(),
            format!("{:.1}%", 100.0 * c.abnormal_fraction()),
            unfinished.to_string(),
        ]);
    }
    ExperimentResult {
        id: "ext-churn".into(),
        title: "Machine-outage ablation (trace records machines leaving/rejoining)".into(),
        rows: vec![MetricRow::new(
            "outages raise failures",
            "lost/failed tasks attributed partly to machine churn",
            format!(
                "fail events {} -> {} as churn rises",
                fail_at_zero, fail_at_high
            ),
        )],
        detail: table::render(&detail_rows),
    }
}

/// `ext-placement`: placement-policy ablation.
pub fn ext_placement(_lab: &Lab) -> ExperimentResult {
    let machines = 24;
    let workload = GoogleWorkload::scaled_for_hostload(machines, DAY).generate(10);
    let mut detail_rows = vec![vec![
        "policy".to_string(),
        "mean max cpu/cap".to_string(),
        "std of max".to_string(),
        "evictions".to_string(),
    ]];
    let mut spread_balance = 0.0;
    let mut spread_bestfit = 0.0;
    for (name, policy) in [
        ("load-balance", PlacementPolicy::LoadBalance),
        ("best-fit", PlacementPolicy::BestFit),
        ("first-fit", PlacementPolicy::FirstFit),
    ] {
        let config = SimConfig::google(FleetConfig::google(machines)).with_placement(policy);
        let trace = Simulator::new(config).run(&workload);
        let maxima: Vec<f64> = trace
            .host_series
            .iter()
            .map(|s| {
                let m = &trace.machines[s.machine.index()];
                s.max_attribute(UsageAttribute::Cpu) / m.cpu_capacity
            })
            .collect();
        let summary = cgc_stats::Summary::of(&maxima);
        match policy {
            PlacementPolicy::LoadBalance => spread_balance = summary.std,
            PlacementPolicy::BestFit => spread_bestfit = summary.std,
            PlacementPolicy::FirstFit => {}
        }
        let evictions = trace
            .events
            .iter()
            .filter(|e| e.kind == cgc_trace::task::TaskEventKind::Evict)
            .count();
        detail_rows.push(vec![
            name.to_string(),
            num(summary.mean),
            num(summary.std),
            evictions.to_string(),
        ]);
    }
    ExperimentResult {
        id: "ext-placement".into(),
        title: "Placement-policy ablation (the paper's 'balance the demand' scheduler)".into(),
        rows: vec![MetricRow::new(
            "load balancing evens peak load",
            "\"optimally balance the resource demands across machines\" (§II)",
            format!(
                "max-load spread: balance {} vs best-fit {}",
                num(spread_balance),
                num(spread_bestfit)
            ),
        )],
        detail: table::render(&detail_rows),
    }
}

/// `ext-fit`: distribution fitting of task lengths.
pub fn ext_fit(lab: &Lab) -> ExperimentResult {
    use cgc_stats::fit_all;

    let mut detail_rows = vec![vec![
        "system".to_string(),
        "model".to_string(),
        "AIC rank".to_string(),
        "KS".to_string(),
        "parameters".to_string(),
    ]];
    let mut winners = Vec::new();
    let mut sigmas = Vec::new();
    for trace in [
        lab.google_workload(),
        lab.grid_workload(GridSystem::AuverGrid),
    ] {
        let lengths: Vec<f64> = cgc_core::TraceView::new(&trace)
            .task_execution_times()
            .iter()
            .map(|&d| (d as f64).max(1.0))
            .collect();
        let reports = fit_all(&lengths);
        winners.push((trace.system.clone(), reports[0].model.name()));
        if let Some(cgc_stats::FittedModel::LogNormal { sigma, .. }) = reports
            .iter()
            .map(|r| r.model)
            .find(|m| matches!(m, cgc_stats::FittedModel::LogNormal { .. }))
        {
            sigmas.push(sigma);
        }
        for (rank, r) in reports.iter().enumerate() {
            let params = match r.model {
                cgc_stats::FittedModel::Exponential { mean } => format!("mean={}", num(mean)),
                cgc_stats::FittedModel::LogNormal { mu, sigma } => {
                    format!("mu={} sigma={}", num(mu), num(sigma))
                }
                cgc_stats::FittedModel::Pareto { xmin, alpha } => {
                    format!("xmin={} alpha={}", num(xmin), num(alpha))
                }
            };
            detail_rows.push(vec![
                trace.system.clone(),
                r.model.name().to_string(),
                (rank + 1).to_string(),
                num(r.ks),
                params,
            ]);
        }
    }

    ExperimentResult {
        id: "ext-fit".into(),
        title: "Distribution fitting of task lengths (Feitelson workload modeling)".into(),
        rows: vec![
            MetricRow::new(
                "best-fit families",
                "Google far more heavy-tailed than AuverGrid (Fig. 4)",
                format!("google -> {}, auvergrid -> {}", winners[0].1, winners[1].1),
            ),
            MetricRow::new(
                "lognormal body spread (sigma)",
                "Google wider (shorter typical tasks, longer extremes)",
                if sigmas.len() == 2 {
                    format!("google {} vs auvergrid {}", num(sigmas[0]), num(sigmas[1]))
                } else {
                    "-".to_string()
                },
            ),
        ],
        detail: table::render(&detail_rows),
    }
}
