//! Shared lazily-built traces for the experiments.
//!
//! Several experiments read the same traces; `Lab` builds each one on first
//! use and caches it. All seeds are fixed, so every experiment output is
//! reproducible run-to-run.

use cgc_gen::{FleetConfig, GoogleWorkload, GridSystem, GridWorkload};
use cgc_sim::{SimConfig, Simulator};
use cgc_trace::{Trace, DAY};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Experiment scale. `Quick` reproduces every shape in seconds-to-minutes;
/// `Full` runs month-long horizons closer to the paper's raw sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default: days-long horizons, ~100-machine fleets.
    Quick,
    /// Month-long horizons, larger fleets. Minutes of CPU time.
    Full,
}

impl Scale {
    /// Horizon of workload-only traces (full submission rates).
    pub fn workload_days(self) -> u64 {
        match self {
            Scale::Quick => 10,
            Scale::Full => 30,
        }
    }

    /// Fleet size of the Google host-load simulation.
    pub fn sim_machines(self) -> usize {
        match self {
            Scale::Quick => 96,
            Scale::Full => 400,
        }
    }

    /// Horizon of host-load simulations, in days.
    pub fn sim_days(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }

    /// Fleet size of grid host-load simulations.
    pub fn grid_sim_machines(self) -> usize {
        match self {
            Scale::Quick => 48,
            Scale::Full => 200,
        }
    }
}

/// Rate multiplier that loads a scaled grid fleet past saturation.
///
/// Grid clusters run with a standing backlog: a node that finishes a job
/// receives the next one within seconds, so per-node CPU stays pegged for
/// days (which is exactly why the paper measures grid host load as smooth
/// and predictable). The multiplier intentionally overshoots capacity.
fn grid_rate_scale(system: GridSystem, machines: usize) -> f64 {
    let base = machines as f64 / 30.0;
    match system {
        GridSystem::Sharcnet => 0.55 * base,
        _ => base,
    }
}

/// Lazily-built shared traces.
pub struct Lab {
    scale: Scale,
    google_workload: OnceLock<Arc<Trace>>,
    google_sim: OnceLock<Arc<Trace>>,
    grid_workloads: Mutex<HashMap<&'static str, Arc<Trace>>>,
    grid_sims: Mutex<HashMap<&'static str, Arc<Trace>>>,
}

impl Lab {
    /// Creates an empty lab at the given scale.
    pub fn new(scale: Scale) -> Self {
        Lab {
            scale,
            google_workload: OnceLock::new(),
            google_sim: OnceLock::new(),
            grid_workloads: Mutex::new(HashMap::new()),
            grid_sims: Mutex::new(HashMap::new()),
        }
    }

    /// The lab's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Google workload-only trace at the full (Table I) submission rate.
    pub fn google_workload(&self) -> Arc<Trace> {
        self.google_workload
            .get_or_init(|| {
                let horizon = self.scale.workload_days() * DAY;
                let cfg = GoogleWorkload {
                    horizon,
                    ..GoogleWorkload::full_scale()
                };
                Arc::new(cfg.generate(42).into_workload_trace())
            })
            .clone()
    }

    /// Grid workload-only trace at the full submission rate.
    pub fn grid_workload(&self, system: GridSystem) -> Arc<Trace> {
        let mut map = self.grid_workloads.lock().expect("lab mutex poisoned");
        map.entry(system.label())
            .or_insert_with(|| {
                let horizon = self.scale.workload_days() * DAY;
                let cfg = GridWorkload {
                    horizon,
                    ..GridWorkload::full_scale(system)
                };
                Arc::new(cfg.generate(43).into_workload_trace())
            })
            .clone()
    }

    /// Google host-load simulation trace.
    pub fn google_sim(&self) -> Arc<Trace> {
        self.google_sim
            .get_or_init(|| {
                let machines = self.scale.sim_machines();
                let horizon = self.scale.sim_days() * DAY;
                let workload = GoogleWorkload::scaled_for_hostload(machines, horizon).generate(7);
                let config = SimConfig::google(FleetConfig::google(machines));
                Arc::new(Simulator::new(config).run(&workload))
            })
            .clone()
    }

    /// Grid host-load simulation trace.
    pub fn grid_sim(&self, system: GridSystem) -> Arc<Trace> {
        let mut map = self.grid_sims.lock().expect("lab mutex poisoned");
        map.entry(system.label())
            .or_insert_with(|| {
                let machines = self.scale.grid_sim_machines();
                let horizon = self.scale.sim_days() * DAY;
                let rate = grid_rate_scale(system, machines);
                let workload = GridWorkload::scaled(system, horizon, rate).generate(7);
                let config = SimConfig::grid(FleetConfig::homogeneous(machines));
                Arc::new(Simulator::new(config).run(&workload))
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_cached() {
        let lab = Lab::new(Scale::Quick);
        let a = lab.grid_workload(GridSystem::Anl);
        let b = lab.grid_workload(GridSystem::Anl);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn scale_parameters() {
        assert!(Scale::Full.workload_days() > Scale::Quick.workload_days());
        assert!(Scale::Full.sim_machines() > Scale::Quick.sim_machines());
    }
}
