//! End-to-end pipeline benchmark: generate → simulate → write → read →
//! characterize on a named preset, timed stage by stage.
//!
//! ```text
//! cgc-bench [--preset quick|google|large|full] [--machines N]
//!           [--horizon SECONDS] [--shards N] [--threads N] [--seed N]
//!           [--sim-only] [--out PATH] [--telemetry PATH]
//!           [--heartbeat PATH|-] [--heartbeat-interval SECONDS]
//!           [--prom-out PATH] [--flight-recorder PATH]
//! ```
//!
//! Presets size the fleet and the simulated span: `quick` (60 machines,
//! 2 h) for smoke tests, `google` (200 machines, 12 h) as the tracked
//! default, `large` (1 000 machines, 24 h) for CI perf gating, and
//! `full` (12 500 machines, 30 days) — the paper's cluster at the
//! paper's observation window. At `full` scale the materialized trace
//! text no longer fits comfortably in memory, which is what `--sim-only`
//! is for: it runs generate + simulate + the throughput curve and skips
//! the write/read/characterize stages (their report blocks are `null`).
//!
//! The `stream` block compares the in-memory characterization against
//! `characterize_stream` on the same trace file. Peak RSS is a
//! process-wide high-water mark, so each side runs in its own child
//! process (`--worker`, hidden) and reports its own `VmHWM`; the parent —
//! whose RSS already peaked during simulation — only collects.
//!
//! The `formats` block serializes the same trace both ways — sectioned
//! CSV and the binary columnar container — timing write and strict
//! parallel read for each (stages `write_binary`/`read_binary`), with
//! round-trips asserted; CI gates on binary write+read staying at or
//! below half the text stages.
//!
//! The `fused` block times the serialization-free pipeline — records
//! emitted from the trace through a bounded channel straight into the
//! streaming characterizer (`fuse_characterize`) — against the fastest
//! path through a serialized artifact (columnar write + zero-copy
//! columnar characterize), reports asserted byte-identical; CI gates on
//! fused staying at or below 0.9× the roundtrip.
//!
//! Writes `BENCH_pipeline.json`: per-stage wall-clock and throughput
//! (tasks/s, samples/s), peak RSS, a `throughput_curve` block (the
//! simulate stage re-run at 1, 2, and 4 threads with shards fixed, so
//! thread scaling is tracked run over run), and — measured in the same
//! process, on the same inputs — the *reference baseline*: the
//! heap-and-BTreeMap scheduler core ([`SchedulerCore::Reference`]) on a
//! single shard, the sequential whole-string parser, and the reference
//! analysis passes (`characterize_reference`: per-machine queue replay,
//! per-lag autocorrelation, two-sort row summaries). The optimized and
//! reference cores produce bit-identical traces and reports (pinned by
//! the `core_equivalence` and `reference_equivalence` suites and
//! re-asserted in-run), so `end_to_end.speedup` is a like-for-like ratio
//! of the two pipelines.
//!
//! The baseline simulation uses the same `(seed, shards)` model only
//! when `--shards 1`; with more shards they are different models by
//! design (see DESIGN.md §5), which is why the baseline is reported
//! separately instead of asserted equal.
//!
//! The run also enables the observability layer and snapshots its
//! counters right after the optimized pipeline (before the telemetry,
//! throughput-curve, and baseline re-runs, which would double-count).
//! The deterministic counters land in the JSON under `counters` and are
//! cross-checked here against the trace itself — CI diffs them against
//! the committed file to catch silent pipeline drift.
//!
//! The simulation is then re-run with the sim-time telemetry probe
//! attached (5-minute grid), timed as its own `simulate_telemetry` stage
//! so the probe's overhead stays visible without entering `end_to_end`
//! (whose simulate stage is a plain `run()`, symmetric with the
//! baseline). The probed trace is asserted bit-identical to the plain
//! run's. Per-band queueing-delay percentiles land in the JSON under
//! `queue_delay_percentiles` — deterministic, so CI diffs them exactly
//! alongside `counters` — and `--telemetry PATH` writes the full
//! versioned bundle (timeline, capacity, histograms) for offline
//! inspection.

use cgc_bench::cli::{parse_arg, parse_value, require_value, ObsArgs};
use cgc_bench::fuse_characterize;
use cgc_core::{characterize, characterize_reference, StreamOptions};
use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_obs::{PipelineCounters, QueueDelayPercentiles};
use cgc_sim::{FaultConfig, SchedulerCore, SimConfig, Simulator};
use cgc_trace::io::{read_trace, read_trace_parallel, write_trace};
use cgc_trace::{emit_trace, DEFAULT_BATCH_RECORDS, DEFAULT_CHANNEL_BATCHES};
use serde::Serialize;
use std::time::Instant;

/// Sim-time sampling interval for the telemetry probe, seconds. Fixed so
/// the percentile block in `BENCH_pipeline.json` is comparable run over
/// run.
const TELEMETRY_INTERVAL: u64 = 300;

/// Thread counts the simulate stage is re-run at for `throughput_curve`,
/// with shards held fixed.
const CURVE_THREADS: [usize; 3] = [1, 2, 4];

/// The `BENCH_pipeline.json` document. Field names are the file format —
/// rename only with a schema bump.
#[derive(Serialize)]
struct BenchReport {
    schema: &'static str,
    preset: &'static str,
    config: BenchConfig,
    counts: Counts,
    /// Deterministic pipeline counters for the optimized pipeline only
    /// (snapshotted before the curve and baseline re-runs). Timings are
    /// excluded: they vary run to run, these must not.
    counters: PipelineCounters,
    /// Deterministic queueing-delay percentiles per priority band from
    /// the simulate stage's telemetry probe (first submit → first
    /// placement, seconds). CI diffs these exactly, like `counters`.
    queue_delay_percentiles: Vec<QueueDelayPercentiles>,
    stages: Vec<Stage>,
    /// Simulate-stage throughput at 1/2/4 threads, shards fixed. CI
    /// requires `tasks_per_s` to be monotone non-decreasing in threads
    /// (with slack for timer noise).
    throughput_curve: Vec<CurvePoint>,
    /// `null` under `--sim-only`.
    baseline: Option<Baseline>,
    /// In-memory vs out-of-core characterization of the same trace file,
    /// each measured in its own child process so `peak_rss_bytes` is that
    /// pipeline's own high-water mark. `null` under `--sim-only`.
    stream: Option<StreamComparison>,
    /// Text (sectioned CSV) vs binary (columnar container) serialization
    /// of the same trace: write + strict parallel read wall-clock and the
    /// on-disk size, plus the binary/text ratios CI gates on. Measured
    /// after the counter snapshot so `counters` describes the text
    /// pipeline exactly once. `null` under `--sim-only`.
    formats: Option<FormatComparison>,
    /// Fused emit→characterize (bounded channel, no serialization)
    /// against the binary write→read→characterize roundtrip on the same
    /// trace, reports asserted byte-identical. CI gates on
    /// `fused_over_roundtrip` staying at or below 0.9. `null` under
    /// `--sim-only`.
    fused: Option<FusedComparison>,
    /// `null` under `--sim-only`.
    end_to_end: Option<EndToEnd>,
    peak_rss_bytes: Option<u64>,
}

#[derive(Serialize)]
struct StreamComparison {
    description: &'static str,
    in_memory: ChildRun,
    streaming: ChildRun,
    /// `streaming.peak_rss_bytes / in_memory.peak_rss_bytes` — below 1.0
    /// when the out-of-core path holds less than the materialized trace.
    rss_ratio: f64,
}

#[derive(Serialize)]
struct ChildRun {
    seconds: f64,
    peak_rss_bytes: u64,
}

#[derive(Serialize)]
struct FormatComparison {
    description: &'static str,
    text: FormatSide,
    binary: FormatSide,
    /// `binary.write_seconds / text.write_seconds` — the CI bench job
    /// requires write + read combined at or below 0.5× text.
    binary_over_text_write: f64,
    /// `binary.read_seconds / text.read_seconds`.
    binary_over_text_read: f64,
}

#[derive(Serialize)]
struct FormatSide {
    write_seconds: f64,
    read_seconds: f64,
    bytes: usize,
}

#[derive(Serialize)]
struct FusedComparison {
    description: &'static str,
    /// Record emission fanned into the analysis passes over the bounded
    /// channel — no bytes serialized or parsed anywhere.
    fused_seconds: f64,
    /// `write_trace_columnar` + `characterize_stream_columnar` on the
    /// same trace: the fastest path through a serialized artifact.
    roundtrip_seconds: f64,
    /// `fused_seconds / roundtrip_seconds` — the CI bench job requires
    /// at or below 0.9.
    fused_over_roundtrip: f64,
}

#[derive(Serialize)]
struct BenchConfig {
    machines: usize,
    horizon: u64,
    shards: usize,
    threads: usize,
    seed: u64,
}

#[derive(Serialize)]
struct Counts {
    jobs: usize,
    tasks: usize,
    events: usize,
    samples: usize,
    /// `null` under `--sim-only` (the trace is never serialized).
    trace_bytes: Option<usize>,
}

#[derive(Serialize)]
struct Stage {
    stage: &'static str,
    seconds: f64,
    tasks_per_s: Option<f64>,
    samples_per_s: Option<f64>,
}

#[derive(Serialize)]
struct CurvePoint {
    machines: usize,
    shards: usize,
    threads: usize,
    simulate_seconds: f64,
    tasks_per_s: f64,
}

#[derive(Serialize)]
struct Baseline {
    description: &'static str,
    simulate_seconds: f64,
    read_seconds: f64,
    characterize_seconds: f64,
    total_seconds: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    total_seconds: f64,
    speedup: f64,
}

/// `(name, machines, horizon_seconds)` of each named preset.
const PRESETS: [(&str, usize, u64); 4] = [
    ("quick", 60, 2 * 3_600),
    ("google", 200, 12 * 3_600),
    ("large", 1_000, 24 * 3_600),
    ("full", 12_500, 30 * 24 * 3_600),
];

struct Args {
    preset: &'static str,
    machines: usize,
    horizon: u64,
    shards: usize,
    threads: usize,
    seed: u64,
    sim_only: bool,
    out: String,
    telemetry: Option<String>,
    obs: ObsArgs,
}

fn preset(name: &str) -> (&'static str, usize, u64) {
    PRESETS
        .iter()
        .find(|(n, _, _)| *n == name)
        .copied()
        .unwrap_or_else(|| {
            eprintln!(
                "unknown preset {name:?} (expected one of: {})",
                PRESETS.map(|(n, _, _)| n).join(", ")
            );
            std::process::exit(2);
        })
}

fn parse_args() -> Args {
    let (name, machines, horizon) = preset("google");
    let mut a = Args {
        preset: name,
        machines,
        horizon,
        shards: 4,
        threads: 4,
        seed: 1,
        sim_only: false,
        out: "BENCH_pipeline.json".into(),
        telemetry: None,
        obs: ObsArgs::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                (a.preset, a.machines, a.horizon) = preset(&require_value(&mut args, "--preset"));
            }
            // Back-compat alias for `--preset quick`.
            "--quick" => (a.preset, a.machines, a.horizon) = preset("quick"),
            "--machines" => {
                a.machines = parse_value(&mut args, "--machines");
                a.preset = "custom";
            }
            "--horizon" => {
                a.horizon = parse_value(&mut args, "--horizon");
                a.preset = "custom";
            }
            "--shards" => a.shards = parse_value(&mut args, "--shards"),
            "--threads" => a.threads = parse_value(&mut args, "--threads"),
            "--seed" => a.seed = parse_value(&mut args, "--seed"),
            "--sim-only" => a.sim_only = true,
            "--out" => a.out = require_value(&mut args, "--out"),
            "--telemetry" => a.telemetry = Some(require_value(&mut args, "--telemetry")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: cgc-bench [--preset quick|google|large|full] [--machines N] \
                     [--horizon SECONDS] [--shards N] [--threads N] [--seed N] [--sim-only] \
                     [--out PATH] [--telemetry PATH] [--heartbeat PATH|-] \
                     [--heartbeat-interval SECONDS] [--prom-out PATH] [--flight-recorder PATH]"
                );
                std::process::exit(0);
            }
            other if a.obs.accept(other, &mut args) => {}
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    a
}

/// Times one closure, returning (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Peak resident set size in bytes, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn per(n: usize, seconds: f64) -> Option<f64> {
    (seconds > 0.0).then(|| n as f64 / seconds)
}

fn tasks_stage(name: &'static str, seconds: f64, tasks: usize) -> Stage {
    Stage {
        stage: name,
        seconds,
        tasks_per_s: per(tasks, seconds),
        samples_per_s: None,
    }
}

fn samples_stage(name: &'static str, seconds: f64, samples: usize) -> Stage {
    Stage {
        stage: name,
        seconds,
        tasks_per_s: None,
        samples_per_s: per(samples, seconds),
    }
}

/// Hidden child mode: characterize the trace at `path` one way, print
/// `seconds=` / `peak_rss_bytes=` lines, exit. A fresh process makes
/// `VmHWM` measure exactly this pipeline.
fn worker(mode: &str, path: &str) -> ! {
    let start = Instant::now();
    match mode {
        "in-memory" => {
            let text = std::fs::read_to_string(path).expect("trace file readable");
            let trace = read_trace_parallel(&text).expect("trace parses");
            std::hint::black_box(characterize(&trace));
        }
        "stream" => {
            let file = std::fs::File::open(path).expect("trace file readable");
            let opts = cgc_core::StreamOptions::default();
            let (report, _stats) =
                cgc_core::characterize_stream(std::io::BufReader::new(file), &opts)
                    .expect("trace parses");
            std::hint::black_box(report);
        }
        other => {
            eprintln!("unknown worker mode {other:?}");
            std::process::exit(2);
        }
    }
    println!("seconds={}", start.elapsed().as_secs_f64());
    println!("peak_rss_bytes={}", peak_rss_bytes().unwrap_or(0));
    std::process::exit(0);
}

/// Runs one `--worker` child on the trace file and parses its report.
fn child_run(mode: &'static str, trace_path: &std::path::Path) -> ChildRun {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .arg("--worker")
        .arg(mode)
        .arg(trace_path)
        .output()
        .expect("spawn worker");
    assert!(
        out.status.success(),
        "worker {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| {
        let prefix = format!("{key}=");
        text.lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .unwrap_or_else(|| panic!("worker {mode} output missing {key}"))
            .trim()
            .to_string()
    };
    ChildRun {
        seconds: parse_arg(&field("seconds"), "seconds"),
        peak_rss_bytes: parse_arg(&field("peak_rss_bytes"), "peak_rss_bytes"),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.len() == 4 && argv[1] == "--worker" {
        worker(&argv[2], &argv[3]);
    }

    cgc_obs::init_from_env();
    cgc_obs::set_enabled(true);
    cgc_obs::metrics().reset();

    let args = parse_args();
    args.obs.validate();
    let session = args.obs.start();
    eprintln!(
        "cgc-bench: {} preset, {} machines, {} s horizon, {} shards, {} threads{}",
        args.preset,
        args.machines,
        args.horizon,
        args.shards,
        args.threads,
        if args.sim_only { ", sim-only" } else { "" }
    );

    let config = SimConfig::google(FleetConfig::google(args.machines))
        .with_faults(FaultConfig::google())
        .with_shards(args.shards)
        .with_threads(args.threads);

    // --- warm-up (untimed) --------------------------------------------
    // The first heavy pass is systematically slower (allocator growth,
    // page faults, cold branch predictors), and it would land entirely on
    // the optimized side — the baseline re-runs later in a warm process.
    // One untimed generate + simulate, then a counter reset, puts every
    // timed stage at steady state. Skipped under --sim-only, where the
    // run is long enough to amortize its own cold start.
    if !args.sim_only {
        let w = GoogleWorkload::scaled(args.machines, args.horizon).generate(args.seed);
        std::hint::black_box(Simulator::new(config.clone()).run(&w));
        cgc_obs::metrics().reset();
    }

    // --- generate -----------------------------------------------------
    let (gen_s, workload) =
        timed(|| GoogleWorkload::scaled(args.machines, args.horizon).generate(args.seed));
    let n_tasks: usize = workload.jobs.iter().map(|j| j.tasks.len()).sum();
    eprintln!(
        "generate: {:.3}s ({} jobs, {n_tasks} tasks)",
        gen_s,
        workload.jobs.len()
    );

    // --- simulate (optimized: sharded, threaded) ----------------------
    // Plain `run()`, symmetric with the reference baseline below: the
    // telemetry probe is attached in a separately-timed re-run after the
    // counter snapshot, so `end_to_end.speedup` compares like with like.
    let (sim_s, trace) = timed(|| Simulator::new(config.clone()).run(&workload));
    let n_events = trace.events.len();
    let n_samples: usize = trace.host_series.iter().map(|s| s.samples.len()).sum();
    eprintln!("simulate: {sim_s:.3}s ({n_events} events, {n_samples} samples)");

    let mut stages = vec![
        tasks_stage("generate", gen_s, n_tasks),
        tasks_stage("simulate", sim_s, n_tasks),
    ];

    // --- write / read / characterize (skipped under --sim-only) -------
    let mut text = String::new();
    let mut char_s = 0.0;
    let mut read_s = 0.0;
    let mut write_s = 0.0;
    if !args.sim_only {
        let (s, t) = timed(|| write_trace(&trace));
        (write_s, text) = (s, t);
        eprintln!("write: {:.3}s ({} bytes)", write_s, text.len());

        let (s, reread) = timed(|| read_trace_parallel(&text).expect("own output parses"));
        read_s = s;
        assert_eq!(reread, trace, "read-back must round-trip");
        drop(reread);

        let (s, report) = timed(|| characterize(&trace));
        char_s = s;
        eprintln!("characterize: {char_s:.3}s ({})", report.system);

        stages.push(samples_stage("write", write_s, n_samples));
        stages.push(tasks_stage("read", read_s, n_tasks));
        stages.push(samples_stage("characterize", char_s, n_samples));
    }

    // --- metrics snapshot ---------------------------------------------
    // Taken before the curve and baseline re-runs below, so the counters
    // describe the optimized pipeline exactly once — and can be
    // cross-checked against the trace itself.
    let snapshot = cgc_obs::metrics().snapshot();
    let c = &snapshot.counters;
    assert_eq!(c.jobs_generated as usize, trace.jobs.len(), "jobs counter");
    assert_eq!(
        c.tasks_generated as usize,
        trace.tasks.len(),
        "tasks counter"
    );
    assert_eq!(c.events_simulated as usize, n_events, "events counter");
    assert_eq!(c.samples_recorded as usize, n_samples, "samples counter");
    assert_eq!(
        c.events_per_shard.iter().sum::<u64>(),
        c.events_simulated,
        "per-shard events sum to the total"
    );
    assert!(
        c.events_per_shard.len() <= args.shards.max(1),
        "no more shard slots than shards"
    );
    if !args.sim_only {
        assert_eq!(c.bytes_read as usize, text.len(), "bytes-read counter");
        assert_eq!(c.lines_salvaged, 0, "strict parse salvages nothing");
    }
    eprint!("{}", snapshot.render_table());

    // --- simulate again with the telemetry probe attached -------------
    // The probed run produces a bit-identical trace (pinned by the
    // determinism suite and re-asserted here). It is timed as its own
    // stage so the probe's overhead stays visible without contaminating
    // the end-to-end comparison, and runs after the counter snapshot so
    // `counters` describes the plain pipeline exactly once.
    let (sim_tel_s, (tel_trace, telemetry)) =
        timed(|| Simulator::new(config.clone()).run_with_telemetry(&workload, TELEMETRY_INTERVAL));
    assert_eq!(
        tel_trace, trace,
        "telemetry probe must not perturb the trace"
    );
    drop(tel_trace);
    eprintln!("simulate_telemetry: {sim_tel_s:.3}s (probe on a {TELEMETRY_INTERVAL}s grid)");
    stages.push(tasks_stage("simulate_telemetry", sim_tel_s, n_tasks));

    // --- telemetry ----------------------------------------------------
    let queue_delay_percentiles = telemetry.queue_delay_percentiles();
    for p in &queue_delay_percentiles {
        eprintln!(
            "queue delay [{}]: {} placements, p50 {}s p90 {}s p99 {}s",
            p.band, p.samples, p.p50, p.p90, p.p99
        );
    }
    if let Some(path) = &args.telemetry {
        let json = serde_json::to_string_pretty(&telemetry).expect("telemetry serializes");
        cgc_trace::write_atomic(path, json.as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote telemetry ({} ticks at {}s) to {path}",
            telemetry.timeline.len(),
            telemetry.interval
        );
    }

    // --- throughput curve: simulate at 1/2/4 threads, shards fixed ----
    let throughput_curve: Vec<CurvePoint> = CURVE_THREADS
        .iter()
        .map(|&threads| {
            let cfg = config.clone().with_threads(threads);
            let (seconds, _) = timed(|| Simulator::new(cfg).run(&workload));
            let tasks_per_s = per(n_tasks, seconds).unwrap_or(0.0);
            eprintln!(
                "throughput_curve: {threads} thread(s) -> {seconds:.3}s ({tasks_per_s:.0} tasks/s)"
            );
            CurvePoint {
                machines: args.machines,
                shards: args.shards,
                threads,
                simulate_seconds: seconds,
                tasks_per_s,
            }
        })
        .collect();

    let (baseline, stream, formats, fused, end_to_end) = if args.sim_only {
        (None, None, None, None, None)
    } else {
        // --- simulate (baseline: the reference scheduler core) --------
        let baseline_config = config
            .clone()
            .with_shards(1)
            .with_threads(1)
            .with_core(SchedulerCore::Reference);
        let (sim_base_s, _) = timed(|| Simulator::new(baseline_config).run(&workload));
        eprintln!("simulate/baseline: {sim_base_s:.3}s (reference core, 1 shard, 1 thread)");

        // --- read (baseline: sequential strict parser) ----------------
        let (read_base_s, _) = timed(|| read_trace(&text).expect("own output parses"));
        eprintln!("read: {read_s:.3}s parallel, {read_base_s:.3}s sequential");

        // --- characterize (baseline: reference analysis passes) -------
        // Same report, bit-identical (pinned by `reference_equivalence`),
        // produced by the pre-optimization pass forms: per-machine queue
        // replay, per-lag autocorrelation, two-sort row summaries.
        let (char_base_s, reference_report) = timed(|| characterize_reference(&trace));
        assert_eq!(
            serde_json::to_string(&reference_report).expect("report serializes"),
            serde_json::to_string(&characterize(&trace)).expect("report serializes"),
            "reference analysis must match the optimized report"
        );
        drop(reference_report);
        eprintln!("characterize: {char_s:.3}s optimized, {char_base_s:.3}s reference");

        // --- binary columnar container vs the text format --------------
        // Same trace through both serializations, strict write + parallel
        // read each, round-trips asserted. Runs after the counter
        // snapshot, so `counters.bytes_read` still describes the text
        // pipeline exactly once.
        let (write_bin_s, binary) = timed(|| cgc_trace::write_trace_columnar(&trace));
        let (read_bin_s, rebin) = timed(|| {
            cgc_trace::read_trace_columnar_parallel(&binary).expect("own binary output parses")
        });
        assert_eq!(rebin, trace, "binary read-back must round-trip");
        drop(rebin);
        eprintln!(
            "formats: text {write_s:.3}s write / {read_s:.3}s read ({} bytes), \
             binary {write_bin_s:.3}s write / {read_bin_s:.3}s read ({} bytes)",
            text.len(),
            binary.len()
        );
        stages.push(samples_stage("write_binary", write_bin_s, n_samples));
        stages.push(tasks_stage("read_binary", read_bin_s, n_tasks));
        let formats = FormatComparison {
            description: "same trace, both serializations: write + strict parallel \
                          read (write_trace/read_trace_parallel vs \
                          write_trace_columnar/read_trace_columnar_parallel)",
            text: FormatSide {
                write_seconds: write_s,
                read_seconds: read_s,
                bytes: text.len(),
            },
            binary: FormatSide {
                write_seconds: write_bin_s,
                read_seconds: read_bin_s,
                bytes: binary.len(),
            },
            binary_over_text_write: if write_s > 0.0 {
                write_bin_s / write_s
            } else {
                0.0
            },
            binary_over_text_read: if read_s > 0.0 {
                read_bin_s / read_s
            } else {
                0.0
            },
        };
        drop(binary);

        // --- fused emit→characterize vs the binary roundtrip -----------
        // Both legs start from the materialized trace (the simulate stage
        // is common to both and excluded): the fused leg streams records
        // over the bounded channel straight into the analysis passes,
        // the roundtrip leg takes the fastest serialized path — columnar
        // write, then the zero-copy columnar stream reader. Reports are
        // asserted byte-identical, so the ratio compares equal work.
        let opts = StreamOptions::default();
        let (fused_s, fused_result) = timed(|| {
            fuse_characterize(
                |sink| emit_trace(&trace, &mut [sink]),
                &opts,
                DEFAULT_BATCH_RECORDS,
                DEFAULT_CHANNEL_BATCHES,
            )
            .expect("fused pipeline succeeds")
        });
        let ((), fused_report, _fused_stats) = fused_result;
        let (roundtrip_s, roundtrip_report) = timed(|| {
            let binary = cgc_trace::write_trace_columnar(&trace);
            let (report, _) = cgc_core::characterize_stream_columnar(&binary, &opts)
                .expect("own binary output parses");
            report
        });
        assert_eq!(
            serde_json::to_string(&fused_report).expect("report serializes"),
            serde_json::to_string(&roundtrip_report).expect("report serializes"),
            "fused report must be byte-identical to the file roundtrip"
        );
        drop((fused_report, roundtrip_report));
        let fused_over_roundtrip = if roundtrip_s > 0.0 {
            fused_s / roundtrip_s
        } else {
            0.0
        };
        eprintln!(
            "fused: {fused_s:.3}s vs {roundtrip_s:.3}s binary roundtrip \
             (ratio {fused_over_roundtrip:.2})"
        );
        stages.push(tasks_stage("fused", fused_s, n_tasks));
        let fused = FusedComparison {
            description: "emit_trace→bounded channel→analysis passes (no \
                          serialization) vs write_trace_columnar + \
                          characterize_stream_columnar on the same trace",
            fused_seconds: fused_s,
            roundtrip_seconds: roundtrip_s,
            fused_over_roundtrip,
        };

        // --- characterize from disk: in-memory vs streaming children --
        let trace_path =
            std::env::temp_dir().join(format!("cgc-bench-{}.cgct", std::process::id()));
        cgc_trace::write_atomic(&trace_path, text.as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", trace_path.display());
            std::process::exit(1);
        });
        let in_memory = child_run("in-memory", &trace_path);
        let streaming = child_run("stream", &trace_path);
        let _ = std::fs::remove_file(&trace_path);
        let rss_ratio = if in_memory.peak_rss_bytes > 0 {
            streaming.peak_rss_bytes as f64 / in_memory.peak_rss_bytes as f64
        } else {
            0.0
        };
        eprintln!(
            "characterize_stream: {:.3}s, peak RSS {:.1} MB vs {:.1} MB in-memory (ratio {:.2})",
            streaming.seconds,
            streaming.peak_rss_bytes as f64 / (1 << 20) as f64,
            in_memory.peak_rss_bytes as f64 / (1 << 20) as f64,
            rss_ratio
        );
        stages.push(tasks_stage(
            "characterize_stream",
            streaming.seconds,
            n_tasks,
        ));

        let total = gen_s + sim_s + write_s + read_s + char_s;
        let total_baseline = gen_s + sim_base_s + write_s + read_base_s + char_base_s;
        (
            Some(Baseline {
                description: "reference pipeline: heap/BTreeMap scheduler core \
                              (SchedulerCore::Reference), 1 shard, 1 thread, sequential \
                              parser, reference analysis passes",
                simulate_seconds: sim_base_s,
                read_seconds: read_base_s,
                characterize_seconds: char_base_s,
                total_seconds: total_baseline,
            }),
            Some(StreamComparison {
                description: "characterize from disk, per-child VmHWM: \
                              read_trace_parallel+characterize vs characterize_stream",
                in_memory,
                streaming,
                rss_ratio,
            }),
            Some(formats),
            Some(fused),
            Some(EndToEnd {
                total_seconds: total,
                speedup: if total > 0.0 {
                    total_baseline / total
                } else {
                    0.0
                },
            }),
        )
    };

    let out = BenchReport {
        schema: "cgc-bench/pipeline/v5",
        preset: args.preset,
        config: BenchConfig {
            machines: args.machines,
            horizon: args.horizon,
            shards: args.shards,
            threads: args.threads,
            seed: args.seed,
        },
        counts: Counts {
            jobs: trace.jobs.len(),
            tasks: trace.tasks.len(),
            events: n_events,
            samples: n_samples,
            trace_bytes: (!args.sim_only).then_some(text.len()),
        },
        counters: snapshot.counters,
        queue_delay_percentiles,
        stages,
        throughput_curve,
        baseline,
        stream,
        formats,
        fused,
        end_to_end,
        peak_rss_bytes: peak_rss_bytes(),
    };

    let pretty = serde_json::to_string_pretty(&out).expect("report serializes");
    cgc_trace::write_atomic(&args.out, pretty.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("{pretty}");
    eprintln!("wrote {}", args.out);
    session.finish_with(Some(&telemetry));
    cgc_obs::flush_observers();
}
