//! Regenerates the paper's tables and figures.
//!
//! Usage:
//! ```text
//! run_experiments [IDS...] [--full] [--json PATH] [--metrics] [--telemetry PATH]
//!                 [--heartbeat PATH|-] [--heartbeat-interval SECONDS]
//!                 [--prom-out PATH] [--flight-recorder PATH]
//! ```
//! With no ids, every experiment runs in paper order. `--full` switches to
//! month-scale horizons; `--json` additionally writes the structured
//! results to a file. `--metrics` enables the observability layer and
//! prints the pipeline metrics table to stderr when all experiments are
//! done; `CGC_TRACE=1` streams per-stage span timings live, and
//! `CGC_TRACE_OUT=spans.json` writes the span tree as a Chrome Trace
//! Event file for Perfetto. `--telemetry PATH` replays the lab's shared
//! google simulation on a 5-minute sim-time grid and writes the versioned
//! telemetry bundle (queue timelines, queueing-delay histograms) to
//! `PATH`. The live-observability flags are shared with the other
//! binaries: `--heartbeat PATH|-` streams `cgc-heartbeat/v1` JSONL
//! progress while experiments run, `--prom-out PATH` writes a Prometheus
//! exposition when they finish, and `--flight-recorder PATH` arms a
//! `cgc-flightrec/v1` crash dump.

use cgc_bench::cli::ObsArgs;
use cgc_bench::{all_experiment_ids, export_plots, run_experiment, Lab, Scale};
use std::io::Write;

fn main() {
    cgc_obs::init_from_env();

    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut json_path: Option<String> = None;
    let mut plots_dir: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut with_metrics = false;
    let mut obs = ObsArgs::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--metrics" => {
                with_metrics = true;
                cgc_obs::set_enabled(true);
                cgc_obs::metrics().reset();
            }
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }));
            }
            "--plots" => {
                plots_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--plots requires a directory");
                    std::process::exit(2);
                }));
            }
            "--telemetry" => {
                telemetry_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--telemetry requires a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: run_experiments [IDS...] [--full] [--json PATH] [--plots DIR] \
                     [--metrics] [--telemetry PATH] [--heartbeat PATH|-] \
                     [--heartbeat-interval SECONDS] [--prom-out PATH] [--flight-recorder PATH]"
                );
                eprintln!("known ids: {}", all_experiment_ids().join(" "));
                return;
            }
            other if obs.accept(other, &mut args) => {}
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    obs.validate();
    let session = obs.start();

    let lab = Lab::new(scale);
    let mut results = Vec::new();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        match run_experiment(id, &lab) {
            Some(result) => {
                writeln!(out, "{result}").expect("stdout write");
                results.push(result);
            }
            None => {
                eprintln!(
                    "unknown experiment id {id:?}; known: {}",
                    all_experiment_ids().join(" ")
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(dir) = plots_dir {
        let dir = std::path::PathBuf::from(dir);
        export_plots(&lab, &dir).unwrap_or_else(|e| {
            eprintln!("failed to export plots to {}: {e}", dir.display());
            std::process::exit(1);
        });
        eprintln!("wrote plot data and figures.gp to {}", dir.display());
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("results serialize");
        cgc_trace::write_atomic(&path, json.as_bytes()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} results to {path}", results.len());
    }

    let telemetry_bundle = telemetry_path.map(|path| {
        // The paper's 5-minute sampling period, on the lab's shared
        // google simulation (memoized: free if an experiment already
        // simulated it). Kept for the prom exposition's sim-time
        // histogram families.
        let bundle = cgc_core::telemetry_from_trace(&lab.google_sim(), 300);
        let json = serde_json::to_string_pretty(&bundle).expect("telemetry serializes");
        cgc_trace::write_atomic(&path, json.as_bytes()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote telemetry ({} ticks at {}s) to {path}",
            bundle.timeline.len(),
            bundle.interval
        );
        bundle
    });

    if with_metrics {
        eprint!("{}", cgc_obs::metrics().snapshot().render_table());
    }
    session.finish_with(telemetry_bundle.as_ref());
    cgc_obs::flush_observers();
}
