//! Generate a synthetic trace file on disk.
//!
//! ```text
//! gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] [--workload-only]
//! ```
//!
//! Runs the google preset (generator + simulator) and writes the
//! sectioned-CSV trace to `OUT` — the fixture producer for smoke tests
//! that need a real on-disk trace, e.g. the CI job exercising
//! `analyze_trace --stream`. `--workload-only` skips the simulation, so
//! the trace has jobs/tasks/events but no machines or usage samples.

use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_sim::{FaultConfig, SimConfig, Simulator};
use cgc_trace::io::write_trace;

const USAGE: &str =
    "usage: gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] [--workload-only]";

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut out: Option<String> = None;
    let mut machines: usize = 40;
    let mut horizon: u64 = 2 * 3_600;
    let mut seed: u64 = 1;
    let mut workload_only = false;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machines" => machines = parse(&value(&mut args, "--machines"), "--machines"),
            "--horizon" => horizon = parse(&value(&mut args, "--horizon"), "--horizon"),
            "--seed" => seed = parse(&value(&mut args, "--seed"), "--seed"),
            "--workload-only" => workload_only = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if out.is_none() => out = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    // The hostload scaling keeps the per-machine job pressure of the full
    // trace, so even short fixtures carry enough records to exercise the
    // analyses (plain `scaled` yields almost no jobs at fixture sizes).
    let workload = GoogleWorkload::scaled_for_hostload(machines, horizon).generate(seed);
    let trace = if workload_only {
        workload.into_workload_trace()
    } else {
        let config =
            SimConfig::google(FleetConfig::google(machines)).with_faults(FaultConfig::google());
        Simulator::new(config).run(&workload)
    };
    let text = write_trace(&trace);
    std::fs::write(&out, &text).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {out}: {} jobs, {} tasks, {} events, {} samples, {} bytes",
        trace.jobs.len(),
        trace.tasks.len(),
        trace.events.len(),
        trace
            .host_series
            .iter()
            .map(|s| s.samples.len())
            .sum::<usize>(),
        text.len()
    );
}
