//! Generate a synthetic trace file on disk, crash-safely — and
//! optionally characterize it in the same process, fused.
//!
//! ```text
//! gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] [--format text|binary]
//!                 [--workload-only] [--checkpoint-every SECONDS] [--checkpoint PATH]
//!                 [--resume PATH] [--die-after N]
//!                 [--characterize [--json]]
//!                 [--heartbeat PATH|-] [--heartbeat-interval SECONDS]
//!                 [--prom-out PATH] [--flight-recorder PATH]
//! gen_trace --characterize --no-trace-out [--json] [--machines N] [--horizon SECONDS] [--seed N]
//! ```
//!
//! Runs the google preset (generator + simulator) and writes the trace
//! to `OUT` — the fixture producer for smoke tests that need a real
//! on-disk trace, e.g. the CI job exercising `analyze_trace --stream`.
//! `--format` picks the serialization: `text` (default) writes the
//! sectioned CSV **sealed** with an `#integrity` trailer (record counts
//! and a CRC-32); `binary` writes the columnar container, whose header
//! and sections are each CRC-guarded. Either way the file is written
//! **atomically** (temp file + fsync + rename), so a crash mid-write
//! never leaves a torn file and readers can detect truncation or bit
//! rot. The two formats hold identical records: `analyze_trace` yields
//! byte-identical reports from either.
//!
//! `--workload-only` skips the simulation, so the trace has jobs/tasks/
//! events but no machines or usage samples.
//!
//! # Fused characterization
//!
//! `--characterize` streams the simulator's records straight into the
//! analysis passes over a bounded in-memory channel and prints the
//! characterization report to stdout (pretty text, or JSON with
//! `--json`) — the same report `analyze_trace --stream` would produce
//! from the written file, byte for byte, because the record sink emits
//! in canonical serialization order. With a text `OUT` the emission
//! fans out: one pass over the records feeds both the characterizer and
//! the sealed text writer. `--no-trace-out` drops the file entirely
//! (then `OUT` may be omitted): generate → characterize → report, no
//! disk roundtrip anywhere.
//!
//! # Crash recovery
//!
//! `--checkpoint-every S` snapshots the full simulator state every `S`
//! sim-seconds to `<OUT>.ckpt` (or `--checkpoint PATH`). After a crash,
//! `--resume PATH` continues from the latest checkpoint and produces a
//! byte-identical trace to an uninterrupted run — in either output
//! format. `--die-after N` aborts the process (exit 70) after the Nth
//! checkpoint write — a deterministic stand-in for `kill -9` that the
//! CI chaos-smoke job uses to prove the interrupt/resume/compare cycle
//! end to end. `--checkpoint` and `--die-after` only make sense with
//! `--checkpoint-every`; naming them without it is an error (exit 2),
//! not a silent no-op.
//!
//! # Live observability
//!
//! `--heartbeat PATH` (or `-` for stderr) streams `cgc-heartbeat/v1`
//! JSONL progress records while the run executes; `--prom-out PATH`
//! writes a Prometheus text exposition of the run's metrics on success;
//! `--flight-recorder PATH` arms a crash dump (`cgc-flightrec/v1`) that
//! a panic, SIGTERM/SIGINT, or `--die-after` abort writes atomically.
//! All three are observability-only: the trace bytes are identical with
//! or without them.

use cgc_bench::cli::{parse_value, reject_if, require_value, ObsArgs};
use cgc_bench::fuse_characterize;
use cgc_core::StreamOptions;
use cgc_gen::{FleetConfig, GoogleWorkload, Workload};
use cgc_sim::{load_checkpoint, CheckpointOptions, FaultConfig, SimConfig, Simulator};
use cgc_trace::columnar::write_columnar_to;
use cgc_trace::io::write_trace_sealed;
use cgc_trace::{
    emit_trace, write_atomic, write_atomic_with, RecordSink, TextWriterSink, Trace,
    DEFAULT_BATCH_RECORDS, DEFAULT_CHANNEL_BATCHES,
};
use std::path::Path;

const USAGE: &str = "usage: gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] \
     [--format text|binary] [--workload-only] [--checkpoint-every SECONDS] [--checkpoint PATH] \
     [--resume PATH] [--die-after N] [--characterize [--no-trace-out] [--json]] \
     [--heartbeat PATH|-] [--heartbeat-interval SECONDS] [--prom-out PATH] \
     [--flight-recorder PATH]";

/// What the fused producer emits from: a trace that already exists
/// (workload-only or checkpointed runs) or a simulation driven through
/// the engine's record-sink seam.
enum Source {
    Built(Trace),
    Live { sim: Simulator, workload: Workload },
}

fn main() {
    cgc_obs::init_from_env();
    let mut out: Option<String> = None;
    let mut machines: usize = 40;
    let mut horizon: u64 = 2 * 3_600;
    let mut seed: u64 = 1;
    let mut binary = false;
    let mut workload_only = false;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut die_after: Option<u64> = None;
    let mut characterize = false;
    let mut no_trace_out = false;
    let mut as_json = false;
    let mut obs = ObsArgs::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machines" => machines = parse_value(&mut args, "--machines"),
            "--horizon" => horizon = parse_value(&mut args, "--horizon"),
            "--seed" => seed = parse_value(&mut args, "--seed"),
            "--format" => match require_value(&mut args, "--format").as_str() {
                "text" => binary = false,
                "binary" => binary = true,
                other => {
                    eprintln!("invalid value for --format: {other:?} (expected text or binary)");
                    std::process::exit(2);
                }
            },
            "--workload-only" => workload_only = true,
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_value(&mut args, "--checkpoint-every"))
            }
            "--checkpoint" => checkpoint_path = Some(require_value(&mut args, "--checkpoint")),
            "--resume" => resume_path = Some(require_value(&mut args, "--resume")),
            "--die-after" => die_after = Some(parse_value(&mut args, "--die-after")),
            "--characterize" => characterize = true,
            "--no-trace-out" => no_trace_out = true,
            "--json" => as_json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if obs.accept(other, &mut args) => {}
            other if out.is_none() && !other.starts_with('-') => out = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    reject_if(
        workload_only && (checkpoint_every.is_some() || resume_path.is_some()),
        "--checkpoint-every/--resume need a simulation; drop --workload-only",
    );
    reject_if(
        checkpoint_path.is_some() && checkpoint_every.is_none(),
        "--checkpoint names the snapshot path for periodic checkpointing; \
         it requires --checkpoint-every",
    );
    reject_if(
        die_after.is_some() && checkpoint_every.is_none(),
        "--die-after aborts after the Nth checkpoint write; it requires --checkpoint-every",
    );
    reject_if(
        no_trace_out && !characterize,
        "--no-trace-out would produce nothing; it requires --characterize",
    );
    reject_if(
        as_json && !characterize,
        "--json formats the characterization report; it requires --characterize",
    );
    reject_if(
        no_trace_out && out.is_some(),
        "--no-trace-out writes no trace file; drop the <OUT> argument",
    );
    if out.is_none() && !no_trace_out {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    reject_if(
        no_trace_out && checkpoint_every.is_some() && checkpoint_path.is_none(),
        "--checkpoint-every defaults its snapshot path to <OUT>.ckpt; \
         with --no-trace-out name one explicitly via --checkpoint PATH",
    );
    obs.validate();
    let session = obs.start();

    // The hostload scaling keeps the per-machine job pressure of the full
    // trace, so even short fixtures carry enough records to exercise the
    // analyses (plain `scaled` yields almost no jobs at fixture sizes).
    let workload = GoogleWorkload::scaled_for_hostload(machines, horizon).generate(seed);
    let source = if workload_only {
        Source::Built(workload.into_workload_trace())
    } else {
        let config =
            SimConfig::google(FleetConfig::google(machines)).with_faults(FaultConfig::google());
        let sim = Simulator::new(config);
        if checkpoint_every.is_none() && resume_path.is_none() {
            Source::Live { sim, workload }
        } else {
            let options = checkpoint_every.map(|every| {
                let path = checkpoint_path.unwrap_or_else(|| {
                    format!("{}.ckpt", out.as_deref().expect("checked: OUT present"))
                });
                CheckpointOptions {
                    path: path.into(),
                    every,
                    retain_all: false,
                    die_after,
                }
            });
            let resume = resume_path.map(|p| {
                load_checkpoint(Path::new(&p)).unwrap_or_else(|e| {
                    eprintln!("cannot resume from {p}: {e}");
                    std::process::exit(1);
                })
            });
            let (trace, _telemetry) = sim
                .run_checkpointed(&workload, None, options.as_ref(), resume.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            Source::Built(trace)
        }
    };

    // A text OUT under --characterize rides the same record emission as
    // the characterizer (one fan-out pass); binary OUT serializes from
    // the materialized trace afterwards, as before.
    let tee_text = characterize && !no_trace_out && !binary;
    let (trace, sealed_text) = if characterize {
        let opts = StreamOptions::default();
        let produce = move |sink: &mut cgc_trace::BatchChannelSink| {
            let mut tee = tee_text.then(TextWriterSink::sealed);
            let emit = |sinks: &mut [&mut dyn RecordSink]| match source {
                Source::Built(trace) => emit_trace(&trace, sinks).map(|()| trace),
                Source::Live { sim, workload } => sim.run_with_sinks(&workload, sinks),
            };
            let trace = match tee.as_mut() {
                Some(t) => emit(&mut [sink, t]),
                None => emit(&mut [sink]),
            }?;
            Ok((trace, tee.map(TextWriterSink::into_string)))
        };
        let ((trace, sealed_text), report, stats) = fuse_characterize(
            produce,
            &opts,
            DEFAULT_BATCH_RECORDS,
            DEFAULT_CHANNEL_BATCHES,
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        eprintln!(
            "fused: {} batches, {} jobs, {} tasks, {} events characterized in-flight",
            stats.batches, stats.jobs, stats.tasks, stats.events
        );
        if as_json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("report serializes")
            );
        } else {
            println!("{report}");
        }
        (trace, sealed_text)
    } else {
        let trace = match source {
            Source::Built(trace) => trace,
            Source::Live { sim, workload } => sim.run(&workload),
        };
        (trace, None)
    };

    if no_trace_out {
        session.finish();
        cgc_obs::flush_observers();
        return;
    }
    let out = out.expect("checked: OUT present without --no-trace-out");
    let bytes_written = if binary {
        write_atomic_with(&out, |w| write_columnar_to(&trace, w)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        std::fs::metadata(&out)
            .map(|m| m.len() as usize)
            .unwrap_or(0)
    } else {
        let text = sealed_text.unwrap_or_else(|| write_trace_sealed(&trace));
        write_atomic(&out, text.as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        text.len()
    };
    eprintln!(
        "wrote {out}: {} jobs, {} tasks, {} events, {} samples, {} bytes ({})",
        trace.jobs.len(),
        trace.tasks.len(),
        trace.events.len(),
        trace
            .host_series
            .iter()
            .map(|s| s.samples.len())
            .sum::<usize>(),
        bytes_written,
        if binary {
            "binary, sealed"
        } else {
            "text, sealed"
        }
    );
    session.finish();
    cgc_obs::flush_observers();
}
