//! Generate a synthetic trace file on disk, crash-safely.
//!
//! ```text
//! gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] [--format text|binary]
//!                 [--workload-only] [--checkpoint-every SECONDS] [--checkpoint PATH]
//!                 [--resume PATH] [--die-after N]
//! ```
//!
//! Runs the google preset (generator + simulator) and writes the trace
//! to `OUT` — the fixture producer for smoke tests that need a real
//! on-disk trace, e.g. the CI job exercising `analyze_trace --stream`.
//! `--format` picks the serialization: `text` (default) writes the
//! sectioned CSV **sealed** with an `#integrity` trailer (record counts
//! and a CRC-32); `binary` writes the columnar container, whose header
//! and sections are each CRC-guarded. Either way the file is written
//! **atomically** (temp file + fsync + rename), so a crash mid-write
//! never leaves a torn file and readers can detect truncation or bit
//! rot. The two formats hold identical records: `analyze_trace` yields
//! byte-identical reports from either.
//!
//! `--workload-only` skips the simulation, so the trace has jobs/tasks/
//! events but no machines or usage samples.
//!
//! # Crash recovery
//!
//! `--checkpoint-every S` snapshots the full simulator state every `S`
//! sim-seconds to `<OUT>.ckpt` (or `--checkpoint PATH`). After a crash,
//! `--resume PATH` continues from the latest checkpoint and produces a
//! byte-identical trace to an uninterrupted run. `--die-after N` aborts
//! the process (exit 70) after the Nth checkpoint write — a deterministic
//! stand-in for `kill -9` that the CI chaos-smoke job uses to prove the
//! interrupt/resume/compare cycle end to end.

use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_sim::{load_checkpoint, CheckpointOptions, FaultConfig, SimConfig, Simulator};
use cgc_trace::columnar::write_columnar_to;
use cgc_trace::io::write_trace_sealed;
use cgc_trace::{write_atomic, write_atomic_with};
use std::path::Path;

const USAGE: &str = "usage: gen_trace <OUT> [--machines N] [--horizon SECONDS] [--seed N] \
     [--format text|binary] [--workload-only] [--checkpoint-every SECONDS] [--checkpoint PATH] \
     [--resume PATH] [--die-after N]";

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s:?}");
        std::process::exit(2);
    })
}

fn main() {
    cgc_obs::init_from_env();
    let mut out: Option<String> = None;
    let mut machines: usize = 40;
    let mut horizon: u64 = 2 * 3_600;
    let mut seed: u64 = 1;
    let mut binary = false;
    let mut workload_only = false;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut die_after: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machines" => machines = parse(&value(&mut args, "--machines"), "--machines"),
            "--horizon" => horizon = parse(&value(&mut args, "--horizon"), "--horizon"),
            "--seed" => seed = parse(&value(&mut args, "--seed"), "--seed"),
            "--format" => match value(&mut args, "--format").as_str() {
                "text" => binary = false,
                "binary" => binary = true,
                other => {
                    eprintln!("invalid value for --format: {other:?} (expected text or binary)");
                    std::process::exit(2);
                }
            },
            "--workload-only" => workload_only = true,
            "--checkpoint-every" => {
                checkpoint_every = Some(parse(
                    &value(&mut args, "--checkpoint-every"),
                    "--checkpoint-every",
                ))
            }
            "--checkpoint" => checkpoint_path = Some(value(&mut args, "--checkpoint")),
            "--resume" => resume_path = Some(value(&mut args, "--resume")),
            "--die-after" => {
                die_after = Some(parse(&value(&mut args, "--die-after"), "--die-after"))
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if out.is_none() => out = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if workload_only && (checkpoint_every.is_some() || resume_path.is_some()) {
        eprintln!("--checkpoint-every/--resume need a simulation; drop --workload-only");
        std::process::exit(2);
    }

    // The hostload scaling keeps the per-machine job pressure of the full
    // trace, so even short fixtures carry enough records to exercise the
    // analyses (plain `scaled` yields almost no jobs at fixture sizes).
    let workload = GoogleWorkload::scaled_for_hostload(machines, horizon).generate(seed);
    let trace = if workload_only {
        workload.into_workload_trace()
    } else {
        let config =
            SimConfig::google(FleetConfig::google(machines)).with_faults(FaultConfig::google());
        let sim = Simulator::new(config);
        if checkpoint_every.is_none() && resume_path.is_none() && die_after.is_none() {
            sim.run(&workload)
        } else {
            let options = checkpoint_every.map(|every| {
                let path = checkpoint_path
                    .clone()
                    .unwrap_or_else(|| format!("{out}.ckpt"));
                CheckpointOptions {
                    path: path.into(),
                    every,
                    retain_all: false,
                    die_after,
                }
            });
            let resume = resume_path.map(|p| {
                load_checkpoint(Path::new(&p)).unwrap_or_else(|e| {
                    eprintln!("cannot resume from {p}: {e}");
                    std::process::exit(1);
                })
            });
            let (trace, _telemetry) = sim
                .run_checkpointed(&workload, None, options.as_ref(), resume.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            trace
        }
    };
    let bytes_written = if binary {
        write_atomic_with(&out, |w| write_columnar_to(&trace, w)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        std::fs::metadata(&out)
            .map(|m| m.len() as usize)
            .unwrap_or(0)
    } else {
        let text = write_trace_sealed(&trace);
        write_atomic(&out, text.as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        text.len()
    };
    eprintln!(
        "wrote {out}: {} jobs, {} tasks, {} events, {} samples, {} bytes ({})",
        trace.jobs.len(),
        trace.tasks.len(),
        trace.events.len(),
        trace
            .host_series
            .iter()
            .map(|s| s.samples.len())
            .sum::<usize>(),
        bytes_written,
        if binary {
            "binary, sealed"
        } else {
            "text, sealed"
        }
    );
    cgc_obs::flush_observers();
}
