//! Characterize a trace file from disk.
//!
//! Accepts the workspace's sectioned-CSV trace format (written by
//! `cgc_trace::io::write_trace`), the binary columnar container
//! (`gen_trace --format binary`), a Parallel Workload Archive SWF log, or
//! the Google clusterdata-2011 tables, and prints the paper's
//! characterization — optionally as JSON. The format is sniffed from the
//! file itself (binary containers start with the `CGCB` magic), no flag
//! needed; binary files are memory-mapped and decoded column-wise
//! without materializing any text, in both the in-memory and `--stream`
//! paths, and yield byte-identical reports to their text equivalents.
//!
//! ```text
//! analyze_trace <FILE> [--swf] [--json] [--system NAME] [--lenient] [--metrics] [--telemetry PATH]
//! analyze_trace <FILE> --stream [--approx] [--json] [--system NAME] [--metrics]
//! analyze_trace --clusterdata <task_events.csv> <task_usage.csv> <machine_events.csv> [--json]
//! ```
//!
//! `--lenient` parses text cgct traces in salvage mode: corrupt lines are
//! skipped and summarized on stderr instead of aborting the run. Binary
//! containers are always read strictly (each section is CRC-guarded, so
//! there is no line-level salvage to do); combining them with `--lenient`
//! is an error.
//! `--stream` characterizes a cgct trace out-of-core: record batches feed
//! the analysis passes directly, so memory stays bounded by the batch size
//! plus the pass accumulators instead of the whole trace. Workload
//! sections are bit-identical to the in-memory path; host-load sections
//! need whole per-machine series and are skipped (a stderr note says so
//! when the trace carries usage samples). `--approx` additionally bounds
//! the accumulators themselves with reservoir sampling — exact
//! counts/extrema/means, approximate medians and curves.
//! `--metrics` enables the observability layer and appends a pipeline
//! metrics snapshot — as a `metrics` key next to `report` under `--json`,
//! as a table on stderr otherwise. `CGC_TRACE=1` additionally streams one
//! compact stderr line per pipeline stage, and `CGC_TRACE_OUT=spans.json`
//! writes the span tree as a Chrome Trace Event file for Perfetto.
//! `--telemetry PATH` replays the trace's event log on a 5-minute
//! sim-time grid and writes the versioned telemetry bundle (queue
//! timelines, queueing-delay histograms, free capacity) to `PATH`
//! atomically; it needs the materialized trace, so it cannot combine with
//! `--stream`. `--max-salvage PCT` bounds lenient salvage: when more than
//! `PCT` percent of non-blank lines were skipped, the run exits 1 instead
//! of quietly characterizing a mostly-corrupt trace (the default keeps
//! the historical behavior of salvaging without limit).
//! The live-observability flags are shared with the other binaries:
//! `--heartbeat PATH|-` streams `cgc-heartbeat/v1` JSONL progress,
//! `--prom-out PATH` writes a Prometheus exposition on success (with the
//! sim-time histogram families when `--telemetry` also ran), and
//! `--flight-recorder PATH` arms a `cgc-flightrec/v1` crash dump. None
//! of them changes the report by a byte.
//!
//! This is the adoption path for real data: download an SWF log from the
//! PWA, point this tool at it, and compare the resulting statistics to the
//! paper's (and to this repository's generated systems).

use cgc_bench::cli::{
    map_trace_sniffed, parse_arg, reject_if, require_value, ObsArgs, SniffedFormat,
};
use cgc_core::{characterize, CharacterizationReport};
use cgc_obs::MetricsSnapshot;
use cgc_trace::swf::{read_swf_trace, SwfImportOptions};
use serde::Serialize;

/// `--json --metrics` output: the report plus the metrics snapshot.
#[derive(Serialize)]
struct ReportWithMetrics {
    report: CharacterizationReport,
    metrics: MetricsSnapshot,
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

const USAGE: &str = "usage: analyze_trace <FILE> [--swf] [--json] [--system NAME] [--lenient] [--max-salvage PCT] [--metrics] [--telemetry PATH]\n       analyze_trace <FILE> --stream [--approx] [--json] [--system NAME] [--metrics]\n       (all modes also take --heartbeat PATH|-, --heartbeat-interval SECONDS, --prom-out PATH, --flight-recorder PATH)";

/// Sim-time grid for `--telemetry` replays, seconds — the paper's
/// 5-minute usage-sampling period.
const TELEMETRY_INTERVAL: u64 = 300;

fn main() {
    cgc_obs::init_from_env();

    let mut path: Option<String> = None;
    let mut as_swf = false;
    let mut as_json = false;
    let mut lenient = false;
    let mut max_salvage: Option<f64> = None;
    let mut with_metrics = false;
    let mut streaming = false;
    let mut approx = false;
    let mut telemetry: Option<String> = None;
    let mut system: Option<String> = None;
    let mut clusterdata: Option<(String, String, String)> = None;
    let mut obs = ObsArgs::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--swf" => as_swf = true,
            "--stream" => streaming = true,
            "--approx" => approx = true,
            "--clusterdata" => {
                let mut next = || {
                    args.next().unwrap_or_else(|| {
                        eprintln!(
                            "--clusterdata requires three paths: task_events task_usage machine_events"
                        );
                        std::process::exit(2);
                    })
                };
                clusterdata = Some((next(), next(), next()));
            }
            "--json" => as_json = true,
            "--lenient" => lenient = true,
            "--max-salvage" => {
                let pct: f64 =
                    parse_arg(&require_value(&mut args, "--max-salvage"), "--max-salvage");
                if !(0.0..=100.0).contains(&pct) {
                    eprintln!("--max-salvage must be between 0 and 100, got {pct}");
                    std::process::exit(2);
                }
                max_salvage = Some(pct);
            }
            "--metrics" => with_metrics = true,
            "--telemetry" => telemetry = Some(require_value(&mut args, "--telemetry")),
            "--system" => system = Some(require_value(&mut args, "--system")),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if obs.accept(other, &mut args) => {}
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    if with_metrics {
        cgc_obs::set_enabled(true);
        cgc_obs::metrics().reset();
    }

    reject_if(approx && !streaming, "--approx requires --stream");
    reject_if(
        max_salvage.is_some() && !lenient,
        "--max-salvage bounds lenient salvage; it requires --lenient",
    );
    reject_if(
        telemetry.is_some() && streaming,
        "--telemetry replays the materialized event log; it cannot combine with --stream",
    );
    obs.validate();
    let session = obs.start();
    if streaming {
        reject_if(
            as_swf || lenient || clusterdata.is_some(),
            "--stream reads strict cgct traces only; it cannot combine with --swf, --lenient, or --clusterdata",
        );
        let Some(path) = path else {
            eprintln!("{USAGE}");
            std::process::exit(2);
        };
        let (mapped, format) = map_trace_sniffed(&path);
        let opts = cgc_core::StreamOptions {
            approx,
            ..Default::default()
        };
        let (mut report, stats) = match format {
            SniffedFormat::Binary => cgc_core::characterize_stream_columnar(&mapped, &opts)
                .unwrap_or_else(|e| {
                    eprintln!("trace parse error at byte {}: {}", e.line, e.message);
                    std::process::exit(1);
                }),
            SniffedFormat::Text => cgc_core::characterize_stream(&mapped[..], &opts)
                .unwrap_or_else(|e| {
                    eprintln!("trace parse error: {e}");
                    eprintln!("hint: --stream parses strictly; run without it to use --lenient");
                    std::process::exit(1);
                }),
        };
        if let Some(name) = system {
            report.system = name;
        }
        if stats.samples > 0 {
            eprintln!(
                "note: trace carries {} usage samples; host-load sections are skipped in \
                 --stream mode (run without --stream for the full report)",
                stats.samples
            );
        }
        eprintln!(
            "stream: {} batches, {} jobs, {} tasks, {} events, {} bytes read, \
             peak accumulators {} bytes{}",
            stats.batches,
            stats.jobs,
            stats.tasks,
            stats.events,
            stats.bytes_read,
            stats.peak_accumulator_bytes,
            if stats.approx { " (approx)" } else { "" }
        );
        emit(report, as_json, with_metrics);
        session.finish();
        cgc_obs::flush_observers();
        return;
    }

    let trace = if let Some((events, usage, machines)) = clusterdata {
        if lenient {
            eprintln!("note: --lenient only applies to cgct traces; clusterdata import has its own salvage rules");
        }
        let (trace, stats) = cgc_trace::clusterdata::import_clusterdata(
            &read(&events),
            &read(&usage),
            &read(&machines),
            system.as_deref().unwrap_or("clusterdata"),
        )
        .unwrap_or_else(|e| {
            eprintln!("clusterdata import error: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "imported: {} events applied, {} submits synthesized, {} dropped, {} usage rows",
            stats.events_applied, stats.submits_synthesized, stats.events_dropped, stats.usage_rows
        );
        trace
    } else {
        let Some(path) = path else {
            eprintln!("{USAGE}");
            eprintln!("       analyze_trace --clusterdata <events> <usage> <machines> [--json]");
            std::process::exit(2);
        };
        let (mapped, format) = map_trace_sniffed(&path);
        if format == SniffedFormat::Binary {
            reject_if(as_swf, "--swf cannot apply to a binary columnar container");
            reject_if(
                lenient,
                "--lenient applies to text traces only; binary containers are CRC-verified \
                 per section and always read strictly",
            );
            let mut trace = cgc_trace::read_trace_columnar_parallel(&mapped).unwrap_or_else(|e| {
                eprintln!("trace parse error at byte {}: {}", e.line, e.message);
                std::process::exit(1);
            });
            if let Some(name) = system {
                trace.system = name;
            }
            trace
        } else {
            let text = std::str::from_utf8(&mapped)
                .unwrap_or_else(|e| {
                    eprintln!(
                        "cannot read {path}: not a binary container and not UTF-8 text ({e})"
                    );
                    std::process::exit(1);
                })
                .to_string();
            // Detect SWF by flag or by content (SWF has no '#trace' preamble).
            let swf_like = as_swf || !text.lines().any(|l| l.starts_with("#trace"));
            if swf_like {
                if lenient {
                    eprintln!("note: --lenient only applies to cgct traces; parsing SWF strictly");
                }
                let options = SwfImportOptions {
                    system: system.unwrap_or_else(|| "swf".into()),
                    ..SwfImportOptions::default()
                };
                read_swf_trace(&text, &options).unwrap_or_else(|e| {
                    eprintln!("SWF parse error: {e}");
                    std::process::exit(1);
                })
            } else {
                let mut trace = if lenient {
                    let parsed = cgc_trace::io::read_trace_lenient(&text);
                    let diagnostics = parsed.diagnostics(&path);
                    if let Some(summary) = diagnostics.summary() {
                        eprintln!("{summary}");
                        if with_metrics {
                            eprint!("{}", diagnostics.render_table());
                        }
                    }
                    if let Some(limit) = max_salvage {
                        let pct = parsed.salvage_percent();
                        if pct > limit {
                            eprintln!(
                                "salvage rate {pct:.2}% exceeds --max-salvage {limit}% \
                             ({} of {} lines skipped); refusing to characterize",
                                parsed.warnings.len(),
                                parsed.lines_seen
                            );
                            std::process::exit(1);
                        }
                    }
                    parsed.trace
                } else {
                    cgc_trace::io::read_trace_parallel(&text).unwrap_or_else(|e| {
                        eprintln!("trace parse error: {e}");
                        eprintln!("hint: re-run with --lenient to skip corrupt lines");
                        std::process::exit(1);
                    })
                };
                if let Some(name) = system {
                    trace.system = name;
                }
                trace
            }
        }
    };

    // Kept past the write: the prom exposition renders its sim-time
    // histogram families from the same replay bundle.
    let replay_bundle = telemetry.map(|path| {
        let bundle = cgc_core::telemetry_from_trace(&trace, TELEMETRY_INTERVAL);
        let json = serde_json::to_string_pretty(&bundle).expect("telemetry serializes");
        cgc_trace::write_atomic(&path, json.as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote telemetry ({} ticks at {}s, {} first placements) to {path}",
            bundle.timeline.len(),
            bundle.interval,
            bundle.queue_delay.iter().map(|h| h.count()).sum::<u64>()
        );
        bundle
    });

    let report = characterize(&trace);
    emit(report, as_json, with_metrics);
    session.finish_with(replay_bundle.as_ref());
    cgc_obs::flush_observers();
}

/// Prints the report — shared by the in-memory and streaming paths.
fn emit(report: CharacterizationReport, as_json: bool, with_metrics: bool) {
    if as_json {
        if with_metrics {
            let bundle = ReportWithMetrics {
                report,
                metrics: cgc_obs::metrics().snapshot(),
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&bundle).expect("bundle serializes")
            );
        } else {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("report serializes")
            );
        }
    } else {
        println!("{report}");
        if with_metrics {
            eprint!("{}", cgc_obs::metrics().snapshot().render_table());
        }
    }
}
