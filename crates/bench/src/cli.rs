//! Shared command-line plumbing for the workspace binaries.
//!
//! `gen_trace`, `analyze_trace`, and `cgc-bench` each grew a private copy
//! of flag-value parsing and trace-format sniffing; this module is the
//! single home. Exit code 2 means "bad invocation" (missing or invalid
//! flags, incompatible combinations), exit 1 a runtime failure — the
//! convention every binary already follows.

use cgc_obs::{HeartbeatHandle, HeartbeatOptions, TelemetryBundle};
use cgc_trace::{is_columnar, map_trace, MappedTrace};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// Parses `s` as `flag`'s value, exiting 2 with the uniform
/// `invalid value for --flag` message on failure.
pub fn parse_arg<T: FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s:?}");
        std::process::exit(2);
    })
}

/// Pulls the next argument as `flag`'s value, exiting 2 if the command
/// line ends first.
pub fn require_value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

/// [`require_value`] followed by [`parse_arg`] — the shape of almost
/// every numeric flag in the binaries.
pub fn parse_value<T: FromStr>(args: &mut dyn Iterator<Item = String>, flag: &str) -> T {
    parse_arg(&require_value(args, flag), flag)
}

/// Exits 2 with `message` when `forbidden` holds — the shared shape of
/// the binaries' incompatible-flag checks. Keeping the check sites as
/// one-liners makes the full combination table easy to audit.
pub fn reject_if(forbidden: bool, message: &str) {
    if forbidden {
        eprintln!("{message}");
        std::process::exit(2);
    }
}

/// On-disk trace serialization, sniffed from the file's leading bytes
/// (binary containers start with the `CGCB` magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SniffedFormat {
    /// Sectioned-CSV text trace.
    Text,
    /// Binary columnar container.
    Binary,
}

/// Maps (or reads) `path` and sniffs its serialization. Exits 1 on I/O
/// failure — a runtime error, not a usage one.
pub fn map_trace_sniffed(path: &str) -> (MappedTrace, SniffedFormat) {
    let mapped = map_trace(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let format = if is_columnar(&mapped) {
        SniffedFormat::Binary
    } else {
        SniffedFormat::Text
    };
    (mapped, format)
}

/// The live-observability flags every binary accepts identically:
/// `--heartbeat <path|->` (`-` = stderr), `--heartbeat-interval <secs>`,
/// `--prom-out <path>`, `--flight-recorder <path>`. Fold into an arg
/// loop with [`accept`](ObsArgs::accept), check combinations with
/// [`validate`](ObsArgs::validate), then [`start`](ObsArgs::start) the
/// surfaces once the run is configured.
#[derive(Debug, Default)]
pub struct ObsArgs {
    /// Heartbeat destination: `Some("-")` = stderr, `Some(path)` = file.
    pub heartbeat: Option<String>,
    /// Sampling interval override, seconds.
    pub heartbeat_interval: Option<f64>,
    /// Prometheus exposition file, written when the run completes.
    pub prom_out: Option<String>,
    /// Flight-recorder dump target, armed for the whole run.
    pub flight_recorder: Option<String>,
}

impl ObsArgs {
    /// Consumes `arg` if it is one of the observability flags (pulling
    /// values from `args`); returns whether it did. Call from the
    /// binary's match-on-arg loop before any positional fallback.
    pub fn accept(&mut self, arg: &str, args: &mut dyn Iterator<Item = String>) -> bool {
        match arg {
            "--heartbeat" => self.heartbeat = Some(require_value(args, "--heartbeat")),
            "--heartbeat-interval" => {
                self.heartbeat_interval = Some(parse_value(args, "--heartbeat-interval"))
            }
            "--prom-out" => self.prom_out = Some(require_value(args, "--prom-out")),
            "--flight-recorder" => {
                self.flight_recorder = Some(require_value(args, "--flight-recorder"))
            }
            _ => return false,
        }
        true
    }

    /// Rejects (exit 2) incompatible combinations: an interval without a
    /// heartbeat, or a non-positive interval.
    pub fn validate(&self) {
        reject_if(
            self.heartbeat_interval.is_some() && self.heartbeat.is_none(),
            "--heartbeat-interval requires --heartbeat",
        );
        if let Some(secs) = self.heartbeat_interval {
            reject_if(
                secs <= 0.0 || !secs.is_finite(),
                "--heartbeat-interval must be a positive number of seconds",
            );
        }
    }

    /// Whether any observability surface was requested.
    pub fn any(&self) -> bool {
        self.heartbeat.is_some() || self.prom_out.is_some() || self.flight_recorder.is_some()
    }

    /// Arms the requested surfaces: installs the flight recorder,
    /// starts the heartbeat sampler. Exits 1 when the heartbeat file
    /// cannot be created. Call after flag validation, before the run;
    /// hold the returned session and [`finish`](ObsSession::finish) it
    /// on every success path.
    pub fn start(&self) -> ObsSession {
        if let Some(path) = &self.flight_recorder {
            cgc_obs::install_flight_recorder(std::path::Path::new(path));
        }
        let heartbeat = self.heartbeat.as_deref().map(|dest| {
            let opts = HeartbeatOptions {
                path: (dest != "-").then(|| PathBuf::from(dest)),
                interval: self
                    .heartbeat_interval
                    .map_or(cgc_obs::DEFAULT_HEARTBEAT_INTERVAL, Duration::from_secs_f64),
            };
            cgc_obs::start_heartbeat(opts).unwrap_or_else(|e| {
                eprintln!("cannot start heartbeat at {dest}: {e}");
                std::process::exit(1);
            })
        });
        ObsSession {
            heartbeat,
            prom_out: self.prom_out.clone(),
        }
    }
}

/// Live surfaces of one run. [`finish`](ObsSession::finish) stops the
/// heartbeat (emitting its final record) and writes the Prometheus
/// exposition; a crash before that leaves the flight recorder to tell
/// the story instead.
pub struct ObsSession {
    heartbeat: Option<HeartbeatHandle>,
    prom_out: Option<String>,
}

impl ObsSession {
    /// [`finish_with`](ObsSession::finish_with) without telemetry: the
    /// prom file carries the counter and stage-duration families only.
    pub fn finish(self) {
        self.finish_with(None);
    }

    /// Stops the heartbeat and writes the Prometheus exposition from the
    /// current metrics snapshot (plus the sim-time histograms when the
    /// caller computed a telemetry bundle). Exits 1 if the prom file
    /// cannot be written.
    pub fn finish_with(self, telemetry: Option<&TelemetryBundle>) {
        if let Some(hb) = self.heartbeat {
            hb.stop();
        }
        if let Some(path) = &self.prom_out {
            let text = cgc_obs::render_prometheus(&cgc_obs::metrics().snapshot(), telemetry);
            cgc_trace::write_atomic(std::path::Path::new(path), text.as_bytes()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_arg_round_trips_numbers() {
        assert_eq!(parse_arg::<u64>("42", "--seed"), 42);
        assert_eq!(parse_arg::<f64>("0.5", "--ratio"), 0.5);
    }

    #[test]
    fn require_value_takes_the_next_argument() {
        let mut args = ["12".to_string(), "rest".to_string()].into_iter();
        assert_eq!(require_value(&mut args, "--machines"), "12");
        assert_eq!(args.next().as_deref(), Some("rest"));
    }

    #[test]
    fn reject_if_is_a_no_op_when_allowed() {
        reject_if(false, "unused");
    }
}
