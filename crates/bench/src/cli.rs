//! Shared command-line plumbing for the workspace binaries.
//!
//! `gen_trace`, `analyze_trace`, and `cgc-bench` each grew a private copy
//! of flag-value parsing and trace-format sniffing; this module is the
//! single home. Exit code 2 means "bad invocation" (missing or invalid
//! flags, incompatible combinations), exit 1 a runtime failure — the
//! convention every binary already follows.

use cgc_trace::{is_columnar, map_trace, MappedTrace};
use std::str::FromStr;

/// Parses `s` as `flag`'s value, exiting 2 with the uniform
/// `invalid value for --flag` message on failure.
pub fn parse_arg<T: FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s:?}");
        std::process::exit(2);
    })
}

/// Pulls the next argument as `flag`'s value, exiting 2 if the command
/// line ends first.
pub fn require_value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

/// [`require_value`] followed by [`parse_arg`] — the shape of almost
/// every numeric flag in the binaries.
pub fn parse_value<T: FromStr>(args: &mut dyn Iterator<Item = String>, flag: &str) -> T {
    parse_arg(&require_value(args, flag), flag)
}

/// Exits 2 with `message` when `forbidden` holds — the shared shape of
/// the binaries' incompatible-flag checks. Keeping the check sites as
/// one-liners makes the full combination table easy to audit.
pub fn reject_if(forbidden: bool, message: &str) {
    if forbidden {
        eprintln!("{message}");
        std::process::exit(2);
    }
}

/// On-disk trace serialization, sniffed from the file's leading bytes
/// (binary containers start with the `CGCB` magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SniffedFormat {
    /// Sectioned-CSV text trace.
    Text,
    /// Binary columnar container.
    Binary,
}

/// Maps (or reads) `path` and sniffs its serialization. Exits 1 on I/O
/// failure — a runtime error, not a usage one.
pub fn map_trace_sniffed(path: &str) -> (MappedTrace, SniffedFormat) {
    let mapped = map_trace(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let format = if is_columnar(&mapped) {
        SniffedFormat::Binary
    } else {
        SniffedFormat::Text
    };
    (mapped, format)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_arg_round_trips_numbers() {
        assert_eq!(parse_arg::<u64>("42", "--seed"), 42);
        assert_eq!(parse_arg::<f64>("0.5", "--ratio"), 0.5);
    }

    #[test]
    fn require_value_takes_the_next_argument() {
        let mut args = ["12".to_string(), "rest".to_string()].into_iter();
        assert_eq!(require_value(&mut args, "--machines"), "12");
        assert_eq!(args.next().as_deref(), Some("rest"));
    }

    #[test]
    fn reject_if_is_a_no_op_when_allowed() {
        reject_if(false, "unused");
    }
}
