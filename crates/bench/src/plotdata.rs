//! Plot-data export: gnuplot-ready `.dat` series and `.gp` scripts for
//! every curve-style figure of the paper.
//!
//! `run_experiments --plots DIR` writes one data file per figure (columns
//! documented in the header line) plus a `figures.gp` script that renders
//! PNGs with stock gnuplot. The experiments print summary statistics; this
//! module exports the full curves behind them.

use crate::lab::Lab;
use cgc_core::hostload::relative_usage_series;
use cgc_core::workload::{job_cpu_usage, job_length_analysis, job_memory_mb, submission_analysis};
use cgc_gen::GridSystem;
use cgc_stats::MassCount;
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{MachineId, Trace};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Systems plotted in the multi-system figures, in legend order.
fn fig_systems(lab: &Lab) -> Vec<std::sync::Arc<Trace>> {
    let mut traces = vec![lab.google_workload()];
    for sys in GridSystem::TABLE1 {
        traces.push(lab.grid_workload(sys));
    }
    traces
}

fn write_file(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    cgc_trace::write_atomic(dir.join(name), content.as_bytes())
}

/// Fig. 3: job-length CDF per system. Columns: length_s, then one CDF
/// column per system.
fn fig3_dat(lab: &Lab) -> String {
    let traces = fig_systems(lab);
    let analyses: Vec<_> = traces
        .iter()
        .filter_map(|t| job_length_analysis(t))
        .collect();
    let mut out = String::from("# length_s");
    for a in &analyses {
        let _ = write!(out, " {}", a.system);
    }
    out.push('\n');
    for i in 0..analyses[0].cdf_curve.len() {
        let _ = write!(out, "{}", analyses[0].cdf_curve[i].0);
        for a in &analyses {
            let _ = write!(out, " {:.5}", a.cdf_curve[i].1);
        }
        out.push('\n');
    }
    out
}

/// Fig. 5: submission-interval CDF per system.
fn fig5_dat(lab: &Lab) -> String {
    let traces = fig_systems(lab);
    let analyses: Vec<_> = traces
        .iter()
        .filter_map(|t| submission_analysis(t))
        .collect();
    let mut out = String::from("# interval_s");
    for a in &analyses {
        let _ = write!(out, " {}", a.system);
    }
    out.push('\n');
    for i in 0..analyses[0].interval_cdf.len() {
        let _ = write!(out, "{}", analyses[0].interval_cdf[i].0);
        for a in &analyses {
            let _ = write!(out, " {:.5}", a.interval_cdf[i].1);
        }
        out.push('\n');
    }
    out
}

/// Fig. 4: mass-count staircases. Columns: days, count CDF, mass CDF.
fn fig4_dat(trace: &Trace) -> String {
    let view = cgc_core::TraceView::new(trace);
    let mc = MassCount::from_durations(view.task_execution_times()).expect("tasks ran");
    let mut out = String::from("# days count_cdf mass_cdf\n");
    let day = cgc_trace::DAY as f64;
    for (x, fc, fm) in cgc_stats::decimate(mc.curves(), 512) {
        let _ = writeln!(out, "{:.6} {fc:.5} {fm:.5}", x / day);
    }
    out
}

/// Fig. 6a/6b: per-job CPU and memory usage CDFs for selected systems.
fn fig6_dat(lab: &Lab) -> (String, String) {
    let google = lab.google_workload();
    let auver = lab.grid_workload(GridSystem::AuverGrid);
    let das2 = lab.grid_workload(GridSystem::Das2);

    let mut cpu = String::from("# processors google auvergrid das2\n");
    let curves: Vec<_> = [&google, &auver, &das2]
        .iter()
        .map(|t| {
            job_cpu_usage(t)
                .expect("jobs finished")
                .curve(0.0, 5.0, 101)
        })
        .collect();
    for ((&(x, g), &(_, a)), &(_, d)) in curves[0].iter().zip(&curves[1]).zip(&curves[2]) {
        let _ = writeln!(cpu, "{x:.3} {g:.5} {a:.5} {d:.5}");
    }

    let mut mem = String::from("# mem_mb google32 google64 auvergrid\n");
    let m32 = job_memory_mb(&google, 32.0)
        .expect("jobs")
        .curve(0.0, 1_000.0, 101);
    let m64 = job_memory_mb(&google, 64.0)
        .expect("jobs")
        .curve(0.0, 1_000.0, 101);
    let ma = job_memory_mb(&auver, 64.0)
        .expect("jobs")
        .curve(0.0, 1_000.0, 101);
    for i in 0..m32.len() {
        let _ = writeln!(
            mem,
            "{:.1} {:.5} {:.5} {:.5}",
            m32[i].0, m32[i].1, m64[i].1, ma[i].1
        );
    }
    (cpu, mem)
}

/// Fig. 13: one machine's relative CPU/memory series per system.
/// Columns: day, cpu, mem.
fn fig13_dat(trace: &Trace) -> String {
    let machine = MachineId(0);
    let mut out = String::from("# day cpu mem\n");
    if let (Some((cpu, mem)), Some(series)) = (
        relative_usage_series(trace, machine),
        trace.series_for(machine),
    ) {
        for (i, (c, m)) in cpu.iter().zip(&mem).enumerate() {
            let t = series.time_of(i) as f64 / cgc_trace::DAY as f64;
            let _ = writeln!(out, "{t:.5} {c:.5} {m:.5}");
        }
    }
    out
}

/// Gnuplot script rendering every exported data file.
fn gnuplot_script() -> String {
    r#"# gnuplot figures.gp  (run inside the plots directory)
set terminal pngcairo size 900,600
set key bottom right

set output 'fig3.png'
set title 'Fig. 3 - CDF of job length'
set xlabel 'Job length (s)'; set ylabel 'CDF'; set yrange [0:1]
plot for [i=2:9] 'fig3.dat' using 1:i with lines title columnheader(i)

set output 'fig4_google.png'
set title 'Fig. 4a - mass-count of task length (google)'
set xlabel 'Task execution time (days)'; set ylabel 'CDF'
plot 'fig4_google.dat' using 1:2 with lines title 'count', \
     'fig4_google.dat' using 1:3 with lines title 'mass'

set output 'fig4_auvergrid.png'
set title 'Fig. 4b - mass-count of task length (auvergrid)'
plot 'fig4_auvergrid.dat' using 1:2 with lines title 'count', \
     'fig4_auvergrid.dat' using 1:3 with lines title 'mass'

set output 'fig5.png'
set title 'Fig. 5 - CDF of submission interval'
set xlabel 'Interval (s)'; set ylabel 'CDF'
plot for [i=2:9] 'fig5.dat' using 1:i with lines title columnheader(i)

set output 'fig6a.png'
set title 'Fig. 6a - per-job CPU usage'
set xlabel 'CPU utilization (processors)'; set ylabel 'CDF'
plot 'fig6a.dat' using 1:2 with lines title 'google', \
     'fig6a.dat' using 1:3 with lines title 'auvergrid', \
     'fig6a.dat' using 1:4 with lines title 'das-2'

set output 'fig6b.png'
set title 'Fig. 6b - per-job memory usage'
set xlabel 'Memory (MB)'; set ylabel 'CDF'
plot 'fig6b.dat' using 1:2 with lines title 'google@32GB', \
     'fig6b.dat' using 1:3 with lines title 'google@64GB', \
     'fig6b.dat' using 1:4 with lines title 'auvergrid'

set output 'fig13_google.png'
set title 'Fig. 13 - host load (google, machine 0)'
set xlabel 'Time (day)'; set ylabel 'Relative usage'; set yrange [0:1]
plot 'fig13_google.dat' using 1:2 with lines title 'cpu', \
     'fig13_google.dat' using 1:3 with lines title 'mem'

set output 'fig13_auvergrid.png'
set title 'Fig. 13 - host load (auvergrid, machine 0)'
plot 'fig13_auvergrid.dat' using 1:2 with lines title 'cpu', \
     'fig13_auvergrid.dat' using 1:3 with lines title 'mem'
"#
    .to_string()
}

/// Writes every figure's data files plus `figures.gp` into `dir`.
pub fn export_plots(lab: &Lab, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    // Column headers for gnuplot's columnheader(): first row without '#'.
    let strip_hash = |s: String| s.replacen("# ", "", 1);
    write_file(dir, "fig3.dat", &strip_hash(fig3_dat(lab)))?;
    write_file(dir, "fig5.dat", &strip_hash(fig5_dat(lab)))?;
    write_file(dir, "fig4_google.dat", &fig4_dat(&lab.google_workload()))?;
    write_file(
        dir,
        "fig4_auvergrid.dat",
        &fig4_dat(&lab.grid_workload(GridSystem::AuverGrid)),
    )?;
    let (cpu, mem) = fig6_dat(lab);
    write_file(dir, "fig6a.dat", &cpu)?;
    write_file(dir, "fig6b.dat", &mem)?;
    write_file(dir, "fig13_google.dat", &fig13_dat(&lab.google_sim()))?;
    write_file(
        dir,
        "fig13_auvergrid.dat",
        &fig13_dat(&lab.grid_sim(GridSystem::AuverGrid)),
    )?;
    // Fig. 7 histograms: one block per attribute/class.
    let trace = lab.google_sim();
    let mut fig7 = String::from("# attribute capacity center fraction\n");
    for attr in UsageAttribute::ALL {
        let d = cgc_core::hostload::max_load_distribution(&trace, attr, 25);
        for class in &d.classes {
            if class.machines == 0 {
                continue;
            }
            for (center, frac) in class.histogram.points() {
                let _ = writeln!(
                    fig7,
                    "{} {} {center:.4} {frac:.5}",
                    attr.name(),
                    class.capacity
                );
            }
            fig7.push('\n');
        }
    }
    write_file(dir, "fig7.dat", &fig7)?;
    write_file(dir, "figures.gp", &gnuplot_script())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::Scale;

    #[test]
    fn dat_files_have_consistent_columns() {
        let lab = Lab::new(Scale::Quick);
        // Workload-only data files are cheap enough for a unit test.
        let dat = fig3_dat(&lab);
        let mut lines = dat.lines();
        // Header: '#', 'length_s', and 8 system names.
        let header_cols = lines.next().unwrap().split_whitespace().count();
        assert_eq!(header_cols, 10);
        for line in lines.take(5) {
            assert_eq!(line.split_whitespace().count(), 9);
        }
    }

    #[test]
    fn fig4_dat_monotone() {
        let lab = Lab::new(Scale::Quick);
        let dat = fig4_dat(&lab.google_workload());
        let mut prev = (0.0, 0.0);
        for line in dat.lines().skip(1) {
            let cols: Vec<f64> = line
                .split_whitespace()
                .map(|c| c.parse().unwrap())
                .collect();
            assert!(cols[1] >= prev.0 && cols[2] >= prev.1);
            prev = (cols[1], cols[2]);
        }
    }

    #[test]
    fn gnuplot_script_mentions_every_dat() {
        let gp = gnuplot_script();
        for name in [
            "fig3.dat",
            "fig4_google.dat",
            "fig5.dat",
            "fig6a.dat",
            "fig13_google.dat",
        ] {
            assert!(gp.contains(name), "{name} missing from script");
        }
    }
}
