//! Fused sim→characterize driver: run a record producer and the
//! streaming characterizer concurrently over a bounded in-memory
//! channel, skipping the serialize→write→read→parse roundtrip.
//!
//! ```text
//! producer thread                      calling thread
//! ───────────────                      ──────────────
//! produce(&mut BatchChannelSink) ──►   characterize_batches(SimBatches)
//!         (emit_trace, usually)  sync_channel         │
//!                                                     ▼
//!                                  (CharacterizationReport, StreamStats)
//! ```
//!
//! The producer emits records in the same canonical order the text and
//! columnar writers serialize, so the fused report is byte-identical to
//! characterizing a written-then-reread trace. The channel is bounded:
//! when the characterizer falls behind, the producer blocks, keeping
//! peak memory at `capacity` batches plus the pass accumulators.
//!
//! # Failure model
//!
//! Either side failing tears the pipeline down without deadlock. A
//! producer error drops its sink, the characterizer's receive fails, and
//! the producer's error is reported as the root cause
//! ([`FusedError::Sink`]). A consumer-side parse error (impossible today
//! — the channel carries structured batches — but the seam is typed)
//! drops the receiver, the producer's next send fails with
//! [`SinkError::Closed`], and the consumer's error wins
//! ([`FusedError::Stream`]).

use cgc_core::{characterize_batches, CharacterizationReport, StreamOptions, StreamStats};
use cgc_trace::{sim_batch_channel, BatchChannelSink, ParseError, SinkError};
use std::fmt;

/// Why a fused pipeline run failed: on the emission side or in the
/// characterizer. Producer errors take precedence — when the producer
/// dies the consumer *also* errors (stream closed before finish), and
/// reporting that secondary symptom would bury the cause.
#[derive(Debug)]
pub enum FusedError {
    /// The record producer failed (an I/O error on a tee'd file sink, or
    /// the characterizer hung up early).
    Sink(SinkError),
    /// The characterizer rejected the stream.
    Stream(ParseError),
}

impl fmt::Display for FusedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusedError::Sink(e) => write!(f, "fused pipeline producer failed: {e}"),
            FusedError::Stream(e) => write!(f, "fused pipeline characterizer failed: {e}"),
        }
    }
}

impl std::error::Error for FusedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FusedError::Sink(e) => Some(e),
            FusedError::Stream(e) => Some(e),
        }
    }
}

/// Runs `produce` on a scoped thread feeding a bounded channel while the
/// calling thread characterizes the batches as they arrive. Returns the
/// producer's value together with the streaming report and stats.
///
/// `produce` receives the channel's [`BatchChannelSink`]; the usual body
/// is `cgc_trace::emit_trace(&trace, &mut [sink])` — optionally fanned
/// out with a [`TextWriterSink`](cgc_trace::TextWriterSink) to also keep
/// a serialized copy. `batch_records` is the channel's batch size and
/// `capacity` its depth in batches ([`cgc_trace::DEFAULT_BATCH_RECORDS`]
/// and [`cgc_trace::DEFAULT_CHANNEL_BATCHES`] are the conventional
/// defaults). The whole run is recorded under the
/// `characterize/fused` observability stage; the nested emit and stream
/// stages time the two halves.
///
/// A panic on the producer thread is resumed on the calling thread.
pub fn fuse_characterize<T, F>(
    produce: F,
    opts: &StreamOptions,
    batch_records: usize,
    capacity: usize,
) -> Result<(T, CharacterizationReport, StreamStats), FusedError>
where
    T: Send,
    F: FnOnce(&mut BatchChannelSink) -> Result<T, SinkError> + Send,
{
    let _span = cgc_obs::span(cgc_obs::stages::FUSED);
    let (mut sink, batches) = sim_batch_channel(batch_records, capacity);
    std::thread::scope(|scope| {
        // The sink moves into the producer thread and drops when the
        // closure returns — on error that closes the channel, so the
        // consumer below always unblocks.
        let producer = scope.spawn(move || produce(&mut sink));
        let consumed = characterize_batches(batches, opts);
        let produced = match producer.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        match (produced, consumed) {
            (Err(e), _) => Err(FusedError::Sink(e)),
            (_, Err(e)) => Err(FusedError::Stream(e)),
            (Ok(value), Ok((report, stats))) => Ok((value, report, stats)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::{
        emit_trace, Demand, Priority, RecordSink, TaskEvent, TaskEventKind, TraceBuilder, UserId,
        DEFAULT_BATCH_RECORDS, DEFAULT_CHANNEL_BATCHES,
    };

    fn sample_trace() -> cgc_trace::Trace {
        let mut b = TraceBuilder::new("fused-test", 7_200);
        let m = b.add_machine(0.5, 0.5, 1.0);
        for ji in 0..20u64 {
            let j = b.add_job(UserId((ji % 4) as u32), Priority::from_level(4), ji * 30);
            let t = b.add_task(j, Demand::new(0.02, 0.01));
            b.push_event(TaskEvent {
                time: ji * 30,
                task: t,
                kind: TaskEventKind::Submit,
                machine: None,
            });
            b.push_event(TaskEvent {
                time: ji * 30 + 5,
                task: t,
                kind: TaskEventKind::Schedule,
                machine: Some(m),
            });
            b.push_event(TaskEvent {
                time: ji * 30 + 65,
                task: t,
                kind: TaskEventKind::Finish,
                machine: Some(m),
            });
        }
        b.build().expect("sample trace builds")
    }

    #[test]
    fn fused_report_matches_the_text_roundtrip() {
        let trace = sample_trace();
        let opts = StreamOptions::default();
        let ((), fused, _) = fuse_characterize(
            |sink| emit_trace(&trace, &mut [sink]),
            &opts,
            DEFAULT_BATCH_RECORDS,
            DEFAULT_CHANNEL_BATCHES,
        )
        .expect("fused run succeeds");
        let text = cgc_trace::write_trace(&trace);
        let (roundtrip, _) =
            cgc_core::characterize_stream(text.as_bytes(), &opts).expect("roundtrip succeeds");
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&roundtrip).unwrap(),
            "fused and write→read→characterize reports must be byte-identical"
        );
    }

    #[test]
    fn producer_error_is_the_root_cause() {
        let trace = sample_trace();
        let err = fuse_characterize(
            |sink| {
                // Fail partway through the emission protocol: the sink
                // drops without `finish`, and the consumer's secondary
                // "closed before finish" error must not mask this one.
                sink.begin(&trace.system, trace.horizon)?;
                sink.machines(&trace.machines)?;
                Err::<(), _>(SinkError::Io(std::io::Error::other("disk full")))
            },
            &StreamOptions::default(),
            DEFAULT_BATCH_RECORDS,
            DEFAULT_CHANNEL_BATCHES,
        )
        .expect_err("producer failure surfaces");
        match err {
            FusedError::Sink(SinkError::Io(e)) => assert_eq!(e.to_string(), "disk full"),
            other => panic!("expected the producer's Io error, got {other:?}"),
        }
    }

    #[test]
    fn producer_value_rides_along() {
        let trace = sample_trace();
        let opts = StreamOptions::default();
        let (text, fused, stats) = fuse_characterize(
            |sink| {
                let mut tee = cgc_trace::TextWriterSink::sealed();
                emit_trace(&trace, &mut [sink, &mut tee])?;
                Ok(tee.into_string())
            },
            &opts,
            7, // deliberately odd batch size: chunking must not matter
            2,
        )
        .expect("fused run succeeds");
        assert_eq!(text, cgc_trace::write_trace_sealed(&trace));
        assert_eq!(stats.jobs, trace.jobs.len() as u64);
        assert_eq!(stats.events, trace.events.len() as u64);
        assert_eq!(fused.system, "fused-test");
    }
}
