//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] builds the workloads/simulations it
//! needs through a shared [`lab::Lab`], runs the corresponding `cgc-core`
//! analyses, and returns an [`experiments::ExperimentResult`] holding the
//! paper-reported values next to the measured ones. The
//! `run_experiments` binary prints them; Criterion benches under
//! `benches/` time the underlying pipelines.
//!
//! Absolute agreement with the paper is not the goal (the substrate is a
//! calibrated simulator, not Google's 2011 fleet); the *shape* — who wins,
//! by roughly what factor, where the crossovers sit — is what
//! `EXPERIMENTS.md` tracks.

pub mod cli;
pub mod experiments;
pub mod fused;
pub mod lab;
pub mod plotdata;
pub mod table;

pub use experiments::{all_experiment_ids, run_experiment, ExperimentResult};
pub use fused::{fuse_characterize, FusedError};
pub use lab::{Lab, Scale};
pub use plotdata::export_plots;
