//! Observability for the generate → simulate → write → read →
//! characterize pipeline.
//!
//! Five tools, deliberately std-only so every crate in the workspace can
//! afford the dependency:
//!
//! * [`span`] / [`span_indexed`] / [`span_under`] — hierarchical tracing
//!   spans around each pipeline stage. A span measures its own
//!   wall-clock on drop, carries a process-unique id, a parent id, and
//!   thread attribution, and reports to the global [`metrics`] registry
//!   and to every installed [`SpanObserver`] (the binaries install
//!   [`CompactStderr`] when `CGC_TRACE` is set and a
//!   [`ChromeTraceWriter`] when `CGC_TRACE_OUT=<path>` is; see
//!   [`init_from_env`]).
//! * [`export`] — the Chrome Trace Event writer: spans become a
//!   Perfetto / `chrome://tracing`-loadable JSON file.
//! * [`metrics`] — a process-global, lock-free [`PipelineMetrics`]
//!   registry of counters and per-stage duration histograms, snapshotted
//!   into a serializable [`MetricsSnapshot`].
//! * [`timeline`] / [`hist`] — **sim-time telemetry** containers: the
//!   versioned [`TelemetryBundle`] of queue/capacity timelines plus
//!   log-bucketed [`LogHistogram`]s of queueing delay, resubmit wait,
//!   and attempt run length. Producers key everything on simulated time,
//!   so bundles are byte-identical across thread counts.
//! * [`Diagnostics`] — a structured sink for ingest warnings (lenient
//!   trace parsing), rendered as a `skipped N lines (first: …)` summary
//!   or a per-category table instead of being silently dropped.
//!
//! Three live-run surfaces sit on top (gen-3), all opt-in via flags in
//! the binaries:
//!
//! * [`progress`] / [`heartbeat`] — a relaxed-atomic [`ProgressProbe`]
//!   the engine publishes sim-time watermarks into, sampled by a
//!   wall-clock thread that emits `cgc-heartbeat/v1` JSONL records
//!   (stage, completion fraction, rates, RSS, ETA).
//! * [`flightrec`] — a fixed-size lock-free ring of recent span events
//!   plus the last heartbeats, dumped as a `cgc-flightrec/v1` JSON from
//!   a panic hook and unix SIGTERM/SIGINT handlers so crashes leave a
//!   post-mortem artifact.
//! * [`prom`] — Prometheus text-format exposition of the
//!   [`MetricsSnapshot`] counters and the sim-time [`LogHistogram`]s.
//!
//! # Zero-cost when disabled
//!
//! Instrumentation is off by default. Counters check one relaxed
//! [`AtomicBool`](std::sync::atomic::AtomicBool) load and skip the write;
//! spans never read the clock unless metrics are enabled or an observer
//! is installed. Nothing here touches any RNG or changes control flow, so
//! enabling instrumentation can never alter simulator output — the
//! workspace's `tests/determinism.rs` suite pins that contract by running
//! the bit-identity checks with instrumentation on (and re-proves it for
//! the telemetry recorder).

mod diag;
pub mod export;
pub mod flightrec;
pub mod heartbeat;
pub mod hist;
mod metrics;
pub mod progress;
pub mod prom;
mod span;
pub mod timeline;

pub use diag::{Diagnostics, IngestWarning};
pub use export::ChromeTraceWriter;
pub use flightrec::{
    dump_flight_record, install_crash_hook, install_flight_recorder, FlightRecord, FLIGHTREC_SCHEMA,
};
pub use heartbeat::{
    start_heartbeat, HeartbeatHandle, HeartbeatOptions, HeartbeatRecord,
    DEFAULT_HEARTBEAT_INTERVAL, HEARTBEAT_SCHEMA,
};
pub use hist::LogHistogram;
pub use metrics::{
    enabled, metrics, set_enabled, Counter, MetricsSnapshot, PipelineCounters, PipelineMetrics,
    StageTiming, MAX_SHARD_SLOTS,
};
pub use progress::{progress, progress_if_active, ProgressProbe};
pub use prom::render_prometheus;
pub use span::{
    add_observer, flush_observers, init_from_env, span, span_indexed, span_under, CompactStderr,
    Span, SpanMeta, SpanObserver,
};
pub use timeline::{
    CapacitySample, QueueDelayPercentiles, TelemetryBundle, TimelineSample, BAND_NAMES, NUM_BANDS,
};

/// Canonical stage names, shared by spans and the per-stage duration
/// histograms. Using these constants (rather than ad-hoc strings) keeps
/// every producer and consumer of a stage's timing on the same slot.
pub mod stages {
    /// Workload generation (`cgc_gen`).
    pub const GENERATE: &str = "generate";
    /// Whole simulation run, all shards plus merge (`cgc_sim`).
    pub const SIMULATE: &str = "simulate";
    /// One engine over one shard's machine/job slice.
    pub const SHARD: &str = "simulate/shard";
    /// Assembling shard outputs into the canonical trace.
    pub const MERGE: &str = "simulate/merge";
    /// Trace serialization (`write_trace`).
    pub const WRITE: &str = "write";
    /// Record fan-out from a built trace to record sinks (`emit_trace`).
    pub const EMIT: &str = "emit";
    /// Trace parsing, strict or lenient, sequential or parallel.
    pub const READ: &str = "read";
    /// The full characterization report (`cgc_core`).
    pub const CHARACTERIZE: &str = "characterize";
    /// Streaming (out-of-core) characterization over record batches.
    pub const STREAM: &str = "characterize/stream";
    /// Fused sim→characterize pipeline (no trace file in between).
    pub const FUSED: &str = "characterize/fused";
    /// The single shared record sweep feeding every analysis pass.
    pub const A_SWEEP: &str = "analysis/sweep";
    /// Individual analyses inside `characterize`.
    pub const A_PRIORITIES: &str = "analysis/priorities";
    pub const A_JOB_LENGTH: &str = "analysis/job_length";
    pub const A_TASK_LENGTH: &str = "analysis/task_length";
    pub const A_SUBMISSION: &str = "analysis/submission";
    pub const A_RESUBMISSION: &str = "analysis/resubmission";
    pub const A_CPU_USAGE: &str = "analysis/cpu_usage";
    pub const A_MEMORY: &str = "analysis/memory";
    pub const A_MAX_LOADS: &str = "analysis/max_loads";
    pub const A_QUEUE_RUNS: &str = "analysis/queue_runs";
    pub const A_LEVEL_RUNS: &str = "analysis/level_runs";
    pub const A_MASSCOUNT: &str = "analysis/masscount";
    pub const A_COMPARISON: &str = "analysis/comparison";
    /// Fallback slot for stage names not in the canonical list.
    pub const OTHER: &str = "other";

    /// Every stage, in display order; `OTHER` is last and doubles as the
    /// fallback histogram slot.
    pub const ALL: [&str; 24] = [
        GENERATE,
        SIMULATE,
        SHARD,
        MERGE,
        WRITE,
        EMIT,
        READ,
        CHARACTERIZE,
        STREAM,
        FUSED,
        A_SWEEP,
        A_PRIORITIES,
        A_JOB_LENGTH,
        A_TASK_LENGTH,
        A_SUBMISSION,
        A_RESUBMISSION,
        A_CPU_USAGE,
        A_MEMORY,
        A_MAX_LOADS,
        A_QUEUE_RUNS,
        A_LEVEL_RUNS,
        A_MASSCOUNT,
        A_COMPARISON,
        OTHER,
    ];

    /// Histogram slot of a stage name (`OTHER` for unknown names).
    pub(crate) fn slot(name: &str) -> usize {
        ALL.iter().position(|&s| s == name).unwrap_or(ALL.len() - 1)
    }

    /// Top-level pipeline *phases*: the coarse stages a heartbeat should
    /// report as "where the run is". Excludes the per-shard and
    /// per-analysis sub-spans, which open and close too often to be a
    /// useful progress label.
    pub const PHASES: [&str; 9] = [
        GENERATE,
        SIMULATE,
        MERGE,
        WRITE,
        EMIT,
        READ,
        CHARACTERIZE,
        STREAM,
        FUSED,
    ];

    /// Whether `name` is one of [`PHASES`].
    pub fn is_phase(name: &str) -> bool {
        PHASES.contains(&name)
    }
}

/// Serializes the crate's stateful unit tests: the progress probe, the
/// heartbeat sampler, and the flight recorder all act on process-global
/// state, so tests touching them must not interleave.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
