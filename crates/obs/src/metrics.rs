//! The lock-free pipeline metrics registry.
//!
//! One process-global [`PipelineMetrics`] holds every counter and
//! per-stage duration histogram. All state is plain atomics updated with
//! `Relaxed` ordering: producers on different threads never synchronize
//! through the registry, they only contribute monotone sums, so a
//! [`snapshot`](PipelineMetrics::snapshot) taken after the instrumented
//! work joined (the normal case: snapshot from the thread that ran the
//! pipeline) sees exact totals.

use crate::stages;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metrics collection on or off (off by default).
///
/// Disabled counters skip their atomic writes, so instrumented hot loops
/// cost one relaxed load. Toggling never affects simulator output.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotone counter, gated on the global enable flag.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` if metrics are enabled; a no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of per-shard event slots. Shards beyond this fold into the
/// last slot (the fleet presets top out far below it).
pub const MAX_SHARD_SLOTS: usize = 64;

const N_BUCKETS: usize = 16;

/// Per-stage duration histogram: count, total, max, and power-of-two
/// millisecond buckets (`buckets[i]` counts durations in
/// `[2^(i-1), 2^i) ms`, with the last bucket open-ended).
struct TimingSlot {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl TimingSlot {
    const fn new() -> Self {
        TimingSlot {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let ms = nanos / 1_000_000;
        let idx = (u64::BITS - ms.leading_zeros()) as usize;
        self.buckets[idx.min(N_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The global registry: one counter per pipeline quantity, one duration
/// histogram per stage. Obtain it with [`metrics`].
pub struct PipelineMetrics {
    /// Jobs produced by the workload generators.
    pub jobs_generated: Counter,
    /// Tasks produced by the workload generators.
    pub tasks_generated: Counter,
    /// Trace events emitted by the simulator, summed over shards.
    pub events_simulated: Counter,
    /// Usage samples recorded by the simulator.
    pub samples_recorded: Counter,
    /// Task attempts placed onto a machine (Schedule events).
    pub placements: Counter,
    /// Preemption evictions (Evict events).
    pub evictions: Counter,
    /// Machine-down events applied by the fault injector.
    pub fault_injections: Counter,
    /// Resubmissions handled after a failure or eviction (each one went
    /// through the retry/backoff path).
    pub retries: Counter,
    /// Placement passes that saw a fitting-but-blacklisted machine.
    pub blacklist_hits: Counter,
    /// Non-blank lines fed to the trace parsers.
    pub lines_parsed: Counter,
    /// Lines skipped (and reported as warnings) by the lenient parsers.
    pub lines_salvaged: Counter,
    /// Bytes handed to the trace parsers.
    pub bytes_read: Counter,
    /// Artifacts whose `#integrity` verification failed (checksum or
    /// record-count mismatch, malformed trailer, missing required
    /// trailer).
    pub integrity_failures: Counter,
    /// Simulator checkpoints written to disk.
    pub checkpoint_writes: Counter,
    /// Simulator runs restored from a checkpoint.
    pub checkpoint_restores: Counter,
    /// Heartbeat records emitted by the live-progress sampler.
    pub heartbeats_emitted: Counter,
    /// Flight-recorder post-mortem dumps written.
    pub flight_record_dumps: Counter,
    events_per_shard: [AtomicU64; MAX_SHARD_SLOTS],
    /// Set when a shard index at or beyond [`MAX_SHARD_SLOTS`] reported
    /// events: per-shard attribution folded into the last slot.
    shards_clamped: AtomicBool,
    timings: [TimingSlot; stages::ALL.len()],
}

static METRICS: PipelineMetrics = PipelineMetrics::new();

/// The process-global metrics registry.
pub fn metrics() -> &'static PipelineMetrics {
    &METRICS
}

impl PipelineMetrics {
    const fn new() -> Self {
        PipelineMetrics {
            jobs_generated: Counter::new(),
            tasks_generated: Counter::new(),
            events_simulated: Counter::new(),
            samples_recorded: Counter::new(),
            placements: Counter::new(),
            evictions: Counter::new(),
            fault_injections: Counter::new(),
            retries: Counter::new(),
            blacklist_hits: Counter::new(),
            lines_parsed: Counter::new(),
            lines_salvaged: Counter::new(),
            bytes_read: Counter::new(),
            integrity_failures: Counter::new(),
            checkpoint_writes: Counter::new(),
            checkpoint_restores: Counter::new(),
            heartbeats_emitted: Counter::new(),
            flight_record_dumps: Counter::new(),
            events_per_shard: [const { AtomicU64::new(0) }; MAX_SHARD_SLOTS],
            shards_clamped: AtomicBool::new(false),
            timings: [const { TimingSlot::new() }; stages::ALL.len()],
        }
    }

    /// Convenience for the generators: one call per generated workload.
    pub fn record_generated(&self, jobs: u64, tasks: u64) {
        self.jobs_generated.add(jobs);
        self.tasks_generated.add(tasks);
    }

    /// Credits `events` to `shard` (and to the global event total).
    /// Shards at or beyond [`MAX_SHARD_SLOTS`] share the last slot.
    pub fn record_shard_events(&self, shard: usize, events: u64) {
        if !enabled() {
            return;
        }
        self.events_simulated.add(events);
        if shard >= MAX_SHARD_SLOTS {
            self.shards_clamped.store(true, Ordering::Relaxed);
        }
        self.events_per_shard[shard.min(MAX_SHARD_SLOTS - 1)].fetch_add(events, Ordering::Relaxed);
    }

    /// Records one duration into the stage's histogram. Spans call this
    /// on drop; it is public so callers timing a stage by other means can
    /// contribute to the same slot.
    pub fn record_duration(&self, stage: &str, nanos: u64) {
        if enabled() {
            self.timings[stages::slot(stage)].record(nanos);
        }
    }

    /// Zeroes every counter and histogram. Tests use this to measure one
    /// pipeline run in isolation; the binaries call it before the run
    /// whose snapshot they will report.
    pub fn reset(&self) {
        for c in [
            &self.jobs_generated,
            &self.tasks_generated,
            &self.events_simulated,
            &self.samples_recorded,
            &self.placements,
            &self.evictions,
            &self.fault_injections,
            &self.retries,
            &self.blacklist_hits,
            &self.lines_parsed,
            &self.lines_salvaged,
            &self.bytes_read,
            &self.integrity_failures,
            &self.checkpoint_writes,
            &self.checkpoint_restores,
            &self.heartbeats_emitted,
            &self.flight_record_dumps,
        ] {
            c.reset();
        }
        for s in &self.events_per_shard {
            s.store(0, Ordering::Relaxed);
        }
        self.shards_clamped.store(false, Ordering::Relaxed);
        for t in &self.timings {
            t.reset();
        }
    }

    /// Copies the current totals into a serializable snapshot.
    ///
    /// `counters` is fully deterministic for a fixed seed and config;
    /// `timings` is wall-clock and varies run to run. Consumers that diff
    /// snapshots (CI does, for `BENCH_pipeline.json`) compare `counters`
    /// only.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards_used = self
            .events_per_shard
            .iter()
            .rposition(|s| s.load(Ordering::Relaxed) > 0)
            .map_or(0, |i| i + 1);
        let counters = PipelineCounters {
            jobs_generated: self.jobs_generated.get(),
            tasks_generated: self.tasks_generated.get(),
            events_simulated: self.events_simulated.get(),
            samples_recorded: self.samples_recorded.get(),
            events_per_shard: self.events_per_shard[..shards_used]
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
            placements: self.placements.get(),
            evictions: self.evictions.get(),
            fault_injections: self.fault_injections.get(),
            retries: self.retries.get(),
            blacklist_hits: self.blacklist_hits.get(),
            lines_parsed: self.lines_parsed.get(),
            lines_salvaged: self.lines_salvaged.get(),
            bytes_read: self.bytes_read.get(),
            integrity_failures: self.integrity_failures.get(),
            checkpoint_writes: self.checkpoint_writes.get(),
            checkpoint_restores: self.checkpoint_restores.get(),
            heartbeats_emitted: self.heartbeats_emitted.get(),
            flight_record_dumps: self.flight_record_dumps.get(),
            shards_clamped: self.shards_clamped.load(Ordering::Relaxed),
        };
        let timings = stages::ALL
            .iter()
            .zip(&self.timings)
            .filter(|(_, slot)| slot.count.load(Ordering::Relaxed) > 0)
            .map(|(&name, slot)| StageTiming {
                stage: name.to_string(),
                count: slot.count.load(Ordering::Relaxed),
                total_nanos: slot.total_nanos.load(Ordering::Relaxed),
                max_nanos: slot.max_nanos.load(Ordering::Relaxed),
                buckets_ms_pow2: slot
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
            })
            .collect();
        MetricsSnapshot {
            shard_imbalance: shard_imbalance(&counters.events_per_shard),
            counters,
            timings,
        }
    }
}

/// Max-over-mean ratio of the per-shard event counts; 0.0 when no shard
/// reported any events.
fn shard_imbalance(events_per_shard: &[u64]) -> f64 {
    let total: u64 = events_per_shard.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *events_per_shard.iter().max().expect("total > 0");
    max as f64 * events_per_shard.len() as f64 / total as f64
}

/// The deterministic half of a snapshot: pure event/record counts that
/// depend only on seed and configuration, never on wall-clock or thread
/// scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineCounters {
    pub jobs_generated: u64,
    pub tasks_generated: u64,
    pub events_simulated: u64,
    pub samples_recorded: u64,
    /// Events per shard, trimmed to the highest shard that reported any.
    pub events_per_shard: Vec<u64>,
    pub placements: u64,
    pub evictions: u64,
    pub fault_injections: u64,
    pub retries: u64,
    pub blacklist_hits: u64,
    pub lines_parsed: u64,
    pub lines_salvaged: u64,
    pub bytes_read: u64,
    /// Artifacts whose `#integrity` verification failed. Absent in
    /// snapshots from before the durability layer; defaults to zero.
    #[serde(default)]
    pub integrity_failures: u64,
    /// Simulator checkpoints written to disk.
    #[serde(default)]
    pub checkpoint_writes: u64,
    /// Simulator runs restored from a checkpoint.
    #[serde(default)]
    pub checkpoint_restores: u64,
    /// Heartbeat records emitted by the live-progress sampler.
    /// Wall-clock-driven, so *not* deterministic — but always zero
    /// unless a heartbeat was explicitly attached, which the exact-diff
    /// consumers never do.
    #[serde(default)]
    pub heartbeats_emitted: u64,
    /// Flight-recorder post-mortem dumps written (same caveat).
    #[serde(default)]
    pub flight_record_dumps: u64,
    /// True when a shard index at or beyond [`MAX_SHARD_SLOTS`] reported
    /// events, meaning `events_per_shard` folded high shards into its
    /// last slot instead of attributing them individually.
    #[serde(default)]
    pub shards_clamped: bool,
}

/// One stage's duration histogram, as captured in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (one of [`crate::stages::ALL`]).
    pub stage: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations.
    pub total_nanos: u64,
    /// Largest recorded duration.
    pub max_nanos: u64,
    /// Power-of-two millisecond buckets; `buckets_ms_pow2[i]` counts
    /// durations in `[2^(i-1), 2^i)` ms, last bucket open-ended.
    pub buckets_ms_pow2: Vec<u64>,
}

/// A point-in-time copy of the registry, serializable for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Deterministic counts (safe to diff across runs of the same seed).
    pub counters: PipelineCounters,
    /// Max-over-mean ratio of `events_per_shard` (1.0 = perfectly even,
    /// `shards` = one shard carried everything). Zero when no shard
    /// reported events. Derived from `counters`, so deterministic — but
    /// kept out of [`PipelineCounters`] so exact-diff consumers are
    /// unaffected.
    #[serde(default)]
    pub shard_imbalance: f64,
    /// Wall-clock histograms, only for stages that recorded anything.
    pub timings: Vec<StageTiming>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned two-section table, the form
    /// the binaries print to stderr.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counters;
        let mut out = String::new();
        let _ = writeln!(out, "pipeline counters:");
        let rows: &[(&str, u64)] = &[
            ("jobs generated", c.jobs_generated),
            ("tasks generated", c.tasks_generated),
            ("events simulated", c.events_simulated),
            ("samples recorded", c.samples_recorded),
            ("placements", c.placements),
            ("evictions", c.evictions),
            ("fault injections", c.fault_injections),
            ("retries", c.retries),
            ("blacklist hits", c.blacklist_hits),
            ("lines parsed", c.lines_parsed),
            ("lines salvaged", c.lines_salvaged),
            ("bytes read", c.bytes_read),
            ("integrity failures", c.integrity_failures),
            ("checkpoint writes", c.checkpoint_writes),
            ("checkpoint restores", c.checkpoint_restores),
            ("heartbeats emitted", c.heartbeats_emitted),
            ("flight record dumps", c.flight_record_dumps),
        ];
        for (label, value) in rows {
            let _ = writeln!(out, "  {label:<19} {value}");
        }
        if !c.events_per_shard.is_empty() {
            let shards: Vec<String> = c.events_per_shard.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "  {:<19} [{}]", "events per shard", shards.join(", "));
            let _ = writeln!(
                out,
                "  {:<19} {:.2}x",
                "shard imbalance", self.shard_imbalance
            );
        }
        if self.shard_imbalance > 2.0 {
            let _ = writeln!(
                out,
                "  warning: shard load is imbalanced ({:.2}x max-over-mean) — one shard \
                 dominates the event count",
                self.shard_imbalance
            );
        }
        if c.shards_clamped {
            let _ = writeln!(
                out,
                "  warning: shard indices >= {MAX_SHARD_SLOTS} were folded into the last \
                 events-per-shard slot"
            );
        }
        if !self.timings.is_empty() {
            let _ = writeln!(out, "stage timings:");
            for t in &self.timings {
                let total_ms = t.total_nanos as f64 / 1e6;
                let max_ms = t.max_nanos as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "  {:<22} n={:<5} total {:>10.3} ms  max {:>10.3} ms",
                    t.stage, t.count, total_ms, max_ms
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global enable flag + global registry: the stateful assertions run
    /// in one test so parallel test threads cannot interleave.
    #[test]
    fn gating_reset_and_snapshot() {
        let m = metrics();
        set_enabled(false);
        m.reset();
        m.jobs_generated.add(5);
        m.record_shard_events(0, 10);
        m.record_duration(stages::READ, 1_000_000);
        assert_eq!(m.jobs_generated.get(), 0, "disabled counters must not move");
        let snap = m.snapshot();
        assert_eq!(snap.counters, PipelineCounters::default());
        assert!(snap.timings.is_empty());

        set_enabled(true);
        m.jobs_generated.add(5);
        m.record_generated(2, 40);
        m.record_shard_events(1, 10);
        m.record_shard_events(3, 7);
        m.record_duration(stages::READ, 2_000_000);
        m.record_duration("no-such-stage", 1);
        let snap = m.snapshot();
        set_enabled(false);
        assert_eq!(snap.counters.jobs_generated, 7);
        assert_eq!(snap.counters.tasks_generated, 40);
        assert_eq!(snap.counters.events_simulated, 17);
        // Trimmed to the highest shard that reported: slots 0..=3.
        assert_eq!(snap.counters.events_per_shard, vec![0, 10, 0, 7]);
        // max/mean = 10 / (17/4) ≈ 2.35 — above the 2x warning line.
        assert!(
            (snap.shard_imbalance - 40.0 / 17.0).abs() < 1e-12,
            "imbalance = {}",
            snap.shard_imbalance
        );
        assert!(
            snap.render_table()
                .contains("warning: shard load is imbalanced"),
            "imbalance warning missing from the rendered table"
        );
        let read = snap.timings.iter().find(|t| t.stage == stages::READ);
        assert_eq!(read.expect("read slot populated").count, 1);
        assert!(snap.timings.iter().any(|t| t.stage == stages::OTHER));
        assert!(!snap.counters.shards_clamped, "no shard hit the clamp yet");

        // A shard index beyond the slot array folds into the last slot —
        // and the snapshot must say so instead of merging silently.
        set_enabled(true);
        m.record_shard_events(MAX_SHARD_SLOTS + 5, 3);
        let snap = m.snapshot();
        set_enabled(false);
        assert!(snap.counters.shards_clamped);
        assert_eq!(snap.counters.events_per_shard.len(), MAX_SHARD_SLOTS);
        assert_eq!(*snap.counters.events_per_shard.last().unwrap(), 3);
        assert!(
            snap.render_table().contains("warning: shard indices"),
            "clamp warning missing from the rendered table"
        );

        m.reset();
        assert_eq!(m.snapshot().counters, PipelineCounters::default());
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let snap = MetricsSnapshot {
            counters: PipelineCounters {
                jobs_generated: 3,
                events_per_shard: vec![1, 2],
                ..PipelineCounters::default()
            },
            shard_imbalance: 4.0 / 3.0,
            timings: vec![StageTiming {
                stage: stages::SHARD.to_string(),
                count: 2,
                total_nanos: 5_000,
                max_nanos: 4_000,
                buckets_ms_pow2: vec![2],
            }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn render_table_lists_every_counter() {
        let snap = MetricsSnapshot {
            counters: PipelineCounters {
                events_per_shard: vec![4, 5],
                ..PipelineCounters::default()
            },
            shard_imbalance: 10.0 / 9.0,
            timings: Vec::new(),
        };
        let table = snap.render_table();
        for label in [
            "jobs generated",
            "blacklist hits",
            "integrity failures",
            "checkpoint writes",
            "checkpoint restores",
            "heartbeats emitted",
            "flight record dumps",
            "events per shard",
            "shard imbalance",
        ] {
            assert!(table.contains(label), "missing {label:?} in:\n{table}");
        }
        assert!(
            !table.contains("warning: shard load is imbalanced"),
            "a 1.11x ratio must not warn:\n{table}"
        );
    }
}
