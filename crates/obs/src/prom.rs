//! Prometheus text-format exposition of the metrics registry and the
//! sim-time telemetry histograms.
//!
//! [`render_prometheus`] turns a [`MetricsSnapshot`] (and optionally a
//! [`TelemetryBundle`]) into the Prometheus text exposition format
//! (version 0.0.4): one `# HELP` / `# TYPE` header per family, counters
//! suffixed `_total`, histograms as cumulative `_bucket{le=…}` series
//! plus `_sum` / `_count`. The binaries write it behind `--prom-out`;
//! it is the exact payload a future always-on `/metrics` endpoint
//! (ROADMAP 5b) will serve, so the format is pinned by a round-trip
//! unit test rather than left to drift.
//!
//! Two clocks meet here and the names keep them apart:
//!
//! * `cgc_stage_duration_seconds` is **wall-clock** (the span
//!   histograms — varies run to run).
//! * `cgc_queue_delay_seconds`, `cgc_resubmit_wait_seconds`, and
//!   `cgc_run_length_seconds` are **sim-time** (deterministic for a
//!   fixed seed; their `le` bounds are the [`LogHistogram`] bucket
//!   upper edges).

use crate::hist::bucket_bounds;
use crate::metrics::MetricsSnapshot;
use crate::timeline::TelemetryBundle;
use crate::LogHistogram;
use std::fmt::Write as _;

/// Renders the full exposition document. Families appear in a fixed
/// order (counters, per-shard series, gauges, wall-clock stage
/// histograms, then sim-time histograms when a bundle is supplied), so
/// the output is diffable across runs.
pub fn render_prometheus(snap: &MetricsSnapshot, telemetry: Option<&TelemetryBundle>) -> String {
    let mut out = String::new();
    let c = &snap.counters;
    for (name, help, value) in [
        (
            "jobs_generated",
            "Jobs produced by the workload generators.",
            c.jobs_generated,
        ),
        (
            "tasks_generated",
            "Tasks produced by the workload generators.",
            c.tasks_generated,
        ),
        (
            "events_simulated",
            "Trace events emitted by the simulator, summed over shards.",
            c.events_simulated,
        ),
        (
            "samples_recorded",
            "Usage samples recorded by the simulator.",
            c.samples_recorded,
        ),
        (
            "placements",
            "Task attempts placed onto a machine.",
            c.placements,
        ),
        ("evictions", "Preemption evictions.", c.evictions),
        (
            "fault_injections",
            "Machine-down events applied by the fault injector.",
            c.fault_injections,
        ),
        (
            "retries",
            "Resubmissions handled after a failure or eviction.",
            c.retries,
        ),
        (
            "blacklist_hits",
            "Placement passes that saw a fitting-but-blacklisted machine.",
            c.blacklist_hits,
        ),
        (
            "lines_parsed",
            "Non-blank lines fed to the trace parsers.",
            c.lines_parsed,
        ),
        (
            "lines_salvaged",
            "Lines skipped by the lenient parsers.",
            c.lines_salvaged,
        ),
        (
            "bytes_read",
            "Bytes handed to the trace parsers.",
            c.bytes_read,
        ),
        (
            "integrity_failures",
            "Artifacts whose integrity verification failed.",
            c.integrity_failures,
        ),
        (
            "checkpoint_writes",
            "Simulator checkpoints written to disk.",
            c.checkpoint_writes,
        ),
        (
            "checkpoint_restores",
            "Simulator runs restored from a checkpoint.",
            c.checkpoint_restores,
        ),
        (
            "heartbeats_emitted",
            "Heartbeat records emitted by the live-progress sampler.",
            c.heartbeats_emitted,
        ),
        (
            "flight_record_dumps",
            "Flight-recorder post-mortem dumps written.",
            c.flight_record_dumps,
        ),
    ] {
        counter(&mut out, name, help, value);
    }

    if !c.events_per_shard.is_empty() {
        let name = "cgc_shard_events_total";
        let _ = writeln!(
            out,
            "# HELP {name} Trace events emitted per simulator shard."
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for (shard, events) in c.events_per_shard.iter().enumerate() {
            let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {events}");
        }
    }

    gauge(
        &mut out,
        "cgc_shard_imbalance_ratio",
        "Max-over-mean ratio of per-shard event counts (0 when no shard reported).",
        fmt_f64(snap.shard_imbalance),
    );
    gauge(
        &mut out,
        "cgc_shards_clamped",
        "1 when shard indices beyond the slot array folded into the last per-shard slot.",
        if c.shards_clamped { "1" } else { "0" }.to_string(),
    );

    if !snap.timings.is_empty() {
        let name = "cgc_stage_duration_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Wall-clock duration of pipeline stage executions."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        for t in &snap.timings {
            let label = format!("stage=\"{}\"", t.stage);
            let mut cumulative = 0u64;
            for (i, &n) in t.buckets_ms_pow2.iter().enumerate() {
                cumulative += n;
                // Span buckets are powers of two in milliseconds: slot i
                // holds durations below 2^i ms. The last slot is
                // open-ended and becomes +Inf below.
                if i + 1 == t.buckets_ms_pow2.len() && cumulative == t.count {
                    break;
                }
                let le = (1u64 << i) as f64 / 1000.0;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{label},le=\"{}\"}} {cumulative}",
                    fmt_f64(le)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{{label},le=\"+Inf\"}} {}", t.count);
            let _ = writeln!(
                out,
                "{name}_sum{{{label}}} {}",
                fmt_f64(t.total_nanos as f64 / 1e9)
            );
            let _ = writeln!(out, "{name}_count{{{label}}} {}", t.count);
        }
    }

    if let Some(bundle) = telemetry {
        let name = "cgc_queue_delay_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Sim-time queueing delay (first submit to first placement) per priority band."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (band, hist) in bundle.bands.iter().zip(&bundle.queue_delay) {
            log_histogram(&mut out, name, &format!("band=\"{band}\""), hist);
        }
        sim_histogram(
            &mut out,
            "cgc_resubmit_wait_seconds",
            "Sim-time wait between the end of one attempt and the start of the next.",
            &bundle.resubmit_wait,
        );
        sim_histogram(
            &mut out,
            "cgc_run_length_seconds",
            "Sim-time length of one task attempt (placement to completion).",
            &bundle.run_length,
        );
    }
    out
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let full = format!("cgc_{name}_total");
    let _ = writeln!(out, "# HELP {full} {help}");
    let _ = writeln!(out, "# TYPE {full} counter");
    let _ = writeln!(out, "{full} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: String) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn sim_histogram(out: &mut String, name: &str, help: &str, hist: &LogHistogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    log_histogram(out, name, "", hist);
}

/// One `{labels}` series of a [`LogHistogram`], as cumulative buckets.
/// The `le` bound of bucket `b` is its inclusive upper edge from
/// [`bucket_bounds`] — exactly Prometheus's `≤` semantics, since the
/// recorded values are integer seconds. Empty trailing buckets collapse
/// into `+Inf`.
fn log_histogram(out: &mut String, name: &str, labels: &str, hist: &LogHistogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    if hist.count() > 0 {
        for (b, &n) in hist.counts().iter().enumerate() {
            cumulative += n;
            let (_, hi) = bucket_bounds(b);
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{hi}\"}} {cumulative}"
            );
            if cumulative == hist.count() {
                break; // trailing empty buckets collapse into +Inf
            }
        }
    }
    let bracket = if labels.is_empty() {
        "{le=\"+Inf\"}".to_string()
    } else {
        format!("{{{labels},le=\"+Inf\"}}")
    };
    let _ = writeln!(out, "{name}_bucket{bracket} {}", hist.count());
    let suffix = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{suffix} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{suffix} {}", hist.count());
}

/// Prometheus floats: integral values render without the trailing `.0`
/// Rust's `{}` would keep, fractional ones with full precision.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{PipelineCounters, StageTiming};
    use crate::stages;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: PipelineCounters {
                jobs_generated: 79,
                tasks_generated: 1325,
                events_simulated: 6539,
                samples_recorded: 28800,
                events_per_shard: vec![1583, 1647, 1620, 1689],
                placements: 2182,
                evictions: 0,
                fault_injections: 10,
                retries: 857,
                blacklist_hits: 154,
                lines_parsed: 37148,
                lines_salvaged: 0,
                bytes_read: 1358488,
                integrity_failures: 0,
                checkpoint_writes: 3,
                checkpoint_restores: 1,
                heartbeats_emitted: 12,
                flight_record_dumps: 1,
                shards_clamped: false,
            },
            shard_imbalance: 1.03,
            timings: vec![StageTiming {
                stage: stages::SIMULATE.to_string(),
                count: 4,
                total_nanos: 9_000_000,
                max_nanos: 5_000_000,
                buckets_ms_pow2: vec![1, 0, 2, 1],
            }],
        }
    }

    /// The acceptance-criteria round trip: every counter in the
    /// exposition parses back to exactly the snapshot's value.
    #[test]
    fn counters_round_trip_exactly() {
        let snap = sample_snapshot();
        let text = render_prometheus(&snap, None);

        let value_of = |metric: &str| -> u64 {
            text.lines()
                .find(|l| !l.starts_with('#') && l.split(' ').next() == Some(metric))
                .unwrap_or_else(|| panic!("missing sample for {metric}"))
                .split(' ')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };

        let c = &snap.counters;
        for (name, expect) in [
            ("cgc_jobs_generated_total", c.jobs_generated),
            ("cgc_tasks_generated_total", c.tasks_generated),
            ("cgc_events_simulated_total", c.events_simulated),
            ("cgc_samples_recorded_total", c.samples_recorded),
            ("cgc_placements_total", c.placements),
            ("cgc_evictions_total", c.evictions),
            ("cgc_fault_injections_total", c.fault_injections),
            ("cgc_retries_total", c.retries),
            ("cgc_blacklist_hits_total", c.blacklist_hits),
            ("cgc_lines_parsed_total", c.lines_parsed),
            ("cgc_lines_salvaged_total", c.lines_salvaged),
            ("cgc_bytes_read_total", c.bytes_read),
            ("cgc_integrity_failures_total", c.integrity_failures),
            ("cgc_checkpoint_writes_total", c.checkpoint_writes),
            ("cgc_checkpoint_restores_total", c.checkpoint_restores),
            ("cgc_heartbeats_emitted_total", c.heartbeats_emitted),
            ("cgc_flight_record_dumps_total", c.flight_record_dumps),
        ] {
            assert_eq!(value_of(name), expect, "{name}");
        }
        for (shard, events) in c.events_per_shard.iter().enumerate() {
            assert_eq!(
                value_of(&format!("cgc_shard_events_total{{shard=\"{shard}\"}}")),
                *events
            );
        }
    }

    #[test]
    fn every_family_has_help_and_type_headers() {
        let mut bundle = TelemetryBundle::new("simulation", 60, 3600);
        bundle.queue_delay[0].record(2);
        bundle.queue_delay[0].record(7);
        bundle.resubmit_wait.record(30);
        bundle.run_length.record(600);
        let text = render_prometheus(&sample_snapshot(), Some(&bundle));

        let mut families: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| {
                let metric = l.split([' ', '{']).next().unwrap();
                metric
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count")
            })
            .collect();
        families.dedup();
        for family in families {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
    }

    #[test]
    fn histograms_are_cumulative_and_end_at_inf() {
        let mut bundle = TelemetryBundle::new("simulation", 60, 3600);
        for v in [1, 1, 5, 40, 40, 40, 9000] {
            bundle.queue_delay[1].record(v);
        }
        let text = render_prometheus(&sample_snapshot(), Some(&bundle));

        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("cgc_queue_delay_seconds_bucket{band=\"middle\""))
            .map(|l| l.split(' ').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(buckets.len() >= 2);
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "buckets must be cumulative: {buckets:?}"
        );
        assert_eq!(*buckets.last().unwrap(), 7, "+Inf bucket holds the count");
        assert!(text.contains("cgc_queue_delay_seconds_bucket{band=\"middle\",le=\"+Inf\"} 7"));
        assert!(text.contains("cgc_queue_delay_seconds_count{band=\"middle\"} 7"));
        assert!(text.contains("cgc_queue_delay_seconds_sum{band=\"middle\"} 9127"));
        // Nothing was recorded into resubmit_wait: even an empty
        // histogram must still close with its +Inf bucket.
        assert!(text.contains("cgc_resubmit_wait_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("cgc_resubmit_wait_seconds_count 0"));
        assert!(
            text.contains("cgc_stage_duration_seconds_bucket{stage=\"simulate\",le=\"+Inf\"} 4")
        );
        assert!(text.contains("cgc_stage_duration_seconds_count{stage=\"simulate\"} 4"));
    }
}
