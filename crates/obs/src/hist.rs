//! Log-bucketed histograms for sim-time telemetry.
//!
//! Queueing delays, resubmit waits, and attempt run lengths span six
//! orders of magnitude (a second to a week), so uniform bins are useless
//! and exact sample vectors are too heavy to key on every sim-time tick.
//! [`LogHistogram`] keeps HDR-style buckets — four linear sub-buckets per
//! power-of-two octave, bounding relative error at 25% — over the full
//! `u64` range, in at most [`MAX_BUCKETS`] counters.
//!
//! Everything here is deterministic: bucket boundaries are pure integer
//! arithmetic, percentiles come from bucket lower bounds clamped into the
//! observed `[min, max]`, and [`merge`](LogHistogram::merge) is a plain
//! element-wise sum. Telemetry built from these histograms is therefore
//! byte-identical across thread counts as long as values are recorded in
//! a deterministic multiset (order never matters).

use serde::{Deserialize, Serialize};

/// Sub-buckets per power-of-two octave (2 significand bits).
const SUB: u64 = 4;

/// Upper bound on the bucket index + 1: values `0..4` get exact buckets,
/// octaves 2..=63 get [`SUB`] buckets each.
pub const MAX_BUCKETS: usize = (SUB + (64 - 2) * SUB) as usize;

/// Bucket index of `value`.
///
/// Values below `SUB` map exactly; larger values map to
/// `(octave, sub-bucket)` where the sub-bucket is the two bits after the
/// leading one.
pub fn bucket_of(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let k = 63 - u64::from(value.leading_zeros()); // msb position, >= 2
        let sub = (value >> (k - 2)) & (SUB - 1);
        (SUB + (k - 2) * SUB + sub) as usize
    }
}

/// Inclusive `[lo, hi]` bounds of a bucket. Every value maps into the
/// bounds of its own bucket: `bounds(bucket_of(v)).0 <= v <=
/// bounds(bucket_of(v)).1`.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    let b = bucket as u64;
    if b < SUB {
        (b, b)
    } else {
        let k = 2 + (b - SUB) / SUB;
        let sub = (b - SUB) % SUB;
        let width = 1u64 << (k - 2);
        let lo = (SUB + sub) << (k - 2);
        // The topmost bucket's exclusive bound is 2^64; inclusive math
        // avoids the overflow.
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-bucketed histogram over `u64` values (seconds, here).
///
/// Buckets are stored trimmed to the highest one ever hit, so an empty or
/// small-valued histogram serializes to a handful of numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bucket counts, trimmed (index with [`bucket_bounds`]).
    counts: Vec<u64>,
    /// Total recorded values.
    count: u64,
    /// Sum of recorded values (saturating).
    sum: u64,
    /// Smallest recorded value (0 when empty).
    min: u64,
    /// Largest recorded value (0 when empty).
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating at `u64::MAX`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Trimmed bucket counts (index with [`bucket_bounds`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Nearest-rank percentile for `q` in `[0, 1]`, `None` when empty.
    ///
    /// Returns the lower bound of the bucket holding the `ceil(q·count)`-th
    /// value, clamped into `[min, max]` — so a single-sample or all-equal
    /// histogram reports the exact value at every `q`. Deterministic: pure
    /// integer bucket walking, no interpolation.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(b).0.clamp(self.min, self.max));
            }
        }
        // Unreachable with a consistent histogram; be lenient on one
        // deserialized with a short `counts` vector.
        Some(self.max)
    }

    /// Adds every recorded value of `other` into `self` (element-wise
    /// bucket sum — associative, commutative, deterministic).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(values: &[u64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..4 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_are_contiguous() {
        // Each bucket's lower bound is the previous upper bound + 1.
        for b in 1..MAX_BUCKETS {
            assert_eq!(
                bucket_bounds(b).0,
                bucket_bounds(b - 1).1 + 1,
                "gap between buckets {} and {b}",
                b - 1
            );
        }
    }

    #[test]
    fn extremes_round_trip() {
        for v in [0, 1, 3, 4, 5, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
        assert!(bucket_of(u64::MAX) < MAX_BUCKETS);
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(LogHistogram::new().percentile(0.5), None);
        assert_eq!(LogHistogram::new().mean(), None);
        assert_eq!(LogHistogram::new().min(), None);
    }

    #[test]
    fn percentile_single_sample_is_the_sample() {
        let h = of(&[937]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(937));
        }
    }

    #[test]
    fn percentile_all_equal_is_that_value() {
        let h = of(&[600; 50]);
        for q in [0.01, 0.5, 0.9, 0.99] {
            assert_eq!(h.percentile(q), Some(600));
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = of(&[1, 2, 3, 10, 100, 1000, 10_000, 100_000]);
        let p50 = h.percentile(0.5).unwrap();
        let p90 = h.percentile(0.9).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= h.min().unwrap() && p99 <= h.max().unwrap());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = of(&[0, 5, 17, 300]);
        let b = of(&[2, 300, 100_000]);
        a.merge(&b);
        assert_eq!(a, of(&[0, 5, 17, 300, 2, 300, 100_000]));
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&LogHistogram::new());
        assert_eq!(empty, a);
    }

    #[test]
    fn serde_snapshot_round_trips() {
        let h = of(&[0, 1, 4, 9, 300, 86_400, u64::MAX]);
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.percentile(0.5), h.percentile(0.5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// value → bucket → bounds always contains the value.
        #[test]
        fn bucket_bounds_contain_value(v in 0u64..=u64::MAX) {
            let b = bucket_of(v);
            prop_assert!(b < MAX_BUCKETS);
            let (lo, hi) = bucket_bounds(b);
            prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
        }

        /// bucket_of is monotone: a larger value never lands in an
        /// earlier bucket.
        #[test]
        fn bucket_of_is_monotone(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(bucket_of(lo) <= bucket_of(hi));
        }

        /// Recording preserves totals and keeps percentiles in range.
        #[test]
        fn totals_and_percentiles(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            prop_assert_eq!(h.min(), values.iter().min().copied());
            prop_assert_eq!(h.max(), values.iter().max().copied());
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let p = h.percentile(q).unwrap();
                prop_assert!(h.min().unwrap() <= p && p <= h.max().unwrap());
            }
        }

        /// Serde round-trip is lossless for arbitrary contents. Values
        /// stay within the f64-exact integer range so the property holds
        /// under any JSON number representation.
        #[test]
        fn serde_round_trip(values in prop::collection::vec(0u64..(1u64 << 40), 0..50)) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let json = serde_json::to_string(&h).unwrap();
            let back: LogHistogram = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, h);
        }
    }
}
