//! The heartbeat sampler: versioned `cgc-heartbeat/v1` JSONL progress
//! records on a wall-clock interval.
//!
//! [`start_heartbeat`] spawns one sampler thread that periodically reads
//! the [`ProgressProbe`](crate::ProgressProbe) (sim-time watermarks,
//! per-shard event/sample tallies, current stage) and the global
//! [`PipelineMetrics`](crate::PipelineMetrics), derives rates from the
//! deltas since its previous tick, and appends one JSON object per line
//! to a file or stderr. The instrumented pipeline never sees the
//! sampler: all communication is through the probe's relaxed atomics, so
//! a run with a heartbeat attached emits bit-identical artifacts to one
//! without (pinned in `tests/determinism.rs`).
//!
//! One record is always emitted immediately on start and one on stop, so
//! even runs shorter than the interval leave a first and a final line.
//! Each emitted record also lands in the crash flight recorder's
//! heartbeat ring ([`crate::flightrec`]), which is how a post-mortem
//! dump carries the last minutes of metric deltas.
//!
//! # Record semantics
//!
//! * `completion` — the current simulation run's min-over-shards
//!   `watermark / horizon` fraction; `null` before any run announced
//!   itself. Monotone non-decreasing *within* one simulation; a binary
//!   that simulates repeatedly (`cgc-bench`'s throughput curve) starts a
//!   fresh climb per run.
//! * `eta_seconds` — wall-clock remaining for the current simulation,
//!   extrapolated from completion growth since the sampler first saw
//!   this run move; `null` until there are two distinct points.
//! * `tasks_per_s` — delta of `tasks_generated + placements` per second:
//!   generator and scheduler throughput combined.
//! * `events_per_s` / `samples_per_s` — deltas of the probe's live
//!   per-shard tallies, which move *during* a simulation (the metrics
//!   registry only sees per-engine totals after each run flushes).
//! * `rss_bytes` — current `VmRSS` from `/proc/self/status` (0 off
//!   Linux).

use crate::metrics::metrics;
use crate::progress::progress;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of every emitted record.
pub const HEARTBEAT_SCHEMA: &str = "cgc-heartbeat/v1";

/// Default sampling interval of [`HeartbeatOptions`].
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// Where and how often the sampler emits.
#[derive(Debug, Clone)]
pub struct HeartbeatOptions {
    /// Destination file (created, truncating); `None` streams to stderr.
    pub path: Option<PathBuf>,
    /// Wall-clock sampling interval, clamped to at least 10 ms.
    pub interval: Duration,
}

impl Default for HeartbeatOptions {
    fn default() -> Self {
        HeartbeatOptions {
            path: None,
            interval: DEFAULT_HEARTBEAT_INTERVAL,
        }
    }
}

/// One heartbeat line; see the module docs for field semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Format tag, [`HEARTBEAT_SCHEMA`].
    pub schema: String,
    /// Record number within this sampler, from 0.
    pub seq: u64,
    /// Wall-clock milliseconds since the sampler started.
    pub wall_ms: u64,
    /// Last top-level pipeline phase entered (`"idle"` before any).
    pub stage: String,
    /// Completion fraction of the current simulation run, `null` before
    /// one is announced.
    pub completion: Option<f64>,
    /// Estimated wall-clock seconds until the current simulation
    /// completes, `null` while inestimable.
    pub eta_seconds: Option<f64>,
    /// Generator + scheduler throughput since the previous record.
    pub tasks_per_s: f64,
    /// Simulator events processed per second since the previous record.
    pub events_per_s: f64,
    /// Usage samples recorded per second since the previous record.
    pub samples_per_s: f64,
    /// Live probe total of simulator events processed (all runs).
    pub events_total: u64,
    /// Live probe total of usage samples recorded (all runs).
    pub samples_total: u64,
    /// Current resident set size, bytes (0 when unreadable).
    pub rss_bytes: u64,
}

/// Stops the sampler (emitting one final record) when dropped or via
/// [`stop`](HeartbeatHandle::stop).
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Signals the sampler, waits for its final record, and disarms the
    /// progress probe.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        progress().set_enabled(false);
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum Sink {
    File(BufWriter<File>),
    Stderr,
}

impl Sink {
    fn emit(&mut self, record: &HeartbeatRecord) {
        let Ok(line) = serde_json::to_string(record) else {
            return;
        };
        match self {
            // Flush per line: heartbeats exist to be tailed, and the
            // process may die without ever closing the writer.
            Sink::File(out) => {
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            }
            Sink::Stderr => {
                let _ = writeln!(io::stderr().lock(), "{line}");
            }
        }
    }
}

/// Arms the progress probe and spawns the sampler thread. Fails only
/// when the destination file cannot be created — surfaced here, not from
/// the thread, so binaries can exit with a clean error.
pub fn start_heartbeat(opts: HeartbeatOptions) -> io::Result<HeartbeatHandle> {
    let mut sink = match &opts.path {
        Some(p) => Sink::File(BufWriter::new(File::create(p)?)),
        None => Sink::Stderr,
    };
    let interval = opts.interval.max(Duration::from_millis(10));
    progress().set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("cgc-heartbeat".into())
        .spawn(move || {
            let mut sampler = Sampler::new();
            loop {
                let record = sampler.sample();
                sink.emit(&record);
                metrics().heartbeats_emitted.add(1);
                crate::flightrec::note_heartbeat(record);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                // Sleep in slices so stop() never waits a full interval;
                // a stop mid-sleep loops back up to emit the final record.
                let deadline = Instant::now() + interval;
                while !stop_flag.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
                }
            }
        })?;
    Ok(HeartbeatHandle {
        stop,
        thread: Some(thread),
    })
}

/// Delta state between two heartbeat ticks.
struct Sampler {
    started: Instant,
    seq: u64,
    last_at: Instant,
    last_tasks: u64,
    last_events: u64,
    last_samples: u64,
    /// First `(time, completion)` where the current run showed progress;
    /// the ETA extrapolates from here. Reset when completion regresses
    /// (a new run began).
    eta_anchor: Option<(Instant, f64)>,
}

impl Sampler {
    fn new() -> Self {
        let now = Instant::now();
        Sampler {
            started: now,
            seq: 0,
            last_at: now,
            last_tasks: 0,
            last_events: 0,
            last_samples: 0,
            eta_anchor: None,
        }
    }

    fn sample(&mut self) -> HeartbeatRecord {
        let now = Instant::now();
        let probe = progress();
        let m = metrics();
        let tasks = m.tasks_generated.get() + m.placements.get();
        let events = probe.events_total();
        let samples = probe.samples_total();
        let dt = (now - self.last_at).as_secs_f64();
        let rate = |cur: u64, prev: u64| {
            if self.seq == 0 || dt <= 0.0 {
                0.0
            } else {
                cur.saturating_sub(prev) as f64 / dt
            }
        };

        let completion = probe.completion();
        let eta_seconds = match completion {
            Some(c) => {
                if let Some((_, c0)) = self.eta_anchor {
                    if c < c0 {
                        self.eta_anchor = None; // a new run started over
                    }
                }
                if self.eta_anchor.is_none() && c > 0.0 && c < 1.0 {
                    self.eta_anchor = Some((now, c));
                }
                match self.eta_anchor {
                    Some((t0, c0)) if c > c0 => {
                        Some((now - t0).as_secs_f64() * (1.0 - c) / (c - c0))
                    }
                    _ => None,
                }
            }
            None => None,
        };

        let record = HeartbeatRecord {
            schema: HEARTBEAT_SCHEMA.to_string(),
            seq: self.seq,
            wall_ms: (now - self.started).as_millis().min(u64::MAX as u128) as u64,
            stage: probe.stage_name().unwrap_or("idle").to_string(),
            completion,
            eta_seconds,
            tasks_per_s: rate(tasks, self.last_tasks),
            events_per_s: rate(events, self.last_events),
            samples_per_s: rate(samples, self.last_samples),
            events_total: events,
            samples_total: samples,
            rss_bytes: rss_bytes(),
        };
        self.seq += 1;
        self.last_at = now;
        self.last_tasks = tasks;
        self.last_events = events;
        self.last_samples = samples;
        record
    }
}

/// Current resident set size in bytes, from `/proc/self/status`
/// (`VmRSS`). 0 off Linux or if the field is missing.
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_emits_parseable_monotone_records() {
        let _guard = crate::test_guard();
        let path = std::env::temp_dir().join(format!("cgc-heartbeat-{}.jsonl", std::process::id()));
        let handle = start_heartbeat(HeartbeatOptions {
            path: Some(path.clone()),
            interval: Duration::from_millis(10),
        })
        .expect("temp file creates");
        assert!(progress().enabled(), "starting the sampler arms the probe");

        // Feed the probe like a running simulation would.
        progress().begin_run(1_000, 1);
        for t in [100u64, 400, 900] {
            progress().on_event(0, t);
            progress().on_samples(0, 5);
            std::thread::sleep(Duration::from_millis(15));
        }
        handle.stop();
        assert!(!progress().enabled(), "stop disarms the probe");

        let text = std::fs::read_to_string(&path).expect("heartbeat file readable");
        let _ = std::fs::remove_file(&path);
        let records: Vec<HeartbeatRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line is one JSON record"))
            .collect();
        assert!(records.len() >= 2, "first + final records at minimum");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.schema, HEARTBEAT_SCHEMA);
            assert_eq!(r.seq, i as u64, "seq is dense from 0");
        }
        for pair in records.windows(2) {
            assert!(pair[1].wall_ms >= pair[0].wall_ms);
            assert!(pair[1].events_total >= pair[0].events_total);
            let (a, b) = (&pair[0].completion, &pair[1].completion);
            if let (Some(a), Some(b)) = (a, b) {
                assert!(b >= a, "completion is monotone within one run");
            }
        }
        let last = records.last().expect("non-empty");
        assert!(last.events_total >= 3, "probe totals reached the sampler");
        assert_eq!(last.completion, Some(0.9));
    }

    #[test]
    fn rss_reader_does_not_panic() {
        let _ = rss_bytes();
    }
}
