//! Pipeline-stage spans and the span observer hook.
//!
//! A [`Span`] is an RAII guard: created when a stage begins, it measures
//! wall-clock until drop and reports the duration to the global metrics
//! registry (if enabled) and to the installed [`SpanObserver`] (if any).
//! When neither consumer exists, [`span`] never reads the clock — the
//! guard is a no-op struct, so leaving instrumentation in library code
//! costs nothing in the common (disabled) case.

use crate::metrics::{enabled, metrics};
use std::sync::OnceLock;
use std::time::Instant;

/// Receives span open/close notifications. Implementations must be
/// cheap and thread-safe: spans fire from rayon worker threads.
pub trait SpanObserver: Send + Sync {
    /// A span was created. Default: ignore.
    fn enter(&self, _name: &'static str, _index: Option<usize>) {}
    /// A span ended after `nanos` of wall-clock.
    fn exit(&self, name: &'static str, index: Option<usize>, nanos: u64);
}

static OBSERVER: OnceLock<Box<dyn SpanObserver>> = OnceLock::new();

/// Installs the process-wide span observer. At most one observer can
/// ever be installed; a second call returns `false` and drops `obs`.
pub fn set_observer(obs: Box<dyn SpanObserver>) -> bool {
    OBSERVER.set(obs).is_ok()
}

fn observer() -> Option<&'static dyn SpanObserver> {
    OBSERVER.get().map(|b| b.as_ref())
}

/// Installs [`CompactStderr`] when the `CGC_TRACE` environment variable
/// is set to anything but `0` or the empty string. The binaries call
/// this once at startup so `CGC_TRACE=1 cargo run …` traces any of them.
pub fn init_from_env() {
    match std::env::var("CGC_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => {
            set_observer(Box::new(CompactStderr));
        }
        _ => {}
    }
}

/// The default subscriber: one compact stderr line per closed span.
///
/// ```text
/// [cgc] simulate/shard#2 184.31 ms
/// ```
pub struct CompactStderr;

impl SpanObserver for CompactStderr {
    fn exit(&self, name: &'static str, index: Option<usize>, nanos: u64) {
        let ms = nanos as f64 / 1e6;
        match index {
            Some(i) => eprintln!("[cgc] {name}#{i} {ms:.2} ms"),
            None => eprintln!("[cgc] {name} {ms:.2} ms"),
        }
    }
}

/// RAII guard for one stage execution; see [`span`].
pub struct Span {
    name: &'static str,
    index: Option<usize>,
    /// `None` when instrumentation was off at creation: the drop is then
    /// a no-op and the clock is never read.
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        metrics().record_duration(self.name, nanos);
        if let Some(obs) = observer() {
            obs.exit(self.name, self.index, nanos);
        }
    }
}

/// Opens a span for `name` (use the constants in [`crate::stages`]).
/// Hold the returned guard for the duration of the stage.
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Like [`span`] but tagged with an index (shard number, experiment
/// number) that the observer shows as `name#index`.
pub fn span_indexed(name: &'static str, index: usize) -> Span {
    span_inner(name, Some(index))
}

fn span_inner(name: &'static str, index: Option<usize>) -> Span {
    let live = enabled() || OBSERVER.get().is_some();
    let start = live.then(Instant::now);
    if start.is_some() {
        if let Some(obs) = observer() {
            obs.enter(name, index);
        }
    }
    Span { name, index, start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CLOSED: AtomicU64 = AtomicU64::new(0);

    struct CountingObserver;
    impl SpanObserver for CountingObserver {
        fn exit(&self, _name: &'static str, _index: Option<usize>, _nanos: u64) {
            CLOSED.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn spans_reach_the_observer_and_only_one_installs() {
        assert!(set_observer(Box::new(CountingObserver)));
        assert!(!set_observer(Box::new(CountingObserver)), "second install");
        let before = CLOSED.load(Ordering::Relaxed);
        drop(span(stages::WRITE));
        drop(span_indexed(stages::SHARD, 3));
        assert_eq!(CLOSED.load(Ordering::Relaxed), before + 2);
    }
}
