//! Hierarchical pipeline-stage spans and the span-observer fan-out.
//!
//! A [`Span`] is an RAII guard: created when a stage begins, it measures
//! wall-clock until drop and reports to the global metrics registry (if
//! enabled) and to every installed [`SpanObserver`]. When no consumer
//! exists, [`span`] never reads the clock or allocates an id — the guard
//! is a no-op struct, so leaving instrumentation in library code costs
//! nothing in the common (disabled) case.
//!
//! # Hierarchy and attribution
//!
//! Live spans carry a process-unique `id` and a `parent` id, resolved
//! from a thread-local stack of open spans — so nested stages form a tree
//! without any explicit threading. Work that hops threads (rayon forks)
//! breaks the thread-local chain; [`span_under`] re-attaches a child to
//! an explicit parent id captured before the fork. Every span also
//! records the small dense id of the thread that opened it, which is how
//! the Chrome-trace export lays spans out into per-thread tracks.
//!
//! # Observers
//!
//! [`add_observer`] installs any number of observers; all of them see
//! every span ([`CompactStderr`] streaming to stderr and
//! [`ChromeTraceWriter`](crate::ChromeTraceWriter) writing `trace.json`
//! routinely run together). [`init_from_env`] wires both from the
//! `CGC_TRACE` / `CGC_TRACE_OUT` environment variables; binaries call
//! [`flush_observers`] before exiting so file-backed observers can close
//! their output.

use crate::metrics::{enabled, metrics};
use std::cell::RefCell;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Identity of one live span, as shown to observers.
#[derive(Debug, Clone, Copy)]
pub struct SpanMeta {
    /// Stage name (one of [`crate::stages`]).
    pub name: &'static str,
    /// Optional index (shard number, experiment number).
    pub index: Option<usize>,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Small dense id of the thread that opened the span.
    pub tid: u64,
}

/// Receives span open/close notifications. Implementations must be
/// cheap and thread-safe: spans fire from rayon worker threads.
pub trait SpanObserver: Send + Sync {
    /// A span was created. Default: ignore.
    fn enter(&self, _span: &SpanMeta) {}
    /// A span ended after `nanos` of wall-clock. `start_micros` is the
    /// span's start, in microseconds since the process-wide anchor — the
    /// timebase Chrome-trace `ts` fields use.
    fn exit(&self, span: &SpanMeta, start_micros: f64, nanos: u64);
    /// The process is about to exit; finalize any buffered output.
    /// Default: nothing to flush.
    fn flush(&self) {}
}

static OBSERVERS: RwLock<Vec<Arc<dyn SpanObserver>>> = RwLock::new(Vec::new());
/// Mirror of `OBSERVERS.len()`, readable without taking the lock: the
/// disabled-instrumentation fast path is one relaxed load.
static N_OBSERVERS: AtomicUsize = AtomicUsize::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense id, assigned on first span.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide epoch that span timestamps are measured against.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds elapsed since the span-timestamp anchor — the same
/// timebase as the `start_micros` observers receive, for events (flight
/// recorder enters) that need a timestamp outside a span exit.
pub(crate) fn micros_since_anchor() -> f64 {
    anchor().elapsed().as_secs_f64() * 1e6
}

/// Installs an observer. Any number can be active at once; each sees
/// every span from the moment it is added.
pub fn add_observer(obs: Arc<dyn SpanObserver>) {
    let mut observers = OBSERVERS.write().expect("observer registry poisoned");
    observers.push(obs);
    N_OBSERVERS.store(observers.len(), Ordering::Release);
}

/// Calls [`SpanObserver::flush`] on every installed observer. Binaries
/// call this once before exiting so file-backed observers (the Chrome
/// trace writer) can close their JSON.
pub fn flush_observers() {
    for obs in OBSERVERS.read().expect("observer registry poisoned").iter() {
        obs.flush();
    }
}

fn with_observers(f: impl Fn(&dyn SpanObserver)) {
    for obs in OBSERVERS.read().expect("observer registry poisoned").iter() {
        f(obs.as_ref());
    }
}

/// Wires observers from the environment; the binaries call this once at
/// startup.
///
/// * `CGC_TRACE` set (non-empty, not `0`): stream one compact stderr
///   line per closed span ([`CompactStderr`]).
/// * `CGC_TRACE_OUT=<path>`: write a Perfetto / `chrome://tracing`
///   loadable Chrome Trace Event JSON to `<path>`
///   ([`ChromeTraceWriter`](crate::ChromeTraceWriter)); finalized by
///   [`flush_observers`].
pub fn init_from_env() {
    if let Ok(v) = std::env::var("CGC_TRACE") {
        if !v.is_empty() && v != "0" {
            add_observer(Arc::new(CompactStderr));
        }
    }
    if let Ok(path) = std::env::var("CGC_TRACE_OUT") {
        if !path.is_empty() {
            match crate::ChromeTraceWriter::create(std::path::Path::new(&path)) {
                Ok(writer) => {
                    add_observer(Arc::new(writer));
                    // A panic/SIGTERM must still flush the trace file:
                    // without the crash hook every buffered span is lost
                    // and the JSON array is never closed.
                    crate::flightrec::install_crash_hook();
                }
                Err(e) => eprintln!("[cgc] cannot open CGC_TRACE_OUT={path}: {e}"),
            }
        }
    }
}

/// The default subscriber: one compact stderr line per closed span.
///
/// ```text
/// [cgc] simulate/shard#2 184.31 ms
/// ```
///
/// Each line is built in a buffer and issued as a single write on the
/// locked stream, so lines from concurrent shard threads never
/// interleave mid-line.
pub struct CompactStderr;

impl SpanObserver for CompactStderr {
    fn exit(&self, span: &SpanMeta, _start_micros: f64, nanos: u64) {
        let ms = nanos as f64 / 1e6;
        let line = match span.index {
            Some(i) => format!("[cgc] {}#{i} {ms:.2} ms\n", span.name),
            None => format!("[cgc] {} {ms:.2} ms\n", span.name),
        };
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

/// RAII guard for one stage execution; see [`span`].
pub struct Span {
    /// `None` when instrumentation was off at creation: the drop is then
    /// a no-op, the clock was never read, and no id was allocated.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    meta: SpanMeta,
    start: Instant,
}

impl Span {
    /// The span's process-unique id, for re-parenting child spans across
    /// thread hops with [`span_under`]. `None` when instrumentation was
    /// off at creation.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.meta.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            if open.last() == Some(&live.meta.id) {
                open.pop();
            }
        });
        let nanos = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        metrics().record_duration(live.meta.name, nanos);
        if N_OBSERVERS.load(Ordering::Acquire) > 0 {
            let start_micros = live.start.saturating_duration_since(anchor()).as_secs_f64() * 1e6;
            with_observers(|obs| obs.exit(&live.meta, start_micros, nanos));
        }
    }
}

/// Opens a span for `name` (use the constants in [`crate::stages`]).
/// Hold the returned guard for the duration of the stage. The parent is
/// the innermost span still open on this thread.
pub fn span(name: &'static str) -> Span {
    span_inner(name, None, None)
}

/// Like [`span`] but tagged with an index (shard number, experiment
/// number) that observers show as `name#index`.
pub fn span_indexed(name: &'static str, index: usize) -> Span {
    span_inner(name, Some(index), None)
}

/// Opens a span under an explicit parent id (from [`Span::id`]), for
/// work running on a different thread than its logical parent. `None`
/// falls back to the thread-local parent, so callers can pass through
/// whatever the enclosing span returned.
pub fn span_under(name: &'static str, parent: Option<u64>) -> Span {
    span_inner(name, None, parent)
}

fn span_inner(name: &'static str, index: Option<usize>, parent: Option<u64>) -> Span {
    // Keep the heartbeat's stage label current even when no span
    // consumer is installed — the probe is its own opt-in switch.
    if crate::stages::is_phase(name) {
        if let Some(probe) = crate::progress::progress_if_active() {
            probe.set_stage(name);
        }
    }
    let live = enabled() || N_OBSERVERS.load(Ordering::Acquire) > 0;
    if !live {
        return Span { live: None };
    }
    // Anchor before the start timestamp so start_micros is never negative.
    anchor();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let meta = SpanMeta {
        name,
        index,
        id,
        parent: parent.or_else(|| OPEN.with(|open| open.borrow().last().copied())),
        tid: TID.with(|t| *t),
    };
    OPEN.with(|open| open.borrow_mut().push(id));
    if N_OBSERVERS.load(Ordering::Acquire) > 0 {
        with_observers(|obs| obs.enter(&meta));
    }
    Span {
        live: Some(LiveSpan {
            meta,
            start: Instant::now(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages;
    use std::sync::Mutex;

    struct Recording {
        exits: Mutex<Vec<(String, Option<u64>, u64)>>,
    }

    impl SpanObserver for Recording {
        fn exit(&self, span: &SpanMeta, _start_micros: f64, _nanos: u64) {
            self.exits
                .lock()
                .unwrap()
                .push((span.name.to_string(), span.parent, span.id));
        }
    }

    #[test]
    fn every_observer_sees_spans_and_parents_nest() {
        let first = Arc::new(Recording {
            exits: Mutex::new(Vec::new()),
        });
        let second = Arc::new(Recording {
            exits: Mutex::new(Vec::new()),
        });
        add_observer(first.clone());
        add_observer(second.clone());

        let (outer_id, explicit_child);
        {
            let outer = span(stages::CHARACTERIZE);
            outer_id = outer.id().expect("observer installed, span is live");
            drop(span(stages::A_SWEEP)); // nested: parent = outer
            explicit_child = span_under(stages::A_PRIORITIES, Some(outer_id));
            drop(explicit_child);
        }

        for obs in [&first, &second] {
            let exits = obs.exits.lock().unwrap();
            let find = |name: &str| {
                exits
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .unwrap_or_else(|| panic!("missing exit for {name}"))
                    .clone()
            };
            assert_eq!(find(stages::A_SWEEP).1, Some(outer_id), "nested parent");
            assert_eq!(
                find(stages::A_PRIORITIES).1,
                Some(outer_id),
                "explicit parent"
            );
            assert_eq!(find(stages::CHARACTERIZE).2, outer_id);
        }
        // Sibling spans after the tree closed have no parent.
        drop(span(stages::WRITE));
        let exits = first.exits.lock().unwrap();
        let write = exits.iter().find(|(n, _, _)| n == stages::WRITE).unwrap();
        assert_eq!(write.1, None, "top-level span must not inherit a parent");
    }
}
