//! The crash flight recorder: a fixed-size lock-free ring of recent
//! span open/close events plus the last heartbeats, dumped as a
//! `cgc-flightrec/v1` JSON when the process dies unexpectedly.
//!
//! Long nightly runs that crash (or are killed by the chaos harness's
//! `--die-after`) used to leave nothing but a truncated log. With a
//! flight recorder installed ([`install_flight_recorder`]), a panic,
//! SIGTERM, or SIGINT instead writes one JSON document containing:
//!
//! * the last [`SPAN_RING`] span enter/exit events (stage, span id,
//!   parent, shard index, thread, timestamp, duration),
//! * the last [`HEARTBEAT_RING`] heartbeat records (the metric deltas
//!   leading up to the death),
//! * a full [`PipelineCounters`] snapshot at dump time,
//! * the dump reason (`"panic"` / `"signal"` / caller-supplied).
//!
//! # Lock-freedom and signal safety
//!
//! Span events land in a seqlock-style ring of plain atomics: a writer
//! claims a ticket with one `fetch_add`, marks the slot odd, stores the
//! fields, and marks it even. Writers never block — not on each other
//! and not on a concurrent dump; a reader that observes an odd or
//! changed sequence number simply skips that slot. The dump is
//! *best-effort by design*: it runs on the panic path and inside signal
//! handlers, so it takes no blocking locks (`try_lock` on the path and
//! heartbeat state, skipping what it cannot get), guards against
//! re-entry with an atomic flag, and writes the file with a local
//! create-temp → fsync → rename so a crash mid-dump can never leave a
//! half-written artifact at the target path. The signal handler path is
//! not strictly async-signal-safe (it allocates while serializing); the
//! trade — a best-effort post-mortem versus guaranteed silence — is
//! deliberate and documented in DESIGN.md §13.
//!
//! The observability contract holds here too: recording is driven by
//! the span-observer fan-out, reads nothing the pipeline branches on,
//! and a run with the recorder armed emits bit-identical artifacts
//! (pinned in `tests/determinism.rs`).

use crate::metrics::{metrics, PipelineCounters};
use crate::span::micros_since_anchor;
use crate::{HeartbeatRecord, SpanMeta, SpanObserver};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Schema tag of every dump.
pub const FLIGHTREC_SCHEMA: &str = "cgc-flightrec/v1";

/// Span-event ring capacity. 256 events ≈ the last few pipeline stages
/// even with per-shard spans fanning out; sized so the whole ring is a
/// few tens of KB of atomics, cheap enough to exist unconditionally.
pub const SPAN_RING: usize = 256;

/// Heartbeat ring capacity: at the default 1 s interval, the last
/// half-minute of metric deltas.
pub const HEARTBEAT_RING: usize = 32;

const KIND_ENTER: u64 = 0;
const KIND_EXIT: u64 = 1;
/// `parent`/`index`/`dur_nanos` sentinel for "absent".
const NONE: u64 = u64::MAX;

/// One seqlock slot. `seq` is `2*ticket + 1` while the writer is
/// mid-store and `2*ticket + 2` once the fields are consistent; 0 means
/// never written.
struct SpanSlot {
    seq: AtomicU64,
    kind: AtomicU64,
    stage: AtomicUsize,
    id: AtomicU64,
    parent: AtomicU64,
    index: AtomicU64,
    tid: AtomicU64,
    at_micros: AtomicU64,
    dur_nanos: AtomicU64,
}

impl SpanSlot {
    const fn new() -> Self {
        SpanSlot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            stage: AtomicUsize::new(0),
            id: AtomicU64::new(0),
            parent: AtomicU64::new(NONE),
            index: AtomicU64::new(NONE),
            tid: AtomicU64::new(0),
            at_micros: AtomicU64::new(0),
            dur_nanos: AtomicU64::new(NONE),
        }
    }
}

static RING: [SpanSlot; SPAN_RING] = [const { SpanSlot::new() }; SPAN_RING];
/// Total span events ever recorded; `HEAD % SPAN_RING` is the next slot.
static HEAD: AtomicU64 = AtomicU64::new(0);

/// Recent heartbeats, pushed by the sampler thread. A plain mutex is
/// fine here — the writer is one low-rate thread, and the dump path
/// only `try_lock`s.
static HEARTBEATS: Mutex<Vec<HeartbeatRecord>> = Mutex::new(Vec::new());

/// Dump destination, set by [`install_flight_recorder`].
static TARGET: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Re-entry guard: a panic inside the dump (or a signal landing during
/// one) must not recurse into a second dump.
static DUMPING: AtomicBool = AtomicBool::new(false);

fn record(kind: u64, span: &SpanMeta, at_micros: f64, dur_nanos: Option<u64>) {
    let ticket = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &RING[(ticket % SPAN_RING as u64) as usize];
    slot.seq.store(2 * ticket + 1, Ordering::Release);
    slot.kind.store(kind, Ordering::Relaxed);
    slot.stage
        .store(crate::stages::slot(span.name), Ordering::Relaxed);
    slot.id.store(span.id, Ordering::Relaxed);
    slot.parent
        .store(span.parent.unwrap_or(NONE), Ordering::Relaxed);
    slot.index
        .store(span.index.map_or(NONE, |i| i as u64), Ordering::Relaxed);
    slot.tid.store(span.tid, Ordering::Relaxed);
    slot.at_micros
        .store(at_micros.max(0.0) as u64, Ordering::Relaxed);
    slot.dur_nanos
        .store(dur_nanos.unwrap_or(NONE), Ordering::Relaxed);
    slot.seq.store(2 * ticket + 2, Ordering::Release);
}

/// The observer [`install_flight_recorder`] wires into the span fan-out.
struct FlightRecorderObserver;

impl SpanObserver for FlightRecorderObserver {
    fn enter(&self, span: &SpanMeta) {
        record(KIND_ENTER, span, micros_since_anchor(), None);
    }

    fn exit(&self, span: &SpanMeta, start_micros: f64, nanos: u64) {
        record(KIND_EXIT, span, start_micros, Some(nanos));
    }
}

/// One span event as serialized into a dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanEventRecord {
    /// Global event ticket (monotone; gaps mean the ring lapped).
    pub ticket: u64,
    /// `"enter"` or `"exit"`.
    pub kind: String,
    /// Stage name (one of [`crate::stages::ALL`]).
    pub stage: String,
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Shard / experiment index, if the span carried one.
    pub index: Option<u64>,
    /// Dense id of the thread that opened the span.
    pub tid: u64,
    /// Microseconds since the span anchor (enter time for enters, start
    /// time for exits).
    pub at_micros: u64,
    /// Span duration; only on `"exit"` events.
    pub dur_nanos: Option<u64>,
}

/// The `cgc-flightrec/v1` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Format tag, [`FLIGHTREC_SCHEMA`].
    pub schema: String,
    /// Why the dump happened: `"panic"`, `"signal"`, `"die-after"`, …
    pub reason: String,
    /// Free-form context (panic message, signal number).
    pub detail: String,
    /// Wall-clock dump time, milliseconds since the unix epoch.
    pub wall_unix_ms: u64,
    /// Total span events recorded process-wide (≥ `spans.len()`; the
    /// difference is what the ring evicted).
    pub spans_seen: u64,
    /// The retained span events, oldest first.
    pub spans: Vec<SpanEventRecord>,
    /// The retained heartbeats, oldest first.
    pub heartbeats: Vec<HeartbeatRecord>,
    /// Counter snapshot at dump time.
    pub counters: PipelineCounters,
}

/// Installs the flight recorder: span events start landing in the ring,
/// the crash hooks are armed, and dumps go to `path`. Calling again
/// retargets the dump path without installing a second observer.
pub fn install_flight_recorder(path: &Path) {
    if let Ok(mut target) = TARGET.lock() {
        *target = Some(path.to_path_buf());
    }
    static OBSERVER: Once = Once::new();
    OBSERVER.call_once(|| crate::add_observer(Arc::new(FlightRecorderObserver)));
    install_crash_hook();
}

/// Arms the panic hook and (unix) SIGTERM/SIGINT handlers. Idempotent.
/// On crash the hooks dump the flight record (if a target is installed)
/// and then flush every span observer, so a `CGC_TRACE_OUT` Chrome
/// trace survives as a truncated-but-valid JSON array. The previous
/// panic hook is chained, not replaced.
pub fn install_crash_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let detail = info.to_string();
            let _ = dump_flight_record("panic", &detail);
            crate::flush_observers();
            prev(info);
        }));
        #[cfg(unix)]
        install_signal_handlers();
    });
}

#[cfg(unix)]
extern "C" fn on_fatal_signal(sig: i32) {
    // Best-effort, documented as not strictly async-signal-safe; see
    // the module docs.
    let _ = dump_flight_record("signal", &format!("signal {sig}"));
    crate::flush_observers();
    unsafe {
        signal(sig, SIG_DFL);
        raise(sig);
    }
}

#[cfg(unix)]
const SIG_DFL: usize = 0;
#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

// std already links the platform libc; declaring these directly avoids
// pulling a libc crate into the std-only observability layer.
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(sig: i32) -> i32;
}

#[cfg(unix)]
fn install_signal_handlers() {
    unsafe {
        let handler = on_fatal_signal as extern "C" fn(i32) as *const () as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Pushes one heartbeat into the retained ring (called by the sampler
/// thread for every emitted record).
pub(crate) fn note_heartbeat(record: HeartbeatRecord) {
    if let Ok(mut hb) = HEARTBEATS.lock() {
        if hb.len() == HEARTBEAT_RING {
            hb.remove(0);
        }
        hb.push(record);
    }
}

/// Reads every consistent slot out of the span ring, oldest first.
/// Slots a writer is mid-store on (odd or changed seq) are skipped.
fn collect_spans() -> Vec<SpanEventRecord> {
    let mut events: Vec<(u64, SpanEventRecord)> = Vec::with_capacity(SPAN_RING);
    for slot in &RING {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq % 2 == 1 {
            continue;
        }
        let kind = slot.kind.load(Ordering::Relaxed);
        let stage = slot.stage.load(Ordering::Relaxed);
        let id = slot.id.load(Ordering::Relaxed);
        let parent = slot.parent.load(Ordering::Relaxed);
        let index = slot.index.load(Ordering::Relaxed);
        let tid = slot.tid.load(Ordering::Relaxed);
        let at_micros = slot.at_micros.load(Ordering::Relaxed);
        let dur_nanos = slot.dur_nanos.load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != seq {
            continue; // torn: a writer lapped us mid-read
        }
        let ticket = (seq - 2) / 2;
        events.push((
            ticket,
            SpanEventRecord {
                ticket,
                kind: if kind == KIND_ENTER { "enter" } else { "exit" }.to_string(),
                stage: crate::stages::ALL
                    .get(stage)
                    .copied()
                    .unwrap_or(crate::stages::OTHER)
                    .to_string(),
                id,
                parent: (parent != NONE).then_some(parent),
                index: (index != NONE).then_some(index),
                tid,
                at_micros,
                dur_nanos: (dur_nanos != NONE).then_some(dur_nanos),
            },
        ));
    }
    events.sort_by_key(|(ticket, _)| *ticket);
    events.into_iter().map(|(_, e)| e).collect()
}

/// Builds and atomically writes the flight record, returning the path
/// written. `None` when no target is installed, a dump is already in
/// flight, or the write failed — the crash path must never turn into a
/// second failure.
pub fn dump_flight_record(reason: &str, detail: &str) -> Option<PathBuf> {
    if DUMPING.swap(true, Ordering::SeqCst) {
        return None;
    }
    let result = dump_inner(reason, detail);
    DUMPING.store(false, Ordering::SeqCst);
    result
}

fn dump_inner(reason: &str, detail: &str) -> Option<PathBuf> {
    let path = TARGET.try_lock().ok()?.clone()?;
    let record = FlightRecord {
        schema: FLIGHTREC_SCHEMA.to_string(),
        reason: reason.to_string(),
        detail: detail.to_string(),
        wall_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64),
        spans_seen: HEAD.load(Ordering::Relaxed),
        spans: collect_spans(),
        heartbeats: HEARTBEATS
            .try_lock()
            .map(|hb| hb.clone())
            .unwrap_or_default(),
        counters: metrics().snapshot().counters,
    };
    let json = serde_json::to_string_pretty(&record).ok()?;
    write_atomic_local(&path, json.as_bytes()).ok()?;
    metrics().flight_record_dumps.add(1);
    Some(path)
}

/// create-temp → fsync → rename in the target's directory. Local to
/// this crate: `cgc-trace` (which owns the shared `write_atomic`)
/// depends on `cgc-obs`, so the dependency cannot point the other way.
fn write_atomic_local(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages;

    #[test]
    fn ring_records_spans_and_dump_round_trips() {
        let _guard = crate::test_guard();
        let path = std::env::temp_dir().join(format!("cgc-flightrec-{}.json", std::process::id()));
        install_flight_recorder(&path);
        install_flight_recorder(&path); // idempotent: one observer

        let seen_before = HEAD.load(Ordering::Relaxed);
        {
            let _outer = crate::span(stages::SIMULATE);
            drop(crate::span_indexed(stages::SHARD, 3));
        }
        assert!(
            HEAD.load(Ordering::Relaxed) >= seen_before + 4,
            "two spans produce two enters and two exits"
        );

        let written = dump_flight_record("test", "unit test dump").expect("dump written");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let _ = std::fs::remove_file(&path);
        let rec: FlightRecord = serde_json::from_str(&text).expect("dump parses");
        assert_eq!(rec.schema, FLIGHTREC_SCHEMA);
        assert_eq!(rec.reason, "test");
        assert!(rec.spans_seen >= 4);
        assert!(!rec.spans.is_empty());
        for pair in rec.spans.windows(2) {
            assert!(pair[0].ticket < pair[1].ticket, "events sorted by ticket");
        }
        let shard_exit = rec
            .spans
            .iter()
            .find(|e| e.stage == stages::SHARD && e.kind == "exit")
            .expect("shard exit retained");
        assert_eq!(shard_exit.index, Some(3));
        assert!(shard_exit.dur_nanos.is_some());
        let shard_enter = rec
            .spans
            .iter()
            .find(|e| e.stage == stages::SHARD && e.kind == "enter")
            .expect("shard enter retained");
        assert_eq!(shard_enter.dur_nanos, None);
        assert_eq!(shard_enter.id, shard_exit.id);

        // Without a target installed, dumping reports nothing (and must
        // not error) — the state every binary is in by default.
        *TARGET.lock().unwrap() = None;
        assert_eq!(dump_flight_record("test", "no target"), None);
    }

    #[test]
    fn heartbeat_ring_is_bounded() {
        let _guard = crate::test_guard();
        HEARTBEATS.lock().unwrap().clear();
        for seq in 0..(HEARTBEAT_RING as u64 + 10) {
            note_heartbeat(HeartbeatRecord {
                schema: crate::HEARTBEAT_SCHEMA.to_string(),
                seq,
                wall_ms: seq,
                stage: "idle".to_string(),
                completion: None,
                eta_seconds: None,
                tasks_per_s: 0.0,
                events_per_s: 0.0,
                samples_per_s: 0.0,
                events_total: 0,
                samples_total: 0,
                rss_bytes: 0,
            });
        }
        let hb = HEARTBEATS.lock().unwrap();
        assert_eq!(hb.len(), HEARTBEAT_RING);
        assert_eq!(hb[0].seq, 10, "oldest evicted first");
        drop(hb);
        HEARTBEATS.lock().unwrap().clear();
    }
}
