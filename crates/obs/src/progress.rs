//! The live progress probe: cheap shared state the heartbeat sampler
//! reads while a simulation is running.
//!
//! The simulator's hot loop cannot afford locks, clocks, or anything
//! that could perturb determinism — so progress is published through a
//! process-global [`ProgressProbe`] of relaxed atomics: one sim-time
//! watermark and one event/sample tally per shard slot, a horizon, and
//! the name of the pipeline stage currently executing. Writers store and
//! add; they never read, branch on, or synchronize through the probe, so
//! enabling it can never change simulator output (pinned, like every
//! other observability surface, by `tests/determinism.rs`).
//!
//! The probe is *advisory*: readers (the heartbeat thread) see values
//! that are each individually atomic but mutually unsynchronized. That
//! is exactly right for a progress display and exactly wrong for
//! accounting — exact totals live in [`crate::PipelineMetrics`].
//!
//! Like the metrics registry, the probe is off by default and costs one
//! relaxed load per engine-run check when disabled: the engine captures
//! [`progress_if_active`] once per run, so the per-event cost is a
//! `None` branch, not even an atomic load.

use crate::metrics::MAX_SHARD_SLOTS;
use crate::stages;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Process-global progress state; see the module docs. Obtain it with
/// [`progress`].
pub struct ProgressProbe {
    enabled: AtomicBool,
    /// Sim-time horizon of the current run, seconds (0 = no run yet).
    horizon: AtomicU64,
    /// Shard count of the current run, clamped to [`MAX_SHARD_SLOTS`].
    shards: AtomicUsize,
    /// Index into [`stages::ALL`] of the last top-level phase entered;
    /// `stages::ALL.len()` means no phase has run yet.
    stage: AtomicUsize,
    /// Per-shard sim-time watermark of the current run, seconds.
    watermark: [AtomicU64; MAX_SHARD_SLOTS],
    /// Per-shard events processed, cumulative across runs.
    events: [AtomicU64; MAX_SHARD_SLOTS],
    /// Per-shard usage samples recorded, cumulative across runs.
    samples: [AtomicU64; MAX_SHARD_SLOTS],
}

static PROBE: ProgressProbe = ProgressProbe::new();

/// The process-global progress probe.
pub fn progress() -> &'static ProgressProbe {
    &PROBE
}

/// The probe when enabled, `None` otherwise — the one check an engine
/// run performs, hoisting the per-event cost down to a `None` branch.
#[inline]
pub fn progress_if_active() -> Option<&'static ProgressProbe> {
    PROBE.enabled.load(Relaxed).then_some(&PROBE)
}

impl ProgressProbe {
    const fn new() -> Self {
        ProgressProbe {
            enabled: AtomicBool::new(false),
            horizon: AtomicU64::new(0),
            shards: AtomicUsize::new(0),
            stage: AtomicUsize::new(stages::ALL.len()),
            watermark: [const { AtomicU64::new(0) }; MAX_SHARD_SLOTS],
            events: [const { AtomicU64::new(0) }; MAX_SHARD_SLOTS],
            samples: [const { AtomicU64::new(0) }; MAX_SHARD_SLOTS],
        }
    }

    /// Turns the probe on or off (off by default). The heartbeat layer
    /// owns this switch; writers gate on it once per engine run.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Whether the probe is currently collecting.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Announces a simulation run: its sim-time horizon and shard count.
    /// Watermarks reset to zero; event/sample tallies are cumulative
    /// across runs (rates come from deltas, so resets would only create
    /// negative-rate glitches). No-op while disabled.
    pub fn begin_run(&self, horizon: u64, shards: usize) {
        if !self.enabled() {
            return;
        }
        let shards = shards.clamp(1, MAX_SHARD_SLOTS);
        for w in &self.watermark[..shards] {
            w.store(0, Relaxed);
        }
        self.shards.store(shards, Relaxed);
        self.horizon.store(horizon, Relaxed);
    }

    /// One simulator event processed at sim-time `t` on `shard`.
    #[inline]
    pub fn on_event(&self, shard: usize, t: u64) {
        let slot = shard.min(MAX_SHARD_SLOTS - 1);
        self.watermark[slot].store(t, Relaxed);
        self.events[slot].fetch_add(1, Relaxed);
    }

    /// `n` usage samples recorded on `shard`.
    #[inline]
    pub fn on_samples(&self, shard: usize, n: u64) {
        self.samples[shard.min(MAX_SHARD_SLOTS - 1)].fetch_add(n, Relaxed);
    }

    /// A shard finished its run: snap its watermark to the horizon so
    /// the completion fraction reaches 1.0 even though the last event
    /// fired earlier.
    pub fn shard_done(&self, shard: usize, horizon: u64) {
        self.watermark[shard.min(MAX_SHARD_SLOTS - 1)].store(horizon, Relaxed);
    }

    /// Records the pipeline phase currently executing (called from span
    /// creation for the top-level stages; last phase entered wins).
    pub(crate) fn set_stage(&self, name: &str) {
        self.stage.store(stages::slot(name), Relaxed);
    }

    /// Name of the last top-level phase entered, `None` before any ran.
    pub fn stage_name(&self) -> Option<&'static str> {
        stages::ALL.get(self.stage.load(Relaxed)).copied()
    }

    /// Completion fraction of the current simulation run: the *minimum*
    /// over shards of `watermark / horizon` (the run is only as done as
    /// its slowest shard), clamped to `[0, 1]`. `None` before any run
    /// was announced — and `None` while disarmed, so a stale horizon
    /// from a previous armed session never reads as live progress.
    pub fn completion(&self) -> Option<f64> {
        if !self.enabled() {
            return None;
        }
        let horizon = self.horizon.load(Relaxed);
        let shards = self.shards.load(Relaxed);
        if horizon == 0 || shards == 0 {
            return None;
        }
        let slowest = self.watermark[..shards]
            .iter()
            .map(|w| w.load(Relaxed))
            .min()
            .unwrap_or(0);
        Some((slowest as f64 / horizon as f64).clamp(0.0, 1.0))
    }

    /// Events processed, summed over shards, cumulative across runs.
    pub fn events_total(&self) -> u64 {
        self.events.iter().map(|e| e.load(Relaxed)).sum()
    }

    /// Usage samples recorded, summed over shards, cumulative across
    /// runs.
    pub fn samples_total(&self) -> u64 {
        self.samples.iter().map(|s| s.load(Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns all assertions: the probe is process-global, and
    /// parallel test threads would interleave their stores.
    #[test]
    fn probe_gating_completion_and_totals() {
        let _guard = crate::test_guard();
        let p = progress();
        p.set_enabled(false);

        // Stage tracking: last phase entered wins; unknown names fold
        // into OTHER like the timing slots do. Asserted while the probe
        // is disabled, so concurrent tests creating spans cannot write
        // the stage slot (span creation gates on the probe switch).
        p.set_stage(stages::SIMULATE);
        assert_eq!(p.stage_name(), Some(stages::SIMULATE));
        p.set_stage("no-such-stage");
        assert_eq!(p.stage_name(), Some(stages::OTHER));

        p.begin_run(100, 2);
        assert_eq!(p.completion(), None, "disabled probe must not arm");
        assert!(progress_if_active().is_none());

        p.set_enabled(true);
        assert!(progress_if_active().is_some());
        p.begin_run(100, 2);
        assert_eq!(p.completion(), Some(0.0));

        // Completion tracks the slowest shard.
        p.on_event(0, 80);
        assert_eq!(p.completion(), Some(0.0), "shard 1 has not moved");
        p.on_event(1, 40);
        assert_eq!(p.completion(), Some(0.4));
        let events_before = p.events_total();
        assert!(events_before >= 2);

        // shard_done snaps to the horizon; a post-horizon watermark
        // clamps to 1.0.
        p.shard_done(0, 100);
        p.on_event(1, 250);
        assert_eq!(p.completion(), Some(1.0));

        // Tallies are cumulative across runs; a new run only resets
        // watermarks (and with them the completion fraction). Deltas,
        // not absolutes: earlier armed sessions may have tallied too.
        let samples_before = p.samples_total();
        p.on_samples(0, 7);
        p.on_samples(1, 3);
        assert_eq!(p.samples_total(), samples_before + 10);
        p.begin_run(50, 1);
        assert_eq!(p.completion(), Some(0.0));
        assert_eq!(
            p.samples_total(),
            samples_before + 10,
            "tallies survive begin_run"
        );
        assert!(p.events_total() >= events_before);

        // Shard indices beyond the slot array fold into the last slot
        // instead of indexing out of bounds.
        p.on_event(MAX_SHARD_SLOTS + 3, 1);
        p.on_samples(MAX_SHARD_SLOTS + 3, 1);

        p.set_enabled(false);
    }
}
