//! Structured ingest diagnostics.
//!
//! Lenient trace parsing produces one warning per skipped line. Instead
//! of every caller dropping that list on the floor, [`Diagnostics`]
//! collects the warnings with their source label and renders them two
//! ways: a one-line `skipped N lines (first: …)` summary for normal
//! output, and a per-category table for `--metrics`-style deep dives.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One skipped input line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestWarning {
    /// 1-based line number in the source.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for IngestWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// A sink of ingest warnings for one source (a file path, `<stdin>`, a
/// synthetic label).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Label of the input these warnings came from.
    pub source: String,
    /// Skipped lines, in input order.
    pub warnings: Vec<IngestWarning>,
}

impl Diagnostics {
    /// An empty sink for the named source.
    pub fn new(source: impl Into<String>) -> Self {
        Diagnostics {
            source: source.into(),
            warnings: Vec::new(),
        }
    }

    /// Records one skipped line.
    pub fn record(&mut self, line: usize, message: impl Into<String>) {
        self.warnings.push(IngestWarning {
            line,
            message: message.into(),
        });
    }

    /// Number of warnings recorded.
    pub fn len(&self) -> usize {
        self.warnings.len()
    }

    /// Whether no warnings were recorded.
    pub fn is_empty(&self) -> bool {
        self.warnings.is_empty()
    }

    /// The `skipped N lines (first: …)` one-liner, or `None` when clean.
    pub fn summary(&self) -> Option<String> {
        let first = self.warnings.first()?;
        Some(format!(
            "{}: skipped {} line{} (first: line {}: {})",
            self.source,
            self.warnings.len(),
            if self.warnings.len() == 1 { "" } else { "s" },
            first.line,
            first.message
        ))
    }

    /// A per-category table: warnings grouped by their message shape
    /// (digits and quoted payloads normalized away), with a count and
    /// an example line per category, most frequent first.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.warnings.is_empty() {
            let _ = writeln!(out, "{}: no ingest warnings", self.source);
            return out;
        }
        // (category, count, first line) preserving first-seen order for
        // equal counts so output is deterministic.
        let mut categories: Vec<(String, usize, usize)> = Vec::new();
        for w in &self.warnings {
            let cat = categorize(&w.message);
            match categories.iter_mut().find(|(c, _, _)| *c == cat) {
                Some((_, n, _)) => *n += 1,
                None => categories.push((cat, 1, w.line)),
            }
        }
        categories.sort_by_key(|c| std::cmp::Reverse(c.1));
        let _ = writeln!(
            out,
            "{}: {} skipped line{}",
            self.source,
            self.warnings.len(),
            if self.warnings.len() == 1 { "" } else { "s" }
        );
        let _ = writeln!(out, "  {:>6}  {:>10}  category", "count", "first line");
        for (cat, count, line) in &categories {
            let _ = writeln!(out, "  {count:>6}  {line:>10}  {cat}");
        }
        out
    }
}

/// Normalizes a warning message into its category: digit runs collapse
/// to `N`, quoted payloads to `"…"`, so `task id 7 out of order` and
/// `task id 9 out of order` land in one bucket.
fn categorize(message: &str) -> String {
    let mut out = String::with_capacity(message.len());
    let mut chars = message.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            while chars
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || *c == '.')
            {
                chars.next();
            }
            out.push('N');
        } else if c == '"' {
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
            }
            out.push_str("\"…\"");
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut d = Diagnostics::new("trace.cgct");
        d.record(3, "machine id 7 out of order (expected 2)");
        d.record(9, "machine id 12 out of order (expected 2)");
        d.record(14, "unknown event kind \"explode\"");
        d
    }

    #[test]
    fn summary_names_first_warning() {
        let d = sample();
        let s = d.summary().unwrap();
        assert!(s.contains("skipped 3 lines"), "{s}");
        assert!(s.contains("first: line 3"), "{s}");
        assert!(Diagnostics::new("x").summary().is_none());
    }

    #[test]
    fn table_groups_by_category() {
        let table = sample().render_table();
        // The two out-of-order warnings collapse into one category.
        let row = table
            .lines()
            .find(|l| l.contains("machine id N out of order (expected N)"))
            .expect("category row present");
        assert!(row.split_whitespace().next() == Some("2"), "{row}");
        assert!(table.contains("unknown event kind \"…\""), "{table}");
    }

    #[test]
    fn empty_sink_renders_cleanly() {
        let d = Diagnostics::new("clean.cgct");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.render_table().contains("no ingest warnings"));
    }

    #[test]
    fn serde_round_trip() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn display_matches_parse_error_format() {
        let w = IngestWarning {
            line: 4,
            message: "bad".into(),
        };
        assert_eq!(w.to_string(), "line 4: bad");
    }
}
