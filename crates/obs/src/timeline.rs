//! Sim-time telemetry: timelines, queueing-delay histograms, and the
//! versioned export bundle.
//!
//! The simulator (and the trace replayer in `cgc-core`) sample cluster
//! state on a fixed **sim-time** grid — never wall clock — so a bundle is
//! a pure function of `(seed, config, interval)`: byte-identical however
//! many threads produced it. Per-shard bundles merge by element-wise
//! summation in shard order ([`TelemetryBundle::absorb`]), which keeps the
//! merged bundle deterministic too.
//!
//! The bundle is a self-describing JSON document (`schema` field, band
//! names spelled out) so external tooling can consume it without reading
//! this crate.

use crate::hist::LogHistogram;
use serde::{Deserialize, Serialize};

/// Priority bands, following the paper's three-way clustering of the 12
/// Google priorities (low 1–4, middle 5–8, high 9–12).
pub const NUM_BANDS: usize = 3;

/// Display names of the bands, index-aligned with every per-band array.
pub const BAND_NAMES: [&str; NUM_BANDS] = ["low", "middle", "high"];

/// Queue/run state at one sim-time tick, summed over shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Sim time of the tick, seconds.
    pub t: u64,
    /// Pending-queue depth per priority band.
    pub pending: [u64; NUM_BANDS],
    /// Tasks running across the fleet.
    pub running: u64,
    /// Events waiting in the simulator's event heap (0 in trace replays).
    pub heap_events: u64,
    /// `(task, machine)` pairs at or above the blacklist threshold
    /// (0 in trace replays).
    pub blacklisted: u64,
}

/// Free capacity at one sim-time tick, summed over up machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacitySample {
    /// Sim time of the tick, seconds.
    pub t: u64,
    /// Free CPU, in the fleet's processor units.
    pub free_cpu: f64,
    /// Free memory, in the fleet's normalized units.
    pub free_memory: f64,
}

/// Deterministic queueing-delay percentiles for one priority band, the
/// block `cgc-bench` embeds in `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDelayPercentiles {
    /// Band name (one of [`BAND_NAMES`]).
    pub band: String,
    /// Number of first placements observed in this band.
    pub samples: u64,
    /// Median queueing delay, seconds (0 when the band saw no task).
    pub p50: u64,
    /// 90th-percentile queueing delay, seconds.
    pub p90: u64,
    /// 99th-percentile queueing delay, seconds.
    pub p99: u64,
}

/// The versioned telemetry document: timeline, capacity series, and the
/// queueing histograms, as written by `--telemetry <path>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryBundle {
    /// Format tag, [`TelemetryBundle::SCHEMA`].
    pub schema: String,
    /// Where the numbers came from: `"simulation"` (engine probes, full
    /// fidelity) or `"trace-replay"` (reconstructed from a trace's event
    /// log; heap/blacklist sizes unavailable, capacity vs nominal).
    pub source: String,
    /// Sampling interval of the sim-time grid, seconds.
    pub interval: u64,
    /// Horizon the grid covers: ticks at `0, interval, … < horizon`.
    pub horizon: u64,
    /// Band names, index-aligned with `queue_delay` and
    /// `TimelineSample::pending`.
    pub bands: Vec<String>,
    /// Queue/run state per tick.
    pub timeline: Vec<TimelineSample>,
    /// Free capacity per tick.
    pub capacity: Vec<CapacitySample>,
    /// Per-band queueing delay: first submit → first placement, seconds.
    pub queue_delay: Vec<LogHistogram>,
    /// Resubmit wait: end of one attempt → start of the next, seconds.
    pub resubmit_wait: LogHistogram,
    /// Per-attempt run length: placement → completion, seconds.
    pub run_length: LogHistogram,
}

impl TelemetryBundle {
    /// Current schema tag of the exported JSON.
    pub const SCHEMA: &'static str = "cgc-telemetry/v1";

    /// An empty bundle over the given grid. `interval` is clamped to at
    /// least one second.
    pub fn new(source: &str, interval: u64, horizon: u64) -> Self {
        TelemetryBundle {
            schema: Self::SCHEMA.to_string(),
            source: source.to_string(),
            interval: interval.max(1),
            horizon,
            bands: BAND_NAMES.iter().map(|s| s.to_string()).collect(),
            timeline: Vec::new(),
            capacity: Vec::new(),
            queue_delay: vec![LogHistogram::new(); NUM_BANDS],
            resubmit_wait: LogHistogram::new(),
            run_length: LogHistogram::new(),
        }
    }

    /// Appends one tick to both series.
    pub fn push_tick(&mut self, timeline: TimelineSample, free_cpu: f64, free_memory: f64) {
        let t = timeline.t;
        self.timeline.push(timeline);
        self.capacity.push(CapacitySample {
            t,
            free_cpu,
            free_memory,
        });
    }

    /// Merges a shard's bundle into this one by element-wise summation.
    /// Callers absorb shards in shard-index order, so the merged floats
    /// are summed in a fixed order and the result stays deterministic.
    ///
    /// # Panics
    /// If the bundles disagree on interval or grid length (they never do
    /// for shards of one run).
    pub fn absorb(&mut self, other: &TelemetryBundle) {
        assert_eq!(self.interval, other.interval, "telemetry grid mismatch");
        assert_eq!(
            self.timeline.len(),
            other.timeline.len(),
            "telemetry tick-count mismatch"
        );
        for (mine, theirs) in self.timeline.iter_mut().zip(&other.timeline) {
            debug_assert_eq!(mine.t, theirs.t);
            for (p, q) in mine.pending.iter_mut().zip(&theirs.pending) {
                *p += q;
            }
            mine.running += theirs.running;
            mine.heap_events += theirs.heap_events;
            mine.blacklisted += theirs.blacklisted;
        }
        for (mine, theirs) in self.capacity.iter_mut().zip(&other.capacity) {
            mine.free_cpu += theirs.free_cpu;
            mine.free_memory += theirs.free_memory;
        }
        for (mine, theirs) in self.queue_delay.iter_mut().zip(&other.queue_delay) {
            mine.merge(theirs);
        }
        self.resubmit_wait.merge(&other.resubmit_wait);
        self.run_length.merge(&other.run_length);
    }

    /// The deterministic p50/p90/p99 queueing delay per band. Bands that
    /// saw no first placement report zeros with `samples: 0`.
    pub fn queue_delay_percentiles(&self) -> Vec<QueueDelayPercentiles> {
        self.queue_delay
            .iter()
            .enumerate()
            .map(|(i, h)| QueueDelayPercentiles {
                band: BAND_NAMES.get(i).copied().unwrap_or("other").to_string(),
                samples: h.count(),
                p50: h.percentile(0.50).unwrap_or(0),
                p90: h.percentile(0.90).unwrap_or(0),
                p99: h.percentile(0.99).unwrap_or(0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: u64, pending: [u64; NUM_BANDS], running: u64) -> TimelineSample {
        TimelineSample {
            t,
            pending,
            running,
            heap_events: running + 1,
            blacklisted: 0,
        }
    }

    #[test]
    fn absorb_sums_everything_elementwise() {
        let mut a = TelemetryBundle::new("simulation", 300, 600);
        a.push_tick(tick(0, [1, 0, 2], 3), 10.0, 20.0);
        a.push_tick(tick(300, [0, 1, 0], 1), 5.0, 5.0);
        a.queue_delay[0].record(10);
        a.resubmit_wait.record(60);

        let mut b = TelemetryBundle::new("simulation", 300, 600);
        b.push_tick(tick(0, [2, 2, 2], 1), 1.0, 2.0);
        b.push_tick(tick(300, [0, 0, 1], 0), 1.0, 1.0);
        b.queue_delay[0].record(30);
        b.run_length.record(900);

        a.absorb(&b);
        assert_eq!(a.timeline[0].pending, [3, 2, 4]);
        assert_eq!(a.timeline[0].running, 4);
        assert_eq!(a.timeline[1].pending, [0, 1, 1]);
        assert!((a.capacity[0].free_cpu - 11.0).abs() < 1e-12);
        assert!((a.capacity[1].free_memory - 6.0).abs() < 1e-12);
        assert_eq!(a.queue_delay[0].count(), 2);
        assert_eq!(a.resubmit_wait.count(), 1);
        assert_eq!(a.run_length.count(), 1);
    }

    #[test]
    #[should_panic(expected = "tick-count mismatch")]
    fn absorb_rejects_mismatched_grids() {
        let mut a = TelemetryBundle::new("simulation", 300, 600);
        a.push_tick(tick(0, [0; NUM_BANDS], 0), 0.0, 0.0);
        let b = TelemetryBundle::new("simulation", 300, 600);
        a.absorb(&b);
    }

    #[test]
    fn percentiles_cover_every_band_even_when_empty() {
        let mut b = TelemetryBundle::new("trace-replay", 60, 120);
        b.queue_delay[2].record(5);
        b.queue_delay[2].record(5);
        let p = b.queue_delay_percentiles();
        assert_eq!(p.len(), NUM_BANDS);
        assert_eq!(p[0].band, "low");
        assert_eq!((p[0].samples, p[0].p99), (0, 0));
        assert_eq!((p[2].samples, p[2].p50), (2, 5));
    }

    #[test]
    fn bundle_serde_round_trips() {
        let mut b = TelemetryBundle::new("simulation", 300, 900);
        b.push_tick(tick(0, [4, 5, 6], 7), 1.5, 2.5);
        b.queue_delay[1].record(12);
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back: TelemetryBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.schema, TelemetryBundle::SCHEMA);
    }
}
