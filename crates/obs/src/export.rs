//! Chrome Trace Event export: spans → Perfetto-loadable JSON.
//!
//! [`ChromeTraceWriter`] is a [`SpanObserver`] that appends one complete
//! (`"ph": "X"`) Trace Event per closed span to a JSON array on disk —
//! the format both `chrome://tracing` and <https://ui.perfetto.dev> load
//! directly. Install it via `CGC_TRACE_OUT=trace.json`
//! ([`crate::init_from_env`]) or [`crate::add_observer`]; call
//! [`crate::flush_observers`] (the binaries do, on exit) to close the
//! array so the file parses as strict JSON.
//!
//! Each event carries the span's timing (`ts`/`dur` in microseconds since
//! the process anchor), a per-thread track (`tid` is the span's dense
//! thread id, so shard spans land on the rayon worker that ran them), and
//! the span tree in `args`: the span `id`, its `parent` id, and the
//! `index` (shard number) when one was set. Events are written in
//! span-close order; trace viewers sort by `ts`, so no buffering or
//! sorting happens here — the writer holds one `Mutex<BufWriter>` and
//! never allocates per event beyond the formatted line.

use crate::span::{SpanMeta, SpanObserver};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

struct WriterState {
    out: BufWriter<File>,
    events: u64,
    closed: bool,
}

/// Writes closed spans as Chrome Trace Events; see the module docs.
pub struct ChromeTraceWriter {
    state: Mutex<WriterState>,
}

impl ChromeTraceWriter {
    /// Creates `path` (truncating) and writes the array opener plus one
    /// process-name metadata event.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        write!(
            out,
            "[{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"cgc\"}}}}",
            pid = std::process::id()
        )?;
        Ok(ChromeTraceWriter {
            state: Mutex::new(WriterState {
                out,
                events: 1,
                closed: false,
            }),
        })
    }

    /// Number of events written so far (including the metadata event).
    pub fn events_written(&self) -> u64 {
        self.state.lock().expect("trace writer poisoned").events
    }
}

impl SpanObserver for ChromeTraceWriter {
    fn exit(&self, span: &SpanMeta, start_micros: f64, nanos: u64) {
        // Stage names are static identifiers ([a-z/_#0-9]) and need no
        // JSON escaping; everything else is numeric.
        let mut line = String::with_capacity(160);
        let _ = write!(
            line,
            ",\n{{\"name\":\"{name}\",\"cat\":\"cgc\",\"ph\":\"X\",\"ts\":{ts:.3},\
             \"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"id\":{id}",
            name = span.name,
            ts = start_micros,
            dur = nanos as f64 / 1e3,
            pid = std::process::id(),
            tid = span.tid,
            id = span.id,
        );
        if let Some(parent) = span.parent {
            let _ = write!(line, ",\"parent\":{parent}");
        }
        if let Some(index) = span.index {
            let _ = write!(line, ",\"index\":{index}");
        }
        line.push_str("}}");

        let mut state = self.state.lock().expect("trace writer poisoned");
        if state.closed {
            return; // a span outlived the flush; dropping it keeps the JSON valid
        }
        if state.out.write_all(line.as_bytes()).is_ok() {
            state.events += 1;
        }
    }

    /// Closes the JSON array and flushes to disk. Idempotent; spans
    /// closing afterwards are dropped.
    fn flush(&self) {
        let mut state = self.state.lock().expect("trace writer poisoned");
        if !state.closed {
            state.closed = true;
            let _ = state.out.write_all(b"\n]\n");
        }
        let _ = state.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &'static str, id: u64, parent: Option<u64>) -> SpanMeta {
        SpanMeta {
            name,
            index: (name == "simulate/shard").then_some(2),
            id,
            parent,
            tid: 7,
        }
    }

    /// The Chrome Trace Event shape the writer must produce. Required
    /// fields (`name`/`ph`/`ts`) make deserialization itself the
    /// "every event has ph/ts/name" check.
    #[derive(serde::Deserialize)]
    struct Event {
        name: String,
        ph: String,
        #[allow(dead_code)]
        ts: f64,
        #[serde(default)]
        dur: f64,
        #[serde(default)]
        tid: u64,
        #[serde(default)]
        args: Option<Args>,
    }

    #[derive(serde::Deserialize)]
    struct Args {
        #[serde(default)]
        id: Option<u64>,
        #[serde(default)]
        parent: Option<u64>,
        #[serde(default)]
        index: Option<u64>,
    }

    #[test]
    fn written_file_is_valid_chrome_trace_json() {
        let path = std::env::temp_dir().join(format!("cgc-obs-export-{}.json", std::process::id()));
        let writer = ChromeTraceWriter::create(&path).expect("temp file creates");
        writer.exit(&meta("simulate", 1, None), 0.0, 2_000_000);
        writer.exit(&meta("simulate/shard", 2, Some(1)), 10.5, 1_500);
        writer.flush();
        writer.exit(&meta("write", 3, None), 99.0, 1); // after close: dropped
        writer.flush(); // idempotent

        let text = std::fs::read_to_string(&path).expect("trace file readable");
        let _ = std::fs::remove_file(&path);
        let events: Vec<Event> = serde_json::from_str(&text).expect("strict JSON array");
        assert_eq!(events.len(), 3, "metadata + two spans, late span dropped");
        let shard = events
            .iter()
            .find(|e| e.name == "simulate/shard")
            .expect("shard span exported");
        assert_eq!(shard.ph, "X");
        assert!((shard.dur - 1.5).abs() < 1e-9, "1500 ns = 1.5 us");
        assert_eq!(shard.tid, 7);
        let args = shard.args.as_ref().expect("span events carry args");
        assert_eq!(args.id, Some(2));
        assert_eq!(args.parent, Some(1));
        assert_eq!(args.index, Some(2));
    }
}
