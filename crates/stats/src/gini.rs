//! Gini coefficient of inequality.
//!
//! The paper mentions the joint ratio is "a kind of Gini coefficient"; we
//! provide the classic coefficient as well so analyses can report both.

/// Gini coefficient over non-negative values, in `[0, 1)`.
///
/// 0 means perfectly equal sizes; values near 1 mean the mass concentrates
/// in very few items. Returns 0.0 for empty or all-zero input.
pub fn gini(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|v| *v >= 0.0 && v.is_finite()),
        "gini inputs must be finite and non-negative"
    );
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by assertion"));
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 * Σ i*x_i) / (n * Σ x_i) - (n + 1) / n, with i in 1..=n.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_have_zero_gini() {
        assert!(gini(&[3.0; 10]).abs() < 1e-12);
    }

    #[test]
    fn total_concentration_approaches_one() {
        let mut xs = vec![0.0; 99];
        xs.push(100.0);
        let g = gini(&xs);
        assert!(g > 0.98, "g={g}");
    }

    #[test]
    fn known_small_case() {
        // Values 1,2,3: G = (2*(1+4+9))/(3*6) - 4/3 = 28/18 - 4/3 = 2/9.
        let g = gini(&[1.0, 2.0, 3.0]);
        assert!((g - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn order_invariant() {
        let a = gini(&[5.0, 1.0, 3.0]);
        let b = gini(&[1.0, 3.0, 5.0]);
        assert!((a - b).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bounded(xs in prop::collection::vec(0.0f64..1e4, 1..100)) {
            let g = gini(&xs);
            prop_assert!((-1e-9..1.0).contains(&g), "g={g}");
        }

        #[test]
        fn scale_invariant(xs in prop::collection::vec(0.1f64..1e3, 1..50), k in 0.1f64..100.0) {
            let scaled: Vec<f64> = xs.iter().map(|v| v * k).collect();
            prop_assert!((gini(&xs) - gini(&scaled)).abs() < 1e-9);
        }
    }
}
