//! Correlation between paired series.
//!
//! Used to quantify the paper's CPU-versus-memory observations: grid host
//! CPU and memory move together (both driven by the same long jobs), while
//! cloud CPU decouples from its memory because short interactive tasks
//! churn the CPU while services pin the memory.

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0.0 when either series is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation: Pearson over the ranks; robust to monotone
/// distortions and heavy tails.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks (ties get the average of their positions).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("NaN not supported in ranks")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_near_zero() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 101) as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i * 104729) % 97) as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_ignores_monotone_distortion() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let distorted: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &distorted) - 1.0).abs() < 1e-12);
        // Pearson degrades under the same distortion.
        assert!(pearson(&xs, &distorted) < 0.95);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[2.0, 1.0, 2.0, 3.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// |r| <= 1 always.
        #[test]
        fn bounded(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!(pearson(&xs, &ys).abs() <= 1.0 + 1e-9);
            prop_assert!(spearman(&xs, &ys).abs() <= 1.0 + 1e-9);
        }

        /// Correlation is symmetric.
        #[test]
        fn symmetric(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..60)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-9);
        }

        /// Pearson is invariant under positive affine maps.
        #[test]
        fn affine_invariant(pairs in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 3..60),
                            a in 0.1f64..10.0, b in -5.0f64..5.0) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            prop_assert!((pearson(&xs, &ys) - pearson(&xs2, &ys)).abs() < 1e-6);
        }
    }
}
