//! Statistics toolkit for workload and host-load characterization.
//!
//! Implements every statistical instrument used by the CLUSTER'12
//! cloud-vs-grid paper:
//!
//! * empirical CDFs and quantiles ([`ecdf`]),
//! * histograms / empirical PDFs ([`histogram`]),
//! * **mass–count disparity** with joint ratio and mm-distance
//!   ([`masscount`]) — the paper's main heavy-tail summary,
//! * Jain's fairness index ([`fairness`]) for submission-rate stability,
//! * the Gini coefficient ([`gini`](mod@gini)),
//! * moving-mean filtering and noise extraction ([`filter`]) used for the
//!   "Google load is 20× noisier" comparison,
//! * autocorrelation ([`autocorr`]),
//! * run-length analysis of quantized level series ([`runlength`]) behind
//!   Tables II/III and Fig. 9,
//! * fixed-window event binning ([`binning`]) for jobs-per-hour rates,
//! * scalar summaries ([`summary`]),
//! * streaming accumulators and curve decimation ([`stream`]) for the
//!   out-of-core analysis mode.
//!
//! All functions are pure and operate on plain slices so they can be used
//! on any data source, not just traces.

pub mod autocorr;
pub mod binning;
pub mod correlation;
pub mod ecdf;
pub mod fairness;
pub mod filter;
pub mod fit;
pub mod gini;
pub mod histogram;
pub mod ks;
pub mod masscount;
pub mod periodicity;
pub mod runlength;
pub mod stream;
pub mod summary;

pub use autocorr::{autocorrelation, mean_autocorrelation, mean_autocorrelation_reference};
pub use binning::counts_per_window;
pub use correlation::{pearson, spearman};
pub use ecdf::Ecdf;
pub use fairness::{jain_fairness, jain_fairness_counts};
pub use filter::{mean_filter, noise_series, noise_std};
pub use fit::{fit_all, fit_exponential, fit_lognormal, fit_pareto, FitReport, FittedModel};
pub use gini::gini;
pub use histogram::Histogram;
pub use ks::{ks_against_quantiles, ks_distance};
pub use masscount::{MassCount, MassCountSummary};
pub use periodicity::{diurnal_strength, period_power, periodogram};
pub use runlength::{durations_by_level, run_lengths, LevelQuantizer, Run};
pub use stream::{decimate, Reservoir, StreamingSummary};
pub use summary::Summary;
