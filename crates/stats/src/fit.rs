//! Maximum-likelihood distribution fitting and model selection.
//!
//! Workload modeling (the Feitelson methodology the paper's mass–count
//! analysis comes from) routinely asks which closed-form family best
//! describes a marginal: exponential (memoryless), log-normal
//! (multiplicative), or Pareto (heavy-tailed). This module fits all three
//! by MLE, scores them by AIC, and reports the KS distance between the
//! fitted CDF and the empirical one.

use crate::ecdf::Ecdf;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A fitted distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FittedModel {
    /// Exponential with the given mean.
    Exponential {
        /// Mean (1/rate).
        mean: f64,
    },
    /// Log-normal with parameters of the underlying normal.
    LogNormal {
        /// Mean of ln X.
        mu: f64,
        /// Standard deviation of ln X.
        sigma: f64,
    },
    /// Pareto with scale `xmin` and shape `alpha`.
    Pareto {
        /// Scale (minimum value).
        xmin: f64,
        /// Tail exponent.
        alpha: f64,
    },
}

impl FittedModel {
    /// Model family name.
    pub fn name(&self) -> &'static str {
        match self {
            FittedModel::Exponential { .. } => "exponential",
            FittedModel::LogNormal { .. } => "lognormal",
            FittedModel::Pareto { .. } => "pareto",
        }
    }

    /// Number of free parameters (for AIC).
    pub fn parameters(&self) -> usize {
        match self {
            FittedModel::Exponential { .. } => 1,
            FittedModel::LogNormal { .. } | FittedModel::Pareto { .. } => 2,
        }
    }

    /// CDF of the fitted model.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            FittedModel::Exponential { mean } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            FittedModel::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    standard_normal_cdf((x.ln() - mu) / sigma)
                }
            }
            FittedModel::Pareto { xmin, alpha } => {
                if x <= xmin {
                    0.0
                } else {
                    1.0 - (xmin / x).powf(alpha)
                }
            }
        }
    }

    /// Log-likelihood of the sample under the model.
    pub fn log_likelihood(&self, xs: &[f64]) -> f64 {
        match *self {
            FittedModel::Exponential { mean } => {
                let lambda = 1.0 / mean;
                xs.iter().map(|&x| lambda.ln() - lambda * x).sum()
            }
            FittedModel::LogNormal { mu, sigma } => xs
                .iter()
                .map(|&x| {
                    let z = (x.ln() - mu) / sigma;
                    -(x.ln()) - sigma.ln() - 0.5 * (2.0 * PI).ln() - 0.5 * z * z
                })
                .sum(),
            FittedModel::Pareto { xmin, alpha } => xs
                .iter()
                .map(|&x| alpha.ln() + alpha * xmin.ln() - (alpha + 1.0) * x.ln())
                .sum(),
        }
    }

    /// Akaike information criterion (lower is better).
    pub fn aic(&self, xs: &[f64]) -> f64 {
        2.0 * self.parameters() as f64 - 2.0 * self.log_likelihood(xs)
    }
}

/// Abramowitz–Stegun approximation of Φ, accurate to ~1e-7.
fn standard_normal_cdf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - standard_normal_cdf(-z);
    }
    let t = 1.0 / (1.0 + 0.2316419 * z);
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * z * z).exp() / (2.0 * PI).sqrt();
    1.0 - pdf * poly
}

fn validate(xs: &[f64]) {
    assert!(!xs.is_empty(), "cannot fit an empty sample");
    assert!(
        xs.iter().all(|&x| x > 0.0 && x.is_finite()),
        "fitting requires strictly positive, finite values"
    );
}

/// MLE exponential fit.
pub fn fit_exponential(xs: &[f64]) -> FittedModel {
    validate(xs);
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    FittedModel::Exponential { mean }
}

/// MLE log-normal fit.
pub fn fit_lognormal(xs: &[f64]) -> FittedModel {
    validate(xs);
    let n = xs.len() as f64;
    let mu = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
    let var = xs
        .iter()
        .map(|x| (x.ln() - mu) * (x.ln() - mu))
        .sum::<f64>()
        / n;
    FittedModel::LogNormal {
        mu,
        sigma: var.sqrt().max(1e-9),
    }
}

/// MLE Pareto fit with `xmin = min(sample)`.
pub fn fit_pareto(xs: &[f64]) -> FittedModel {
    validate(xs);
    let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let sum_log: f64 = xs.iter().map(|&x| (x / xmin).ln()).sum();
    let alpha = if sum_log <= 0.0 {
        f64::INFINITY
    } else {
        xs.len() as f64 / sum_log
    };
    FittedModel::Pareto {
        xmin,
        alpha: alpha.min(1e6),
    }
}

/// KS distance between the sample's ECDF and a fitted model's CDF.
pub fn ks_fitted(xs: &[f64], model: &FittedModel) -> f64 {
    let ecdf = Ecdf::new(xs.to_vec());
    let mut d: f64 = 0.0;
    let n = ecdf.len() as f64;
    for (i, &x) in ecdf.values().iter().enumerate() {
        let f = model.cdf(x);
        // Compare against the step's top and bottom.
        d = d.max((f - (i + 1) as f64 / n).abs());
        d = d.max((f - i as f64 / n).abs());
    }
    d
}

/// Result of fitting one family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The fitted model.
    pub model: FittedModel,
    /// AIC (lower is better).
    pub aic: f64,
    /// KS distance to the empirical CDF.
    pub ks: f64,
}

/// Fits all families and returns reports sorted best-AIC-first.
pub fn fit_all(xs: &[f64]) -> Vec<FitReport> {
    let mut reports: Vec<FitReport> = [fit_exponential(xs), fit_lognormal(xs), fit_pareto(xs)]
        .into_iter()
        .map(|model| FitReport {
            model,
            aic: model.aic(xs),
            ks: ks_fitted(xs, &model),
        })
        .collect();
    reports.sort_by(|a, b| a.aic.partial_cmp(&b.aic).expect("AIC is finite"));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exponential_sample(mean: f64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|_| -mean * (1.0 - rng.gen_range(0.0..1.0f64)).ln())
            .collect()
    }

    fn lognormal_sample(mu: f64, sigma: f64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(4);
        (0..n)
            .map(|_| {
                // Box-Muller.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let z = (-2.0 * u.ln()).sqrt() * v.cos();
                (mu + sigma * z).exp()
            })
            .collect()
    }

    fn pareto_sample(xmin: f64, alpha: f64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| xmin / rng.gen_range(0.0f64..1.0).powf(1.0 / alpha))
            .collect()
    }

    #[test]
    fn exponential_mle_recovers_mean() {
        let xs = exponential_sample(5.0, 20_000);
        let FittedModel::Exponential { mean } = fit_exponential(&xs) else {
            unreachable!()
        };
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn lognormal_mle_recovers_parameters() {
        let xs = lognormal_sample(1.0, 0.5, 20_000);
        let FittedModel::LogNormal { mu, sigma } = fit_lognormal(&xs) else {
            unreachable!()
        };
        assert!((mu - 1.0).abs() < 0.05, "mu={mu}");
        assert!((sigma - 0.5).abs() < 0.05, "sigma={sigma}");
    }

    #[test]
    fn pareto_mle_recovers_alpha() {
        let xs = pareto_sample(2.0, 1.5, 20_000);
        let FittedModel::Pareto { xmin, alpha } = fit_pareto(&xs) else {
            unreachable!()
        };
        assert!((xmin - 2.0).abs() < 0.01, "xmin={xmin}");
        assert!((alpha - 1.5).abs() < 0.1, "alpha={alpha}");
    }

    #[test]
    fn model_selection_picks_the_generator() {
        let exp = exponential_sample(3.0, 5_000);
        assert_eq!(fit_all(&exp)[0].model.name(), "exponential");

        let logn = lognormal_sample(0.5, 1.2, 5_000);
        assert_eq!(fit_all(&logn)[0].model.name(), "lognormal");

        let par = pareto_sample(1.0, 0.9, 5_000);
        assert_eq!(fit_all(&par)[0].model.name(), "pareto");
    }

    #[test]
    fn ks_small_for_true_model() {
        let xs = exponential_sample(2.0, 5_000);
        let model = fit_exponential(&xs);
        assert!(ks_fitted(&xs, &model) < 0.03);
        // ... and large for a badly wrong model.
        let wrong = FittedModel::Pareto {
            xmin: 0.001,
            alpha: 0.2,
        };
        assert!(ks_fitted(&xs, &wrong) > 0.3);
    }

    #[test]
    fn cdf_properties() {
        for model in [
            FittedModel::Exponential { mean: 2.0 },
            FittedModel::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            FittedModel::Pareto {
                xmin: 1.0,
                alpha: 2.0,
            },
        ] {
            assert_eq!(model.cdf(-1.0), 0.0, "{}", model.name());
            assert!(model.cdf(1e9) > 0.999, "{}", model.name());
            // Monotone.
            let mut prev = 0.0;
            for i in 1..100 {
                let f = model.cdf(i as f64 * 0.5);
                assert!(f >= prev, "{} not monotone", model.name());
                prev = f;
            }
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn nonpositive_values_rejected() {
        let _ = fit_exponential(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = fit_lognormal(&[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fitted CDFs are proper distributions over the sample range.
        #[test]
        fn cdf_bounded(xs in prop::collection::vec(0.01f64..1e4, 2..200)) {
            for report in fit_all(&xs) {
                for &x in &xs {
                    let f = report.model.cdf(x);
                    prop_assert!((0.0..=1.0).contains(&f), "{} gave {f}", report.model.name());
                }
                prop_assert!((0.0..=1.0).contains(&report.ks));
                prop_assert!(report.aic.is_finite());
            }
        }
    }
}
