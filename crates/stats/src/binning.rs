//! Fixed-window event counting.
//!
//! Table I of the paper reports the minimum / mean / maximum number of job
//! submissions per hour. [`counts_per_window`] turns a sorted-or-not list of
//! event timestamps into per-window counts covering the whole horizon
//! (including empty windows — grids have many idle night hours, which is
//! exactly what drags their fairness index down).

use crate::summary::Summary;

/// Counts events per window of `window` seconds over `[0, horizon)`.
///
/// Events outside the horizon are ignored. The number of windows is
/// `ceil(horizon / window)`.
pub fn counts_per_window(times: &[u64], window: u64, horizon: u64) -> Vec<u64> {
    assert!(window > 0, "window must be positive");
    assert!(horizon > 0, "horizon must be positive");
    let n = horizon.div_ceil(window) as usize;
    let mut counts = vec![0u64; n];
    for &t in times {
        if t < horizon {
            counts[(t / window) as usize] += 1;
        }
    }
    counts
}

/// Summary of per-window counts (min / mean / max), the Table I row format.
pub fn rate_summary(times: &[u64], window: u64, horizon: u64) -> Summary {
    let counts = counts_per_window(times, window, horizon);
    let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    Summary::of(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_basic() {
        let times = [0, 10, 3_599, 3_600, 7_199, 10_000];
        let counts = counts_per_window(&times, 3_600, 10_800);
        assert_eq!(counts, vec![3, 2, 1]);
    }

    #[test]
    fn events_beyond_horizon_dropped() {
        let counts = counts_per_window(&[100, 5_000], 3_600, 3_600);
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn empty_windows_are_counted() {
        let counts = counts_per_window(&[0], 100, 1_000);
        assert_eq!(counts.len(), 10);
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn partial_last_window() {
        let counts = counts_per_window(&[250], 100, 260);
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[2], 1);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let counts = counts_per_window(&[500, 10, 250], 100, 600);
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[5], 1);
    }

    #[test]
    fn rate_summary_matches_counts() {
        let s = rate_summary(&[0, 1, 2, 3_600], 3_600, 7_200);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = counts_per_window(&[], 0, 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Total counted events equals events within the horizon.
        #[test]
        fn conservation(times in prop::collection::vec(0u64..10_000, 0..300),
                        window in 1u64..500, horizon in 1u64..10_000) {
            let counts = counts_per_window(&times, window, horizon);
            let in_horizon = times.iter().filter(|&&t| t < horizon).count() as u64;
            prop_assert_eq!(counts.iter().sum::<u64>(), in_horizon);
            prop_assert_eq!(counts.len() as u64, horizon.div_ceil(window));
        }
    }
}
