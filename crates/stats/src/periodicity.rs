//! Periodicity detection for load series.
//!
//! The paper attributes the grids' low submission fairness to "strong
//! diurnal periodicity". This module quantifies that: a periodogram over
//! candidate periods and a diurnal-strength score comparing the energy at
//! the 24-hour period against the spectrum's background.

use std::f64::consts::TAU;

/// Power of a single candidate period in a series, via the Lomb-style
/// projection onto sine/cosine at that period.
///
/// `period` is expressed in samples. Returns the normalized power in
/// `[0, 1]` (fraction of the series variance explained by that period).
pub fn period_power(series: &[f64], period: f64) -> f64 {
    assert!(period > 0.0, "period must be positive");
    let n = series.len();
    if n < 4 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let mut cs = 0.0;
    let mut sn = 0.0;
    for (i, &v) in series.iter().enumerate() {
        let phase = TAU * i as f64 / period;
        cs += (v - mean) * phase.cos();
        sn += (v - mean) * phase.sin();
    }
    // Projection energy relative to total energy, scaled so that a pure
    // sinusoid at the candidate period scores 1.
    (2.0 * (cs * cs + sn * sn) / (n as f64 * var)).min(1.0)
}

/// Periodogram over a range of candidate periods (in samples).
pub fn periodogram(series: &[f64], periods: &[f64]) -> Vec<(f64, f64)> {
    periods
        .iter()
        .map(|&p| (p, period_power(series, p)))
        .collect()
}

/// Diurnal strength: power at `samples_per_day` relative to the median
/// power over a background band of unrelated periods.
///
/// Values well above 1 indicate a clear daily rhythm (grids); values near
/// 1 indicate none (the Google cluster's flat submission profile).
pub fn diurnal_strength(series: &[f64], samples_per_day: f64) -> f64 {
    let day_power = period_power(series, samples_per_day);
    // Background: periods away from one day and its harmonics.
    let background: Vec<f64> = [0.13, 0.19, 0.28, 0.37, 0.44, 0.61, 0.72, 0.83]
        .iter()
        .map(|&f| period_power(series, samples_per_day * f))
        .collect();
    let mut sorted = background.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("powers are finite"));
    let median = sorted[sorted.len() / 2].max(1e-12);
    day_power / median
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize, period: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + amp * (TAU * i as f64 / period).sin())
            .collect()
    }

    #[test]
    fn pure_sine_scores_one_at_its_period() {
        let s = sine_series(240, 24.0, 0.5);
        let p = period_power(&s, 24.0);
        assert!(p > 0.95, "p={p}");
    }

    #[test]
    fn off_period_scores_low() {
        let s = sine_series(240, 24.0, 0.5);
        let p = period_power(&s, 11.0);
        assert!(p < 0.1, "p={p}");
    }

    #[test]
    fn constant_series_has_no_power() {
        assert_eq!(period_power(&[2.0; 100], 10.0), 0.0);
        assert_eq!(period_power(&[1.0, 2.0], 2.0), 0.0);
    }

    #[test]
    fn periodogram_shape() {
        let s = sine_series(480, 24.0, 0.5);
        let pg = periodogram(&s, &[6.0, 12.0, 24.0, 48.0]);
        assert_eq!(pg.len(), 4);
        let best = pg
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 24.0);
    }

    #[test]
    fn diurnal_strength_separates_grid_from_cloud() {
        // Grid-like: strong 24h rhythm (hourly samples over 20 days).
        let grid = sine_series(480, 24.0, 0.8);
        // Cloud-like: flat with pseudo-random jitter.
        let cloud: Vec<f64> = (0..480)
            .map(|i| 1.0 + 0.05 * (((i * 2654435761usize) % 97) as f64 / 97.0 - 0.5))
            .collect();
        let g = diurnal_strength(&grid, 24.0);
        let c = diurnal_strength(&cloud, 24.0);
        assert!(g > 20.0, "grid strength={g}");
        assert!(c < 10.0, "cloud strength={c}");
        assert!(g > 5.0 * c);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = period_power(&[1.0, 2.0, 3.0, 4.0], 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Power is in [0, 1] for any series and period.
        #[test]
        fn power_bounded(series in prop::collection::vec(0.0f64..10.0, 4..200),
                         period in 2.0f64..100.0) {
            let p = period_power(&series, period);
            prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        }

        /// Power is shift-invariant (adding a constant changes nothing).
        #[test]
        fn shift_invariant(series in prop::collection::vec(0.0f64..10.0, 8..100),
                           c in -5.0f64..5.0) {
            let shifted: Vec<f64> = series.iter().map(|v| v + c).collect();
            let a = period_power(&series, 12.0);
            let b = period_power(&shifted, 12.0);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
