//! Mass–count disparity (Feitelson), the paper's heavy-tail summary.
//!
//! The *count* distribution is the ordinary ECDF: what fraction of items is
//! smaller than `x`. The *mass* distribution weights each item by its size:
//! what fraction of the total mass belongs to items smaller than `x`.
//! Two scalar indices summarize their divergence:
//!
//! * the **joint ratio** `X/Y`: at the unique point where
//!   `Fc(x) + Fm(x) = 1`, `X = 100·Fm(x)` and `Y = 100·Fc(x)`; it reads
//!   "X% of the items account for Y% of the mass and vice versa"
//!   (the Pareto 80/20 rule generalized);
//! * the **mm-distance**: the horizontal distance between the medians of
//!   the two curves, `Fm⁻¹(½) − Fc⁻¹(½)`, in the units of `x`.
//!
//! The paper reports e.g. joint ratio 6/94 for Google task lengths versus
//! 24/76 for AuverGrid (Fig. 4) — Google's mass is far more concentrated in
//! its few long tasks.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Mass–count analysis over a sample of non-negative sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct MassCount {
    sorted: Vec<f64>,
    /// prefix[i] = sum of the i smallest values; prefix[0] = 0.
    prefix: Vec<f64>,
}

/// Scalar summary of a mass–count analysis, serialized into experiment
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MassCountSummary {
    /// `X` of the `X/Y` joint ratio (percent of mass at the crossing).
    pub joint_mass_pct: f64,
    /// `Y` of the `X/Y` joint ratio (percent of items at the crossing).
    pub joint_count_pct: f64,
    /// Horizontal distance between the mass median and the count median.
    pub mm_distance: f64,
    /// Median of the count distribution.
    pub count_median: f64,
    /// Median of the mass distribution.
    pub mass_median: f64,
    /// Number of items.
    pub items: usize,
    /// Total mass.
    pub total_mass: f64,
}

impl MassCountSummary {
    /// The joint ratio formatted the way the paper prints it, e.g. "6/94".
    pub fn joint_ratio_label(&self) -> String {
        format!("{:.0}/{:.0}", self.joint_mass_pct, self.joint_count_pct)
    }
}

impl MassCount {
    /// Builds the analysis. Returns `None` for an empty sample or zero
    /// total mass (both make the mass distribution undefined).
    ///
    /// Panics on negative or NaN values: sizes are lengths/loads and must
    /// be non-negative.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        assert!(
            sample.iter().all(|v| *v >= 0.0 && !v.is_nan()),
            "mass-count sizes must be non-negative and not NaN"
        );
        if sample.is_empty() {
            return None;
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        let mut prefix = Vec::with_capacity(sample.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &v in &sample {
            acc += v;
            prefix.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(MassCount {
            sorted: sample,
            prefix,
        })
    }

    /// Builds from integer durations.
    pub fn from_durations(durations: &[u64]) -> Option<Self> {
        Self::new(durations.iter().map(|&d| d as f64).collect())
    }

    /// Builds the analysis together with a [`Summary`] of the same sample,
    /// sharing one sort. Callers that need both (every report row does)
    /// would otherwise clone the pool and sort it twice — this is
    /// bit-identical to `(Summary::of(&sample), MassCount::new(sample))`:
    /// the mean and std accumulate over the sample in its original order,
    /// and the order statistics read the single sorted copy.
    ///
    /// The summary is returned even when the mass–count analysis is
    /// undefined (`None`): an all-zero sample still has a summary.
    pub fn new_with_summary(sample: Vec<f64>) -> (Summary, Option<Self>) {
        assert!(
            sample.iter().all(|v| *v >= 0.0 && !v.is_nan()),
            "mass-count sizes must be non-negative and not NaN"
        );
        if sample.is_empty() {
            return (Summary::of(&[]), None);
        }
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        let var = sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = sample;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let summary = Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean,
            std: var.sqrt(),
            median,
        };
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &v in &sorted {
            acc += v;
            prefix.push(acc);
        }
        if acc <= 0.0 {
            return (summary, None);
        }
        (summary, Some(MassCount { sorted, prefix }))
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty. Construction rejects empty samples,
    /// so this is false for every reachable value, but it delegates to
    /// the data rather than asserting the invariant a second time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Total mass.
    #[inline]
    pub fn total_mass(&self) -> f64 {
        *self.prefix.last().expect("prefix always has n+1 entries")
    }

    /// The sorted sizes, ascending. Lets callers answer "how many items
    /// are `<= x`" via `partition_point` without re-scanning the raw
    /// sample.
    #[inline]
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Count CDF `Fc(x)`.
    pub fn count_cdf(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Mass CDF `Fm(x)`: fraction of total mass in items `<= x`.
    pub fn mass_cdf(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        self.prefix[count] / self.total_mass()
    }

    /// Median of the count distribution.
    pub fn count_median(&self) -> f64 {
        self.count_quantile(0.5)
    }

    /// The smallest observation `x` with `Fc(x) >= q`.
    pub fn count_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1], got {q}");
        let n = self.sorted.len();
        // Epsilon guards exact fractions k/n against float round-up.
        let idx = ((q * n as f64 - 1e-9).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Median of the mass distribution: the smallest `x` with
    /// `Fm(x) >= 1/2` — half the total mass sits in items up to this size.
    pub fn mass_median(&self) -> f64 {
        self.mass_quantile(0.5)
    }

    /// The smallest observation `x` with `Fm(x) >= q`.
    pub fn mass_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1], got {q}");
        let target = q * self.total_mass();
        // prefix is non-decreasing; find the first item index i (1-based)
        // with prefix[i] >= target.
        let idx = self.prefix.partition_point(|&p| p < target);
        self.sorted[idx.clamp(1, self.sorted.len()) - 1]
    }

    /// mm-distance: `mass_median − count_median`, in `x` units.
    ///
    /// Large values mean the mass sits in items far larger than the typical
    /// item — the signature of a heavy tail.
    pub fn mm_distance(&self) -> f64 {
        self.mass_median() - self.count_median()
    }

    /// Joint ratio `(mass%, count%)` at the crossing `Fc + Fm = 1`.
    pub fn joint_ratio(&self) -> (f64, f64) {
        let n = self.sorted.len();
        let total = self.total_mass();
        // Scan items in ascending order; after including item i (1-based),
        // Fc = i/n and Fm = prefix[i]/total. Both are non-decreasing in i,
        // so the first i where Fc + Fm >= 1 brackets the crossing.
        for i in 1..=n {
            let fc = i as f64 / n as f64;
            let fm = self.prefix[i] / total;
            if fc + fm >= 1.0 {
                // Linear interpolation between (i-1) and i for a smoother
                // estimate than the raw step.
                let fc0 = (i - 1) as f64 / n as f64;
                let fm0 = self.prefix[i - 1] / total;
                let s0 = fc0 + fm0;
                let s1 = fc + fm;
                let t = if s1 > s0 { (1.0 - s0) / (s1 - s0) } else { 1.0 };
                let fc_star = fc0 + t * (fc - fc0);
                let fm_star = 1.0 - fc_star;
                return (100.0 * fm_star, 100.0 * fc_star);
            }
        }
        // Degenerate single-point distributions cross exactly at the end.
        (50.0, 50.0)
    }

    /// Full scalar summary.
    pub fn summary(&self) -> MassCountSummary {
        let (joint_mass_pct, joint_count_pct) = self.joint_ratio();
        let count_median = self.count_median();
        let mass_median = self.mass_median();
        MassCountSummary {
            joint_mass_pct,
            joint_count_pct,
            mm_distance: mass_median - count_median,
            count_median,
            mass_median,
            items: self.len(),
            total_mass: self.total_mass(),
        }
    }

    /// Plottable `(x, Fc(x), Fm(x))` staircase at each distinct size.
    pub fn curves(&self) -> Vec<(f64, f64, f64)> {
        let n = self.sorted.len() as f64;
        let total = self.total_mass();
        let mut out: Vec<(f64, f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let fc = (i + 1) as f64 / n;
            let fm = self.prefix[i + 1] / total;
            match out.last_mut() {
                Some(last) if last.0 == x => {
                    last.1 = fc;
                    last.2 = fm;
                }
                _ => out.push((x, fc, fm)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sizes_have_identical_curves() {
        let mc = MassCount::new(vec![2.0; 10]).unwrap();
        assert_eq!(mc.count_cdf(2.0), 1.0);
        assert_eq!(mc.mass_cdf(2.0), 1.0);
        assert_eq!(mc.mm_distance(), 0.0);
        let (m, c) = mc.joint_ratio();
        // Equal items: crossing at 50/50.
        assert!((m - 50.0).abs() < 10.0, "mass pct {m}");
        assert!((c - 50.0).abs() < 10.0, "count pct {c}");
    }

    #[test]
    fn pareto_like_sample_is_skewed() {
        // 99 items of size 1 and one item of size 100: the big item holds
        // ~50% of the mass.
        let mut sample = vec![1.0; 99];
        sample.push(100.0);
        let mc = MassCount::new(sample).unwrap();
        assert_eq!(mc.count_median(), 1.0);
        // Half the mass (99.5 of 199) is reached only within the big item.
        assert_eq!(mc.mass_median(), 100.0);
        let (mass_pct, count_pct) = mc.joint_ratio();
        assert!(mass_pct < 51.0);
        assert!(count_pct > 49.0);
    }

    #[test]
    fn mass_median_reflects_heavy_tail() {
        // 9 items of size 1, one of size 91: total 100, half-mass 50 is
        // reached only within the big item.
        let mut sample = vec![1.0; 9];
        sample.push(91.0);
        let mc = MassCount::new(sample).unwrap();
        assert_eq!(mc.count_median(), 1.0);
        assert_eq!(mc.mass_median(), 91.0);
        assert_eq!(mc.mm_distance(), 90.0);
    }

    #[test]
    fn joint_ratio_for_strong_skew() {
        // 90 tiny items, 10 large: expect roughly 10/90-ish joint ratio.
        let mut sample = vec![0.01; 90];
        sample.extend(vec![10.0; 10]);
        let mc = MassCount::new(sample).unwrap();
        let (mass_pct, count_pct) = mc.joint_ratio();
        assert!(mass_pct < 15.0, "mass pct was {mass_pct}");
        assert!(count_pct > 85.0, "count pct was {count_pct}");
    }

    #[test]
    fn cdf_queries() {
        let mc = MassCount::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(mc.count_cdf(2.5), 0.5);
        assert!((mc.mass_cdf(2.5) - 3.0 / 10.0).abs() < 1e-12);
        assert_eq!(mc.count_cdf(0.5), 0.0);
        assert_eq!(mc.mass_cdf(4.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let mc = MassCount::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(mc.count_quantile(0.25), 1.0);
        assert_eq!(mc.count_quantile(1.0), 4.0);
        // Mass quantile 0.1 -> first item already holds 1/10.
        assert_eq!(mc.mass_quantile(0.1), 1.0);
        assert_eq!(mc.mass_quantile(1.0), 4.0);
    }

    #[test]
    fn empty_and_zero_mass_rejected() {
        assert!(MassCount::new(vec![]).is_none());
        assert!(MassCount::new(vec![0.0, 0.0]).is_none());
    }

    #[test]
    fn is_empty_reflects_the_data() {
        let mc = MassCount::new(vec![1.0, 2.0]).unwrap();
        assert!(!mc.is_empty());
        assert_eq!(mc.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sizes_panic() {
        let _ = MassCount::new(vec![1.0, -2.0]);
    }

    #[test]
    fn summary_is_consistent() {
        let mc = MassCount::new(vec![1.0, 1.0, 1.0, 7.0]).unwrap();
        let s = mc.summary();
        assert_eq!(s.items, 4);
        assert_eq!(s.total_mass, 10.0);
        assert_eq!(s.count_median, mc.count_median());
        assert_eq!(s.mass_median, mc.mass_median());
        assert!((s.mm_distance - mc.mm_distance()).abs() < 1e-12);
        let label = s.joint_ratio_label();
        assert!(label.contains('/'));
    }

    #[test]
    fn curves_are_monotone_and_end_at_one() {
        let mc = MassCount::new(vec![5.0, 1.0, 3.0, 3.0, 8.0]).unwrap();
        let curves = mc.curves();
        assert!(curves
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
        let last = curves.last().unwrap();
        assert_eq!(last.1, 1.0);
        assert!((last.2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_durations_works() {
        let mc = MassCount::from_durations(&[10, 20, 30]).unwrap();
        assert_eq!(mc.total_mass(), 60.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fm(x) <= Fc(x) everywhere: mass lags count for non-negative sizes.
        #[test]
        fn mass_lags_count(sample in prop::collection::vec(0.001f64..1e4, 1..200),
                           x in 0.0f64..1e4) {
            let mc = MassCount::new(sample).unwrap();
            prop_assert!(mc.mass_cdf(x) <= mc.count_cdf(x) + 1e-9);
        }

        /// `new_with_summary` is bit-identical to computing the summary
        /// and the analysis separately.
        #[test]
        fn with_summary_matches_separate(sample in prop::collection::vec(0.0f64..1e4, 0..200)) {
            let separate_summary = Summary::of(&sample);
            let separate_mc = MassCount::new(sample.clone());
            let (summary, mc) = MassCount::new_with_summary(sample);
            prop_assert_eq!(summary, separate_summary);
            prop_assert_eq!(mc, separate_mc);
        }

        /// mm-distance is non-negative.
        #[test]
        fn mm_distance_nonneg(sample in prop::collection::vec(0.001f64..1e4, 1..200)) {
            let mc = MassCount::new(sample).unwrap();
            prop_assert!(mc.mm_distance() >= -1e-9);
        }

        /// Joint ratio percentages sum to 100 and mass% <= count%.
        #[test]
        fn joint_ratio_sums_to_100(sample in prop::collection::vec(0.001f64..1e4, 1..200)) {
            let mc = MassCount::new(sample).unwrap();
            let (m, c) = mc.joint_ratio();
            prop_assert!((m + c - 100.0).abs() < 1e-6, "m={m} c={c}");
            prop_assert!(m <= c + 1e-6, "mass side must be the smaller one: m={m} c={c}");
        }

        /// Scaling all sizes by a constant scales mm-distance and keeps the
        /// joint ratio.
        #[test]
        fn scale_invariance(sample in prop::collection::vec(0.001f64..1e3, 2..100),
                            k in 0.1f64..100.0) {
            let mc1 = MassCount::new(sample.clone()).unwrap();
            let scaled: Vec<f64> = sample.iter().map(|v| v * k).collect();
            let mc2 = MassCount::new(scaled).unwrap();
            let (m1, c1) = mc1.joint_ratio();
            let (m2, c2) = mc2.joint_ratio();
            prop_assert!((m1 - m2).abs() < 1e-6);
            prop_assert!((c1 - c2).abs() < 1e-6);
            prop_assert!((mc1.mm_distance() * k - mc2.mm_distance()).abs() < 1e-6 * k.max(1.0));
        }
    }
}
