//! Autocorrelation of load series.
//!
//! The paper compares the mean autocorrelation of CPU load between the
//! Google cluster (≈ −8·10⁻⁶, i.e. essentially memoryless sample-to-sample)
//! and AuverGrid (positive), as evidence that cloud host load is much harder
//! to predict.

/// Sample autocorrelation at lag `k`.
///
/// Returns 0.0 when the series is shorter than `k + 2` or has zero
/// variance (a constant series carries no correlation information).
pub fn autocorrelation(series: &[f64], k: usize) -> f64 {
    let n = series.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - k)
        .map(|i| (series[i] - mean) * (series[i + k] - mean))
        .sum();
    cov / var
}

/// The definitional form of [`mean_autocorrelation`]: one full
/// [`autocorrelation`] evaluation per lag, recomputing the mean and
/// variance every time.
///
/// Kept public as the differential-testing oracle for the hoisted
/// implementation and as the like-for-like analysis baseline in
/// `cgc-bench`; the two are bit-identical on every input.
pub fn mean_autocorrelation_reference(series: &[f64], max_lag: usize) -> f64 {
    assert!(max_lag >= 1, "need at least lag 1");
    let sum: f64 = (1..=max_lag).map(|k| autocorrelation(series, k)).sum();
    sum / max_lag as f64
}

/// Mean autocorrelation over lags `1..=max_lag`.
///
/// This is the scalar the paper aggregates per machine and averages over
/// the fleet.
pub fn mean_autocorrelation(series: &[f64], max_lag: usize) -> f64 {
    assert!(max_lag >= 1, "need at least lag 1");
    // Mean and variance do not depend on the lag, so hoist them (and the
    // per-sample deviations) out of the lag loop. Each lag's covariance is
    // accumulated over the same index order as `autocorrelation`, and lags
    // the series is too short for contribute the same exact 0.0, so the sum
    // is bit-identical to averaging `autocorrelation(series, k)` per lag.
    let n = series.len();
    let (mean, var) = if n >= 2 {
        let mean = series.iter().sum::<f64>() / n as f64;
        let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
        (mean, var)
    } else {
        (0.0, 0.0)
    };
    if var == 0.0 {
        return (1..=max_lag).map(|_| 0.0).sum::<f64>() / max_lag as f64;
    }
    let dev: Vec<f64> = series.iter().map(|v| v - mean).collect();
    let sum: f64 = (1..=max_lag)
        .map(|k| {
            if n < k + 2 {
                return 0.0;
            }
            let cov: f64 = (0..n - k).map(|i| dev[i] * dev[i + k]).sum();
            cov / var
        })
        .sum();
    sum / max_lag as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(autocorrelation(&[2.0; 50], 1), 0.0);
    }

    #[test]
    fn short_series_is_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), 0.0);
        assert_eq!(autocorrelation(&[], 1), 0.0);
    }

    #[test]
    fn slow_trend_has_high_lag1_correlation() {
        let s: Vec<f64> = (0..200).map(|i| (i as f64 / 30.0).sin()).collect();
        let r = autocorrelation(&s, 1);
        assert!(r > 0.9, "r={r}");
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let s: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = autocorrelation(&s, 1);
        assert!(r < -0.9, "r={r}");
        // ... and positive lag-2 correlation.
        assert!(autocorrelation(&s, 2) > 0.9);
    }

    #[test]
    fn lag_zero_is_one() {
        let s: Vec<f64> = (0..50).map(|i| (i * i % 17) as f64).collect();
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_autocorrelation_averages_lags() {
        let s: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = mean_autocorrelation(&s, 2);
        // Average of strongly negative lag-1 and strongly positive lag-2.
        assert!(m.abs() < 0.1, "m={m}");
    }

    #[test]
    #[should_panic(expected = "at least lag 1")]
    fn zero_max_lag_rejected() {
        let _ = mean_autocorrelation(&[1.0, 2.0, 3.0], 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// |r(k)| <= 1 for any series and lag.
        #[test]
        fn bounded(series in prop::collection::vec(-1e3f64..1e3, 3..200), k in 0usize..10) {
            let r = autocorrelation(&series, k);
            prop_assert!(r.abs() <= 1.0 + 1e-9, "r={r}");
        }

        /// The hoisted `mean_autocorrelation` is bit-identical to the
        /// per-lag reference form.
        #[test]
        fn mean_matches_per_lag_definition(
            series in prop::collection::vec(-1e3f64..1e3, 0..60),
            max_lag in 1usize..70,
        ) {
            let reference = mean_autocorrelation_reference(&series, max_lag);
            let hoisted = mean_autocorrelation(&series, max_lag);
            prop_assert_eq!(reference.to_bits(), hoisted.to_bits());
        }

        /// Shifting a series by a constant leaves autocorrelation unchanged.
        #[test]
        fn shift_invariant(series in prop::collection::vec(-10.0f64..10.0, 10..100), c in -5.0f64..5.0) {
            let shifted: Vec<f64> = series.iter().map(|v| v + c).collect();
            let a = autocorrelation(&series, 1);
            let b = autocorrelation(&shifted, 1);
            prop_assert!((a - b).abs() < 1e-6, "a={a} b={b}");
        }
    }
}
