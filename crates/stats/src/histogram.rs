//! Fixed-width histograms and empirical PDFs.
//!
//! Figure 7 of the paper plots the *probability distribution* of per-machine
//! maximum load per attribute; Figure 2 is a histogram over the 12
//! priorities. [`Histogram`] covers both: uniform bins over a closed range
//! with counts, fractions, and a normalized density view.

use serde::{Deserialize, Serialize};

/// A histogram with `bins` uniform buckets over `[lo, hi]`.
///
/// Values below `lo` clamp into the first bin and values above `hi` into the
/// last, so totals are preserved (load values occasionally exceed nominal
/// capacity in traces; dropping them would bias maxima).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram. Requires `hi > lo` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo={lo}, hi={hi})"
        );
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram directly from a sample.
    pub fn from_sample(lo: f64, hi: f64, bins: usize, sample: &[f64]) -> Self {
        let mut h = Self::new(lo, hi, bins);
        for &v in sample {
            h.add(v);
        }
        h
    }

    /// Bin index for a value (clamped into range).
    pub fn bin_of(&self, value: f64) -> usize {
        assert!(!value.is_nan(), "histogram value must not be NaN");
        let n = self.counts.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let b = self.bin_of(value);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts per bin.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin width.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + self.width() * (i as f64 + 0.5)
    }

    /// Fraction of observations in each bin (empirical PMF). Zeros if the
    /// histogram is empty.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Density view (PMF divided by bin width): integrates to 1.
    pub fn density(&self) -> Vec<f64> {
        let w = self.width();
        self.fractions().into_iter().map(|f| f / w).collect()
    }

    /// `(center, fraction)` pairs, the paper's Fig. 7 plotting format.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.fractions()
            .into_iter()
            .enumerate()
            .map(|(i, f)| (self.center(i), f))
            .collect()
    }

    /// The bin index with the highest count; ties break to the lower bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one bin by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_counts() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.1, 0.3, 0.35, 0.9, 0.99] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.0);
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::from_sample(0.0, 1.0, 5, &[0.1, 0.2, 0.5, 0.9]);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn density_integrates_to_one() {
        let h = Histogram::from_sample(0.0, 2.0, 8, &[0.1, 0.4, 1.5, 1.9, 0.6]);
        let integral: f64 = h.density().iter().map(|d| d * h.width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centers() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.center(0) - 0.125).abs() < 1e-12);
        assert!((h.center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mode_bin() {
        let h = Histogram::from_sample(0.0, 1.0, 4, &[0.1, 0.6, 0.6, 0.65, 0.9]);
        assert_eq!(h.mode_bin(), 2);
    }

    #[test]
    fn points_pair_centers_with_fractions() {
        let h = Histogram::from_sample(0.0, 1.0, 2, &[0.25, 0.75, 0.8]);
        let pts = h.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 0.25).abs() < 1e-12);
        assert!((pts[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((pts[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every added value lands in exactly one bin; totals match.
        #[test]
        fn totals_preserved(sample in prop::collection::vec(-10.0f64..10.0, 0..200)) {
            let h = Histogram::from_sample(0.0, 1.0, 7, &sample);
            prop_assert_eq!(h.total(), sample.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), sample.len() as u64);
        }

        /// bin_of is consistent with bin boundaries for in-range values.
        #[test]
        fn bin_of_in_range(v in 0.0f64..1.0) {
            let h = Histogram::new(0.0, 1.0, 10);
            let b = h.bin_of(v);
            prop_assert!(b < 10);
            let lo = b as f64 * 0.1;
            let hi = lo + 0.1;
            prop_assert!(v >= lo - 1e-12 && v < hi + 1e-12);
        }
    }
}
