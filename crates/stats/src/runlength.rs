//! Run-length analysis of quantized level series.
//!
//! Tables II/III of the paper measure how long a machine's CPU/memory usage
//! stays inside one of five bands ([0,0.2), [0.2,0.4), ...), and Fig. 9 does
//! the same for the running-queue length grouped into intervals of ten
//! tasks. Both reduce to: quantize the series into discrete levels, then
//! collect maximal runs of equal level.

use serde::{Deserialize, Serialize};

/// A maximal segment of constant level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run {
    /// Quantized level of the segment.
    pub level: usize,
    /// Index of the first sample of the run.
    pub start: usize,
    /// Number of consecutive samples at this level.
    pub len: usize,
}

/// Collects maximal runs of equal values.
pub fn run_lengths(levels: &[usize]) -> Vec<Run> {
    let mut runs = Vec::new();
    let mut iter = levels.iter().enumerate();
    let Some((_, &first)) = iter.next() else {
        return runs;
    };
    let mut current = Run {
        level: first,
        start: 0,
        len: 1,
    };
    for (i, &lv) in iter {
        if lv == current.level {
            current.len += 1;
        } else {
            runs.push(current);
            current = Run {
                level: lv,
                start: i,
                len: 1,
            };
        }
    }
    runs.push(current);
    runs
}

/// Groups run durations (in `period` units, e.g. seconds per sample) per
/// level. `num_levels` fixes the output length so empty levels appear as
/// empty vectors.
pub fn durations_by_level(levels: &[usize], period: f64, num_levels: usize) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::new(); num_levels];
    for run in run_lengths(levels) {
        if run.level < num_levels {
            out[run.level].push(run.len as f64 * period);
        }
    }
    out
}

/// Maps raw observations to discrete levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LevelQuantizer {
    /// `bins` uniform bands over `[0, 1]` (the paper's five usage bands).
    Uniform {
        /// Number of bands.
        bins: usize,
    },
    /// Integer intervals of fixed width: level = `min(count / width, max)`.
    /// The paper's Fig. 9 uses width 10 with a final open interval
    /// `[50, ...]`.
    IntegerIntervals {
        /// Interval width.
        width: u32,
        /// Highest level index (open-ended).
        max_level: usize,
    },
}

impl LevelQuantizer {
    /// The paper's five usage bands over `[0, 1]`.
    pub fn usage_bands() -> Self {
        LevelQuantizer::Uniform { bins: 5 }
    }

    /// The paper's running-queue intervals `[0,9], [10,19], ..., [50,+)`.
    pub fn queue_intervals() -> Self {
        LevelQuantizer::IntegerIntervals {
            width: 10,
            max_level: 5,
        }
    }

    /// Number of levels this quantizer produces.
    pub fn num_levels(&self) -> usize {
        match self {
            LevelQuantizer::Uniform { bins } => *bins,
            LevelQuantizer::IntegerIntervals { max_level, .. } => max_level + 1,
        }
    }

    /// Quantizes a continuous observation. Values are clamped into range.
    pub fn quantize(&self, value: f64) -> usize {
        assert!(!value.is_nan(), "cannot quantize NaN");
        match self {
            LevelQuantizer::Uniform { bins } => {
                ((value * *bins as f64).floor() as i64).clamp(0, *bins as i64 - 1) as usize
            }
            LevelQuantizer::IntegerIntervals { width, max_level } => {
                ((value.max(0.0) as u64 / *width as u64) as usize).min(*max_level)
            }
        }
    }

    /// Quantizes an integer count (running-queue length).
    pub fn quantize_count(&self, count: u32) -> usize {
        self.quantize(count as f64)
    }

    /// Human-readable label of a level, matching the paper's notation.
    pub fn label(&self, level: usize) -> String {
        match self {
            LevelQuantizer::Uniform { bins } => {
                let lo = level as f64 / *bins as f64;
                let hi = (level + 1) as f64 / *bins as f64;
                format!("[{lo:.1},{hi:.1}]")
            }
            LevelQuantizer::IntegerIntervals { width, max_level } => {
                let lo = level as u32 * width;
                if level >= *max_level {
                    format!("[{lo},...]")
                } else {
                    format!("[{lo},{}]", lo + width - 1)
                }
            }
        }
    }

    /// Quantizes a whole series.
    pub fn quantize_series(&self, series: &[f64]) -> Vec<usize> {
        series.iter().map(|&v| self.quantize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_of_equal_values() {
        let runs = run_lengths(&[1, 1, 2, 2, 2, 1]);
        assert_eq!(
            runs,
            vec![
                Run {
                    level: 1,
                    start: 0,
                    len: 2
                },
                Run {
                    level: 2,
                    start: 2,
                    len: 3
                },
                Run {
                    level: 1,
                    start: 5,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(run_lengths(&[]).is_empty());
        assert_eq!(
            run_lengths(&[7]),
            vec![Run {
                level: 7,
                start: 0,
                len: 1
            }]
        );
    }

    #[test]
    fn durations_grouped_by_level() {
        let groups = durations_by_level(&[0, 0, 1, 1, 1, 0], 60.0, 3);
        assert_eq!(groups[0], vec![120.0, 60.0]);
        assert_eq!(groups[1], vec![180.0]);
        assert!(groups[2].is_empty());
    }

    #[test]
    fn uniform_quantizer_bands() {
        let q = LevelQuantizer::usage_bands();
        assert_eq!(q.num_levels(), 5);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(0.19), 0);
        assert_eq!(q.quantize(0.2), 1);
        assert_eq!(q.quantize(0.99), 4);
        assert_eq!(q.quantize(1.0), 4); // top edge clamps into last band
        assert_eq!(q.quantize(1.7), 4);
        assert_eq!(q.quantize(-0.3), 0);
    }

    #[test]
    fn integer_quantizer_intervals() {
        let q = LevelQuantizer::queue_intervals();
        assert_eq!(q.num_levels(), 6);
        assert_eq!(q.quantize_count(0), 0);
        assert_eq!(q.quantize_count(9), 0);
        assert_eq!(q.quantize_count(10), 1);
        assert_eq!(q.quantize_count(49), 4);
        assert_eq!(q.quantize_count(50), 5);
        assert_eq!(q.quantize_count(5_000), 5);
    }

    #[test]
    fn labels_match_paper_notation() {
        let q = LevelQuantizer::usage_bands();
        assert_eq!(q.label(0), "[0.0,0.2]");
        assert_eq!(q.label(4), "[0.8,1.0]");
        let q = LevelQuantizer::queue_intervals();
        assert_eq!(q.label(1), "[10,19]");
        assert_eq!(q.label(5), "[50,...]");
    }

    #[test]
    fn quantize_series_maps_elementwise() {
        let q = LevelQuantizer::usage_bands();
        assert_eq!(q.quantize_series(&[0.1, 0.5, 0.9]), vec![0, 2, 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Run lengths sum to the series length and adjacent runs differ.
        #[test]
        fn partition(levels in prop::collection::vec(0usize..4, 0..200)) {
            let runs = run_lengths(&levels);
            let total: usize = runs.iter().map(|r| r.len).sum();
            prop_assert_eq!(total, levels.len());
            for w in runs.windows(2) {
                prop_assert_ne!(w[0].level, w[1].level);
            }
            // Each run reproduces the original values.
            for r in &runs {
                for &level in &levels[r.start..r.start + r.len] {
                    prop_assert_eq!(level, r.level);
                }
            }
        }

        /// Quantized levels are always in range.
        #[test]
        fn quantizer_range(v in -2.0f64..3.0) {
            let q = LevelQuantizer::usage_bands();
            prop_assert!(q.quantize(v) < q.num_levels());
            let qi = LevelQuantizer::queue_intervals();
            prop_assert!(qi.quantize(v.abs() * 100.0) < qi.num_levels());
        }
    }
}
