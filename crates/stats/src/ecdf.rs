//! Empirical cumulative distribution functions.
//!
//! The paper's Figures 3, 5 and 6 are ECDFs of job length, submission
//! interval and per-job resource usage. [`Ecdf`] stores the sorted sample
//! and answers `F(x)` and quantile queries in `O(log n)`.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. NaNs are rejected.
    ///
    /// Panics if the sample is empty or contains NaN: an empty CDF has no
    /// meaningful queries and silently returning 0 hides upstream bugs.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF requires a non-empty sample");
        assert!(
            sample.iter().all(|v| !v.is_nan()),
            "ECDF sample must not contain NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        Ecdf { sorted: sample }
    }

    /// Builds an ECDF from integer durations (seconds), the common case for
    /// job/task lengths.
    pub fn from_durations(durations: &[u64]) -> Self {
        Self::new(durations.iter().map(|&d| d as f64).collect())
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty. Construction rejects empty samples,
    /// so this is false for every reachable value, but it delegates to
    /// the data rather than asserting the invariant a second time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]`, by inverse-CDF with the
    /// "lower value" convention: the smallest `x` with `F(x) >= q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile level must be in [0, 1], got {q}"
        );
        if q <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        // The tiny epsilon keeps q values that are exact fractions k/n from
        // rounding up to the next index under floating point.
        let idx = ((q * n as f64 - 1e-9).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The median (0.5-quantile).
    #[inline]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observation.
    #[inline]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    #[inline]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted sample.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF at `n` evenly spaced points across `[lo, hi]`,
    /// producing a plottable curve like the paper's figures.
    ///
    /// A degenerate range (`hi == lo`, which a constant sample produces
    /// via `curve(min(), max(), n)`) yields a flat staircase: `n` points
    /// all at `x = lo` with `y = F(lo)`.
    pub fn curve(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two curve points");
        assert!(hi >= lo, "curve range must not be inverted");
        if hi == lo {
            return vec![(lo, self.eval(lo)); n];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The full staircase as `(x, F(x))` at each distinct observation.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_semantics() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.median(), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn summary_accessors() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert!((e.mean() - 2.0).abs() < 1e-12);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn from_durations() {
        let e = Ecdf::from_durations(&[5, 1, 3]);
        assert_eq!(e.values(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new(vec![1.0, 5.0, 9.0, 2.0, 2.0]);
        let curve = e.curve(0.0, 10.0, 21);
        assert_eq!(curve.len(), 21);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve[0].1, 0.0);
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn degenerate_curve_is_flat() {
        // A constant sample makes min() == max(); curve over that range
        // used to panic, now it returns a flat staircase at F(lo) = 1.
        let e = Ecdf::new(vec![5.0, 5.0, 5.0]);
        let curve = e.curve(e.min(), e.max(), 4);
        assert_eq!(curve, vec![(5.0, 1.0); 4]);
        // Degenerate range below the sample: F is 0 there.
        assert_eq!(e.curve(1.0, 1.0, 2), vec![(1.0, 0.0); 2]);
        assert!(!e.is_empty());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_curve_range_rejected() {
        let _ = Ecdf::new(vec![1.0]).curve(2.0, 1.0, 4);
    }

    #[test]
    fn points_deduplicate_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 3.0]);
        let pts = e.points();
        assert_eq!(pts, vec![(2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_out_of_range() {
        let _ = Ecdf::new(vec![1.0]).quantile(1.5);
    }

    #[test]
    fn single_observation() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.eval(6.9), 0.0);
        assert_eq!(e.eval(7.0), 1.0);
        assert_eq!(e.median(), 7.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// F is monotone non-decreasing in x.
        #[test]
        fn monotone(sample in prop::collection::vec(0.0f64..1e6, 1..100),
                    mut xs in prop::collection::vec(0.0f64..1e6, 2..20)) {
            let e = Ecdf::new(sample);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in xs {
                let y = e.eval(x);
                prop_assert!(y >= prev);
                prev = y;
            }
        }

        /// F(max) = 1 and F(anything below min) = 0.
        #[test]
        fn boundary_values(sample in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let e = Ecdf::new(sample);
            prop_assert_eq!(e.eval(e.max()), 1.0);
            prop_assert_eq!(e.eval(e.min() - 1.0), 0.0);
        }

        /// quantile(eval(x)) <= x for in-range x (Galois connection).
        #[test]
        fn quantile_inverse(sample in prop::collection::vec(0.0f64..1e6, 1..100)) {
            let e = Ecdf::new(sample.clone());
            for &x in &sample {
                let q = e.eval(x);
                prop_assert!(e.quantile(q) <= x + 1e-9);
            }
        }

        /// quantile is monotone in q.
        #[test]
        fn quantile_monotone(sample in prop::collection::vec(0.0f64..1e6, 1..100),
                             q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let e = Ecdf::new(sample);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(e.quantile(lo) <= e.quantile(hi));
        }
    }
}
