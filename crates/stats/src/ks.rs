//! Kolmogorov–Smirnov distance between empirical distributions.
//!
//! The reproduction uses KS distances as calibration metrics: how far each
//! generator's distribution sits from the paper's published quantiles, and
//! how far two systems' distributions sit from each other (e.g. Google vs
//! grid job lengths in Fig. 3 — a *large* KS distance is the finding).

use crate::ecdf::Ecdf;

/// Two-sample KS statistic: `sup_x |F1(x) − F2(x)|`.
pub fn ks_distance(a: &Ecdf, b: &Ecdf) -> f64 {
    // The supremum is attained at an observation of either sample.
    let mut d: f64 = 0.0;
    for &x in a.values().iter().chain(b.values()) {
        d = d.max((a.eval(x) - b.eval(x)).abs());
        // Also check just below x (left limit), where the step functions
        // may diverge more.
        let eps = x.abs().max(1.0) * 1e-12;
        d = d.max((a.eval(x - eps) - b.eval(x - eps)).abs());
    }
    d
}

/// KS statistic of a sample against reference quantile points
/// `(x, F(x))`: `max |F_sample(x) − F(x)|` over the given points.
///
/// This is how generator calibration is scored against the handful of
/// quantiles the paper publishes (e.g. 55% < 10 min, 90% < 1 h).
pub fn ks_against_quantiles(sample: &Ecdf, quantiles: &[(f64, f64)]) -> f64 {
    quantiles
        .iter()
        .map(|&(x, f)| (sample.eval(x) - f).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert!(ks_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_half_overlap() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![2.0, 3.0]);
        // At x just below 2: F_a = 0.5, F_b = 0.0.
        // At x = 2: F_a = 1.0, F_b = 0.5.
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = Ecdf::new(vec![1.0, 5.0, 9.0]);
        let b = Ecdf::new(vec![2.0, 4.0, 8.0, 16.0]);
        assert!((ks_distance(&a, &b) - ks_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn quantile_calibration() {
        let sample = Ecdf::new((1..=100).map(f64::from).collect());
        // The sample is uniform on [1,100]: F(50) = 0.5, F(90) = 0.9.
        let d = ks_against_quantiles(&sample, &[(50.0, 0.5), (90.0, 0.9)]);
        assert!(d < 1e-9, "d={d}");
        let d = ks_against_quantiles(&sample, &[(50.0, 0.8)]);
        assert!((d - 0.3).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// 0 <= D <= 1 and D(a,a) = 0.
        #[test]
        fn bounded_and_reflexive(sample in prop::collection::vec(-1e4f64..1e4, 1..80),
                                 other in prop::collection::vec(-1e4f64..1e4, 1..80)) {
            let a = Ecdf::new(sample.clone());
            let b = Ecdf::new(other);
            let d = ks_distance(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
            prop_assert!(ks_distance(&a, &a) < 1e-12);
        }

        /// Triangle inequality (KS is a metric on distributions).
        #[test]
        fn triangle(s1 in prop::collection::vec(0.0f64..100.0, 1..40),
                    s2 in prop::collection::vec(0.0f64..100.0, 1..40),
                    s3 in prop::collection::vec(0.0f64..100.0, 1..40)) {
            let a = Ecdf::new(s1);
            let b = Ecdf::new(s2);
            let c = Ecdf::new(s3);
            prop_assert!(ks_distance(&a, &c) <= ks_distance(&a, &b) + ks_distance(&b, &c) + 1e-9);
        }
    }
}
