//! Scalar summaries (min / mean / max / std / median) used across reports.

use serde::{Deserialize, Serialize};

/// Basic descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if empty).
    pub std: f64,
    /// Median (0 if empty).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a sample. NaNs are rejected.
    pub fn of(sample: &[f64]) -> Summary {
        assert!(
            sample.iter().all(|v| !v.is_nan()),
            "summary input must not contain NaN"
        );
        if sample.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
                median: 0.0,
            };
        }
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        let var = sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Summary {
            count: sample.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean,
            std: var.sqrt(),
            median,
        }
    }

    /// Computes the summary of integer durations.
    pub fn of_durations(durations: &[u64]) -> Summary {
        let xs: Vec<f64> = durations.iter().map(|&d| d as f64).collect();
        Summary::of(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median() {
        assert_eq!(Summary::of(&[5.0, 1.0, 3.0]).median, 3.0);
    }

    #[test]
    fn empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn durations_variant() {
        let s = Summary::of_durations(&[10, 20]);
        assert_eq!(s.mean, 15.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::of(&[f64::NAN]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// min <= median <= max and min <= mean <= max.
        #[test]
        fn ordering(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&sample);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.std >= 0.0);
        }
    }
}
