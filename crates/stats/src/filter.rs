//! Moving-mean filtering and noise extraction.
//!
//! The paper quantifies host-load "noise" by smoothing each machine's load
//! series with a mean filter and measuring what the filter removed. Google's
//! CPU-load noise comes out ~20× larger than AuverGrid's — the signature of
//! a workload dominated by minutes-long tasks churning through each host.

/// Centered moving-mean filter with the given odd-ish window.
///
/// Window edges shrink near the series boundaries (no padding bias). A
/// window of 1 returns the series unchanged.
pub fn mean_filter(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be at least 1");
    let n = series.len();
    if n == 0 {
        return Vec::new();
    }
    let half = window / 2;
    // Prefix sums give O(n) filtering independent of window size.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in series {
        acc += v;
        prefix.push(acc);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// The residual (noise) series: `series - mean_filter(series, window)`.
pub fn noise_series(series: &[f64], window: usize) -> Vec<f64> {
    let smooth = mean_filter(series, window);
    series.iter().zip(smooth).map(|(v, s)| v - s).collect()
}

/// Noise magnitude: standard deviation of the residual series.
///
/// This is the per-machine scalar the paper aggregates into
/// min/mean/max-noise across the fleet.
pub fn noise_std(series: &[f64], window: usize) -> f64 {
    let noise = noise_series(series, window);
    if noise.is_empty() {
        return 0.0;
    }
    let mean = noise.iter().sum::<f64>() / noise.len() as f64;
    let var = noise.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / noise.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let s = vec![1.0, 5.0, 2.0, 8.0];
        assert_eq!(mean_filter(&s, 1), s);
        assert!(noise_series(&s, 1).iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(noise_std(&s, 1), 0.0);
    }

    #[test]
    fn constant_series_has_no_noise() {
        let s = vec![0.4; 50];
        // Prefix-sum accumulation may leave ~1e-16 residue.
        for (f, v) in mean_filter(&s, 5).iter().zip(&s) {
            assert!((f - v).abs() < 1e-12);
        }
        assert!(noise_std(&s, 5) < 1e-12);
    }

    #[test]
    fn smoothing_values() {
        let s = vec![0.0, 3.0, 6.0];
        // Window 3, edges shrink: [mean(0,3), mean(0,3,6), mean(3,6)].
        let f = mean_filter(&s, 3);
        assert!((f[0] - 1.5).abs() < 1e-12);
        assert!((f[1] - 3.0).abs() < 1e-12);
        assert!((f[2] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn linear_trend_is_preserved_in_interior() {
        let s: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f = mean_filter(&s, 5);
        // Away from the edges a linear series is a fixed point of the mean.
        for i in 2..98 {
            assert!((f[i] - s[i]).abs() < 1e-9, "at {i}: {} vs {}", f[i], s[i]);
        }
    }

    #[test]
    fn noisier_series_has_larger_noise_std() {
        let calm: Vec<f64> = (0..200)
            .map(|i| 0.5 + 0.01 * ((i % 2) as f64 - 0.5))
            .collect();
        let wild: Vec<f64> = (0..200)
            .map(|i| 0.5 + 0.4 * ((i % 2) as f64 - 0.5))
            .collect();
        let n_calm = noise_std(&calm, 5);
        let n_wild = noise_std(&wild, 5);
        assert!(n_wild > 10.0 * n_calm, "calm={n_calm} wild={n_wild}");
    }

    #[test]
    fn empty_series() {
        assert!(mean_filter(&[], 3).is_empty());
        assert_eq!(noise_std(&[], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn zero_window_rejected() {
        let _ = mean_filter(&[1.0], 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The filtered series stays within the min/max envelope.
        #[test]
        fn envelope(series in prop::collection::vec(0.0f64..1.0, 1..200), window in 1usize..20) {
            let f = mean_filter(&series, window);
            let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in f {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        /// Output length equals input length.
        #[test]
        fn length_preserved(series in prop::collection::vec(0.0f64..1.0, 0..100), window in 1usize..10) {
            prop_assert_eq!(mean_filter(&series, window).len(), series.len());
            prop_assert_eq!(noise_series(&series, window).len(), series.len());
        }
    }
}
