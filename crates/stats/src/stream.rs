//! Streaming (out-of-core) accumulators and shared curve decimation.
//!
//! The analysis-pass framework in `cgc-core` can consume a trace either
//! fully materialized or as a stream of record batches. The streaming mode
//! needs accumulators whose memory does not grow with the trace:
//!
//! * [`StreamingSummary`] — a mergeable Welford accumulator for
//!   count/min/max/mean/std in O(1) memory;
//! * [`Reservoir`] — a fixed-capacity uniform sample (Algorithm R) with a
//!   deterministic internal RNG, for bounded-memory approximations of
//!   ECDF and mass–count statistics behind an explicit `approx` flag.
//!
//! [`decimate`] is the staircase-decimation helper shared by the Fig. 4
//! report curves and the plot-data exporter: it thins a plottable
//! staircase to at most `max` points while always keeping the last point
//! (so CDFs still end at 1).

use crate::summary::Summary;

/// Thins `points` to at most `max` entries by even index striding,
/// always retaining the final point.
///
/// For `points.len() <= max` the input is returned unchanged. `max` must
/// be at least 1 when decimation actually occurs.
pub fn decimate<T: Copy>(points: Vec<T>, max: usize) -> Vec<T> {
    if points.len() <= max {
        return points;
    }
    let step = points.len() as f64 / max as f64;
    let mut out: Vec<T> = (0..max)
        .map(|i| points[(i as f64 * step) as usize])
        .collect();
    if let Some(&last) = points.last() {
        *out.last_mut().expect("max >= 1") = last;
    }
    out
}

/// Mergeable scalar-summary accumulator (Welford's algorithm).
///
/// Unlike [`Summary::of`], which needs the whole sample in memory, this
/// accumulates in O(1) space and two reservoir-less accumulators can be
/// [merged](Self::merge) (Chan et al. parallel variance). The resulting
/// moments are mathematically equal to the batch computation but **not
/// bit-identical** (different floating-point summation order), and the
/// median is unavailable without the sample — [`summary`](Self::summary)
/// reports the mean in its place. Exact reports therefore keep using
/// [`Summary::of`]; this type backs the explicitly-approximate streaming
/// mode and progress metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingSummary {
    count: u64,
    min: f64,
    max: f64,
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
}

impl StreamingSummary {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingSummary::default()
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in. NaNs are rejected.
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "streaming summary input must not contain NaN");
        self.count += 1;
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Folds another accumulator in (parallel Welford combination).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 if empty).
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0).sqrt()
        }
    }

    /// Renders as a [`Summary`]. The median slot carries the mean (the
    /// exact median needs the sample); see the type docs.
    pub fn summary(&self) -> Summary {
        if self.count == 0 {
            return Summary::of(&[]);
        }
        Summary {
            count: self.count as usize,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            std: self.std(),
            median: self.mean(),
        }
    }
}

/// Deterministic xorshift64* generator for [`Reservoir`].
///
/// Statistical quality is ample for reservoir index selection, and being
/// self-contained keeps `cgc-stats` free of RNG dependencies while making
/// reservoir contents reproducible run over run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SampleRng(u64);

impl SampleRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `[0, n)`.
    fn index(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Fixed seed: reservoirs are part of deterministic reports, so the
/// sequence must be identical across runs and platforms.
const RESERVOIR_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fixed-capacity uniform random sample of a stream (Vitter's
/// Algorithm R) with a deterministic internal RNG.
///
/// After `n` pushes every observation is retained with probability
/// `capacity / n`, so ECDF / mass–count statistics over
/// [`values`](Self::values) approximate the full-stream statistics with
/// bounded memory. Used by the streaming analysis mode behind its
/// explicit `approx` flag; results are deterministic for a given input
/// sequence but not equal to the exact statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    sample: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: SampleRng,
}

impl Reservoir {
    /// An empty reservoir retaining at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            sample: Vec::new(),
            capacity,
            seen: 0,
            rng: SampleRng(RESERVOIR_SEED),
        }
    }

    /// Offers one observation to the sample.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(v);
            return;
        }
        let j = self.rng.index(self.seen);
        if (j as usize) < self.capacity {
            self.sample[j as usize] = v;
        }
    }

    /// Merges another reservoir: draws the retained union proportionally
    /// to how many observations each side has seen, so the result remains
    /// an approximately uniform sample of the combined stream.
    pub fn merge(&mut self, other: Reservoir) {
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            let capacity = self.capacity;
            *self = other;
            self.capacity = capacity;
            self.sample.truncate(capacity);
            return;
        }
        let mut a = std::mem::take(&mut self.sample);
        let mut b = other.sample;
        let mut wa = self.seen as f64;
        let mut wb = other.seen as f64;
        let mut out = Vec::with_capacity(self.capacity);
        while out.len() < self.capacity && (!a.is_empty() || !b.is_empty()) {
            let from_a = if b.is_empty() {
                true
            } else if a.is_empty() {
                false
            } else {
                self.rng.f64() * (wa + wb) < wa
            };
            let side = if from_a { &mut a } else { &mut b };
            let weight = if from_a { &mut wa } else { &mut wb };
            let per_item = *weight / side.len() as f64;
            let i = self.rng.index(side.len() as u64) as usize;
            out.push(side.swap_remove(i));
            *weight -= per_item;
        }
        self.sample = out;
        self.seen += other.seen;
    }

    /// The retained sample, in retention order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.sample
    }

    /// Total observations offered so far.
    #[inline]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether nothing has been retained yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Maximum retained observations.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_keeps_short_inputs() {
        let pts = vec![1, 2, 3];
        assert_eq!(decimate(pts.clone(), 10), pts);
        assert_eq!(decimate(pts.clone(), 3), pts);
    }

    #[test]
    fn decimate_bounds_and_keeps_last() {
        let pts: Vec<usize> = (0..10_000).collect();
        let out = decimate(pts, 512);
        assert_eq!(out.len(), 512);
        assert_eq!(out[0], 0);
        assert_eq!(*out.last().unwrap(), 9_999);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn streaming_summary_matches_batch_moments() {
        let sample = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6];
        let batch = Summary::of(&sample);
        let mut s = StreamingSummary::new();
        for &v in &sample {
            s.push(v);
        }
        assert_eq!(s.count(), 6);
        assert!((s.mean() - batch.mean).abs() < 1e-12);
        assert!((s.std() - batch.std).abs() < 1e-12);
        assert_eq!(s.summary().min, batch.min);
        assert_eq!(s.summary().max, batch.max);
    }

    #[test]
    fn streaming_summary_merge_equals_single_stream() {
        let (left, right) = ([1.0, 5.0, 2.0], [8.0, 0.5, 3.0, 7.0]);
        let mut a = StreamingSummary::new();
        let mut b = StreamingSummary::new();
        left.iter().for_each(|&v| a.push(v));
        right.iter().for_each(|&v| b.push(v));
        a.merge(&b);
        let mut whole = StreamingSummary::new();
        left.iter().chain(&right).for_each(|&v| whole.push(v));
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std() - whole.std()).abs() < 1e-12);
        assert_eq!(a.summary().min, whole.summary().min);
        assert_eq!(a.summary().max, whole.summary().max);
    }

    #[test]
    fn empty_streaming_summary_is_zeroed() {
        let s = StreamingSummary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.summary().count, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn streaming_summary_rejects_nan() {
        StreamingSummary::new().push(f64::NAN);
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut r = Reservoir::new(100);
        for i in 0..50 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 50);
        assert_eq!(r.seen(), 50);
        let expected: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(r.values(), &expected[..]);
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let fill = |n: u64| {
            let mut r = Reservoir::new(64);
            for i in 0..n {
                r.push(i as f64);
            }
            r
        };
        let a = fill(10_000);
        assert_eq!(a.len(), 64);
        assert_eq!(a.seen(), 10_000);
        // Same input sequence, same retained sample.
        assert_eq!(a, fill(10_000));
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        let mut r = Reservoir::new(500);
        for i in 0..100_000 {
            r.push(i as f64);
        }
        let mean = r.values().iter().sum::<f64>() / r.len() as f64;
        // Uniform over [0, 1e5): mean ~ 5e4, std of the sample mean ~ 1.3e3.
        assert!((mean - 50_000.0).abs() < 6_000.0, "mean {mean}");
    }

    #[test]
    fn reservoir_merge_preserves_counts_and_bounds() {
        let mut a = Reservoir::new(32);
        let mut b = Reservoir::new(32);
        for i in 0..1_000 {
            a.push(i as f64);
        }
        for i in 1_000..3_000 {
            b.push(i as f64);
        }
        a.merge(b);
        assert_eq!(a.seen(), 3_000);
        assert_eq!(a.len(), 32);
        assert!(a.values().iter().all(|&v| (0.0..3_000.0).contains(&v)));
        // Two thirds of the stream came from b's range, so the merged
        // sample should lean that way.
        let from_b = a.values().iter().filter(|&&v| v >= 1_000.0).count();
        assert!(from_b > 10, "only {from_b} of 32 from the larger side");
    }

    #[test]
    fn reservoir_merge_into_empty() {
        let mut a = Reservoir::new(8);
        let mut b = Reservoir::new(8);
        for i in 0..100 {
            b.push(i as f64);
        }
        a.merge(b);
        assert_eq!(a.seen(), 100);
        assert_eq!(a.len(), 8);
        let mut c = Reservoir::new(8);
        c.merge(Reservoir::new(8));
        assert_eq!(c.seen(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::new(0);
    }
}
