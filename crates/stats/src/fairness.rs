//! Jain's fairness index (paper Formula 3).
//!
//! Applied to the per-hour job-submission counts, the index measures how
//! *stable* the submission rate is: 1 means perfectly constant, `1/n` means
//! all submissions in a single hour. The paper reports 0.94 for Google and
//! 0.04–0.51 for the grid systems (Table I), attributing the low grid values
//! to strong diurnal periodicity.

/// Jain's fairness index `(Σx)² / (n · Σx²)` over non-negative values.
///
/// Returns 0.0 for an empty slice or an all-zero slice (no submissions at
/// all carries no stability information).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|v| *v >= 0.0 && v.is_finite()),
        "fairness inputs must be finite and non-negative"
    );
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Convenience overload for integer counts (jobs per hour).
pub fn jain_fairness_counts(counts: &[u64]) -> f64 {
    let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    jain_fairness(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_perfectly_fair() {
        assert!((jain_fairness(&[5.0; 24]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_burst_is_minimally_fair() {
        let mut xs = vec![0.0; 10];
        xs[3] = 100.0;
        assert!((jain_fairness(&xs) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn diurnal_pattern_scores_low() {
        // 12 busy hours at 100, 12 idle hours at 0 -> index 0.5.
        let mut xs = vec![100.0; 12];
        xs.extend(vec![0.0; 12]);
        assert!((jain_fairness(&xs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(jain_fairness(&[]), 0.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn counts_overload() {
        assert!((jain_fairness_counts(&[3, 3, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = jain_fairness(&[1.0, -1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The index lies in [1/n, 1] for any non-zero sample.
        #[test]
        fn bounded(xs in prop::collection::vec(0.0f64..1e4, 1..100)) {
            prop_assume!(xs.iter().any(|&v| v > 0.0));
            let f = jain_fairness(&xs);
            let n = xs.len() as f64;
            prop_assert!(f >= 1.0 / n - 1e-9, "f={f} below 1/n");
            prop_assert!(f <= 1.0 + 1e-9, "f={f} above 1");
        }

        /// Scale invariance: multiplying all rates by k keeps the index.
        #[test]
        fn scale_invariant(xs in prop::collection::vec(0.1f64..1e3, 1..50), k in 0.1f64..100.0) {
            let scaled: Vec<f64> = xs.iter().map(|v| v * k).collect();
            prop_assert!((jain_fairness(&xs) - jain_fairness(&scaled)).abs() < 1e-9);
        }
    }
}
