//! Heterogeneous machine fleet generation.
//!
//! The Google fleet mixes a few discrete platform configurations; the trace
//! exposes them as normalized capacity classes (paper Fig. 7 dotted lines).
//! [`FleetConfig::google`] uses a plausible class mix with most machines at
//! half the maximum CPU and memory; grid fleets are homogeneous.

use crate::dist::weighted_index;
use cgc_trace::{MachineRecord, TraceBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};

fn one_machine_per_domain() -> usize {
    1
}

/// Configuration of a machine fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of machines.
    pub count: usize,
    /// `(capacity, weight)` pairs for CPU classes.
    pub cpu_classes: Vec<(f64, f64)>,
    /// `(capacity, weight)` pairs for memory classes.
    pub memory_classes: Vec<(f64, f64)>,
    /// Page-cache capacity (uniform across the fleet).
    pub page_cache_capacity: f64,
    /// Machines per failure domain (rack / power domain). Machines are
    /// assigned to domains in id order: domain `d` owns machines
    /// `d*N .. (d+1)*N`. With 1 (the default) every machine is its own
    /// domain and fault injection degenerates to independent node churn.
    #[serde(default = "one_machine_per_domain")]
    pub machines_per_domain: usize,
}

impl FleetConfig {
    /// The Google-like heterogeneous fleet: CPU classes {0.25, 0.5, 1},
    /// memory classes {0.25, 0.5, 0.75, 1}, dominated by mid-size
    /// machines, racked 10 to a failure domain.
    pub fn google(count: usize) -> Self {
        FleetConfig {
            count,
            cpu_classes: vec![(0.25, 0.30), (0.5, 0.55), (1.0, 0.15)],
            memory_classes: vec![(0.25, 0.25), (0.5, 0.45), (0.75, 0.22), (1.0, 0.08)],
            page_cache_capacity: 1.0,
            machines_per_domain: 10,
        }
    }

    /// A homogeneous grid cluster (every node identical, full capacity,
    /// no rack-level failure correlation).
    pub fn homogeneous(count: usize) -> Self {
        FleetConfig {
            count,
            cpu_classes: vec![(1.0, 1.0)],
            memory_classes: vec![(1.0, 1.0)],
            page_cache_capacity: 1.0,
            machines_per_domain: 1,
        }
    }

    /// Replaces the failure-domain width (builder style). A width of 0 is
    /// treated as 1.
    pub fn with_domains(mut self, machines_per_domain: usize) -> Self {
        self.machines_per_domain = machines_per_domain;
        self
    }

    /// Effective domain width (guards against a configured 0).
    fn domain_width(&self) -> usize {
        self.machines_per_domain.max(1)
    }

    /// Number of failure domains in the fleet.
    pub fn num_domains(&self) -> usize {
        self.count.div_ceil(self.domain_width())
    }

    /// Failure domain of a machine index.
    pub fn domain_of(&self, machine: usize) -> usize {
        machine / self.domain_width()
    }

    /// Machine indices belonging to a domain (empty if out of range).
    pub fn domain_members(&self, domain: usize) -> std::ops::Range<usize> {
        let w = self.domain_width();
        let start = (domain * w).min(self.count);
        let end = (start + w).min(self.count);
        start..end
    }

    /// Partitions the fleet's failure domains into at most `shards`
    /// contiguous groups of near-equal machine count, returned as
    /// `(domain_range, machine_range)` pairs covering the fleet exactly.
    ///
    /// Shard boundaries always coincide with domain boundaries, so a
    /// correlated domain outage never straddles two shards. The split is a
    /// pure function of the fleet topology and `shards` — it does not
    /// depend on thread count, which is what makes sharded simulation
    /// output reproducible on any machine.
    pub fn shard_ranges(
        &self,
        shards: usize,
    ) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
        let domains = self.num_domains();
        let shards = shards.clamp(1, domains.max(1));
        (0..shards)
            .map(|s| {
                // Even split of the domain list: shard s owns domains
                // [s*D/S, (s+1)*D/S). Every domain lands in exactly one
                // shard; widths differ by at most one domain.
                let d0 = s * domains / shards;
                let d1 = (s + 1) * domains / shards;
                let m0 = self.domain_members(d0).start;
                let m1 = if d1 == domains {
                    self.count
                } else {
                    self.domain_members(d1).start
                };
                (d0..d1, m0..m1)
            })
            .collect()
    }

    /// Draws the fleet.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<MachineRecord> {
        assert!(self.count > 0, "fleet must have at least one machine");
        let cpu_weights: Vec<f64> = self.cpu_classes.iter().map(|&(_, w)| w).collect();
        let mem_weights: Vec<f64> = self.memory_classes.iter().map(|&(_, w)| w).collect();
        (0..self.count)
            .map(|i| {
                let cpu = self.cpu_classes[weighted_index(&cpu_weights, rng)].0;
                let mem = self.memory_classes[weighted_index(&mem_weights, rng)].0;
                MachineRecord::new(i.into(), cpu, mem, self.page_cache_capacity)
            })
            .collect()
    }

    /// Adds the generated fleet to a trace builder.
    pub fn populate<R: Rng + ?Sized>(&self, builder: &mut TraceBuilder, rng: &mut R) {
        for m in self.generate(rng) {
            builder.add_machine(m.cpu_capacity, m.memory_capacity, m.page_cache_capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn google_fleet_uses_paper_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let fleet = FleetConfig::google(2_000).generate(&mut rng);
        assert_eq!(fleet.len(), 2_000);
        for m in &fleet {
            assert!(cgc_trace::CPU_CAPACITY_CLASSES.contains(&m.cpu_capacity));
            assert!(cgc_trace::MEMORY_CAPACITY_CLASSES.contains(&m.memory_capacity));
            assert_eq!(m.page_cache_capacity, 1.0);
        }
        // The mid CPU class dominates.
        let half =
            fleet.iter().filter(|m| m.cpu_capacity == 0.5).count() as f64 / fleet.len() as f64;
        assert!((half - 0.55).abs() < 0.05, "half-class share={half}");
    }

    #[test]
    fn homogeneous_fleet() {
        let mut rng = StdRng::seed_from_u64(3);
        let fleet = FleetConfig::homogeneous(10).generate(&mut rng);
        assert!(fleet
            .iter()
            .all(|m| m.cpu_capacity == 1.0 && m.memory_capacity == 1.0));
    }

    #[test]
    fn ids_are_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let fleet = FleetConfig::google(50).generate(&mut rng);
        for (i, m) in fleet.iter().enumerate() {
            assert_eq!(m.id.index(), i);
        }
    }

    #[test]
    fn populate_adds_to_builder() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = TraceBuilder::new("x", 100);
        FleetConfig::google(25).populate(&mut b, &mut rng);
        let trace = b.build().unwrap();
        assert_eq!(trace.machines.len(), 25);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = FleetConfig::google(100).generate(&mut StdRng::seed_from_u64(11));
        let b = FleetConfig::google(100).generate(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn domain_topology_partitions_the_fleet() {
        let fleet = FleetConfig::google(25); // 10 per domain -> 3 domains
        assert_eq!(fleet.num_domains(), 3);
        assert_eq!(fleet.domain_members(0), 0..10);
        assert_eq!(fleet.domain_members(2), 20..25);
        assert_eq!(fleet.domain_members(3), 25..25);
        for m in 0..fleet.count {
            assert!(fleet.domain_members(fleet.domain_of(m)).contains(&m));
        }
        // Grid fleets default to one machine per domain.
        assert_eq!(FleetConfig::homogeneous(5).num_domains(), 5);
        // Width 0 degenerates to independent machines instead of dividing
        // by zero.
        assert_eq!(FleetConfig::homogeneous(5).with_domains(0).num_domains(), 5);
        assert_eq!(FleetConfig::google(40).with_domains(20).num_domains(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_fleet_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = FleetConfig::google(0).generate(&mut rng);
    }

    #[test]
    fn shard_ranges_cover_fleet_on_domain_boundaries() {
        for (count, per_domain, shards) in [
            (25usize, 10usize, 3usize),
            (100, 10, 4),
            (100, 10, 7),
            (5, 1, 8), // more shards than domains: clamped
            (40, 20, 2),
            (33, 10, 1),
        ] {
            let fleet = FleetConfig::google(count).with_domains(per_domain);
            let ranges = fleet.shard_ranges(shards);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= shards.max(1));
            // Exact cover, in order, no gaps or overlaps.
            assert_eq!(ranges.first().unwrap().1.start, 0);
            assert_eq!(ranges.last().unwrap().1.end, count);
            for w in ranges.windows(2) {
                assert_eq!(w[0].0.end, w[1].0.start);
                assert_eq!(w[0].1.end, w[1].1.start);
            }
            // Every shard boundary is a domain boundary: no domain's
            // member range straddles two shards.
            for (domains, machines) in &ranges {
                for d in domains.clone() {
                    let m = fleet.domain_members(d);
                    assert!(
                        m.start >= machines.start && m.end <= machines.end,
                        "domain {d} straddles shard {machines:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_ranges_balance_machine_counts() {
        let fleet = FleetConfig::google(1_000); // 100 domains of 10
        let ranges = fleet.shard_ranges(8);
        assert_eq!(ranges.len(), 8);
        let sizes: Vec<usize> = ranges.iter().map(|(_, m)| m.len()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        // Even split up to one domain of slack.
        assert!(max - min <= 10, "sizes={sizes:?}");
    }

    #[test]
    fn split_seed_streams_are_distinct_and_stable() {
        use crate::split_seed;
        let a = split_seed(0xC10D, 0);
        let b = split_seed(0xC10D, 1);
        assert_ne!(a, b);
        assert_ne!(a, 0xC10D);
        // Pure function: same inputs, same stream.
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        // Different masters diverge on the same stream index.
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
    }
}
