//! Generator output: job and task specifications.
//!
//! A [`Workload`] is the contract between the generators and the simulator:
//! it says *what users ask for* (submission times, priorities, demands,
//! nominal runtimes) and leaves *what the cluster does about it*
//! (placement, preemption, failures, sampling) to `cgc-sim`.
//!
//! For the paper's pure work-load analyses (Figs. 2–6, Table I) a full
//! simulation is unnecessary: [`Workload::into_workload_trace`] converts the
//! specification directly into a machine-less [`Trace`] whose job/task
//! records carry the nominal runtimes.

use crate::MAX_MACHINE_CORES;
use cgc_trace::task::TaskOutcome;
use cgc_trace::{
    Demand, Duration, JobId, JobRecord, Priority, TaskId, TaskRecord, Timestamp, Trace, UserId,
};
use serde::{Deserialize, Serialize};

/// Specification of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Requested resources, normalized to the largest machine.
    pub demand: Demand,
    /// Nominal runtime if the task runs to completion undisturbed.
    pub runtime: Duration,
    /// Average number of *processors* the task keeps busy while running.
    ///
    /// Google tasks are sub-core (`< 1`); grid tasks equal their
    /// parallel width. Feeds the paper's Formula 4 per-job CPU usage.
    pub cpu_processors: f64,
    /// Mean fraction of the CPU demand actually consumed (0–1); the
    /// simulator modulates instantaneous usage around this.
    pub utilization: f64,
}

/// Specification of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submission time.
    pub submit: Timestamp,
    /// Submitting user.
    pub user: UserId,
    /// Priority for all tasks of the job.
    pub priority: Priority,
    /// The job's tasks.
    pub tasks: Vec<TaskSpec>,
}

impl JobSpec {
    /// Job length if every task starts at submission and runs nominally:
    /// the longest task runtime (tasks run concurrently).
    pub fn nominal_length(&self) -> Duration {
        self.tasks.iter().map(|t| t.runtime).max().unwrap_or(0)
    }

    /// Cumulative nominal CPU time over all processors, in core-seconds.
    pub fn nominal_cpu_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.cpu_processors * t.runtime as f64)
            .sum()
    }

    /// Mean memory held while active, normalized (sum of task demands).
    pub fn nominal_memory(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.demand.memory * t.utilization)
            .sum()
    }
}

/// A complete generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// System label ("google", "auvergrid", ...).
    pub system: String,
    /// Observation horizon in seconds.
    pub horizon: Duration,
    /// Jobs sorted by submission time.
    pub jobs: Vec<JobSpec>,
}

impl Workload {
    /// Total number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Converts the specification into a workload-only trace (no machines,
    /// no host series, no event log): every task is assumed to start at
    /// submission and run its nominal runtime.
    ///
    /// This is exactly the view the paper's Section III takes of the
    /// GWA/PWA traces, which record per-job submit/start/end times without
    /// host-level detail. Jobs whose nominal completion falls beyond the
    /// horizon stay uncompleted (their lengths are excluded from CDFs),
    /// but their tasks keep the full nominal execution time: truncating at
    /// the horizon would censor exactly the heavy tail the paper's Fig. 4
    /// analyzes.
    pub fn into_workload_trace(self) -> Trace {
        let mut jobs = Vec::with_capacity(self.jobs.len());
        let mut tasks = Vec::new();
        for (ji, spec) in self.jobs.iter().enumerate() {
            let id = JobId::from(ji);
            let completion = spec.submit + spec.nominal_length();
            let mut task_ids = Vec::with_capacity(spec.tasks.len());
            for t in &spec.tasks {
                let tid = TaskId::from(tasks.len());
                task_ids.push(tid);
                let finished = spec.submit + t.runtime <= self.horizon;
                tasks.push(TaskRecord {
                    id: tid,
                    job: id,
                    priority: spec.priority,
                    submit_time: spec.submit,
                    demand: t.demand,
                    execution_time: t.runtime,
                    attempts: 1,
                    resubmit_wait: 0,
                    outcome: if finished {
                        TaskOutcome::Finished
                    } else {
                        TaskOutcome::Unfinished
                    },
                });
            }
            jobs.push(JobRecord {
                id,
                user: spec.user,
                priority: spec.priority,
                submit_time: spec.submit,
                tasks: task_ids,
                completion_time: (completion <= self.horizon).then_some(completion),
                cpu_seconds: spec.nominal_cpu_seconds(),
                mean_memory: spec.nominal_memory(),
            });
        }
        Trace {
            system: self.system,
            horizon: self.horizon,
            machines: Vec::new(),
            jobs,
            tasks,
            events: Vec::new(),
            host_series: Vec::new(),
        }
    }
}

/// Converts a processor count into a normalized CPU demand.
pub fn processors_to_demand(processors: f64) -> f64 {
    (processors / MAX_MACHINE_CORES).min(1.0)
}

/// Zipf-weighted user sampler.
///
/// Real user populations are heavily skewed: a few service accounts and
/// power users submit most jobs. Weights follow `1/rank^s`.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSampler {
    cumulative: Vec<f64>,
}

impl UserSampler {
    /// Creates a sampler over `users` ranks with exponent `s`.
    pub fn zipf(users: u32, s: f64) -> Self {
        assert!(users > 0, "need at least one user");
        let mut acc = 0.0;
        let cumulative = (1..=users)
            .map(|rank| {
                acc += 1.0 / (rank as f64).powf(s);
                acc
            })
            .collect();
        UserSampler { cumulative }
    }

    /// Draws a user id.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> cgc_trace::UserId {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < u);
        cgc_trace::UserId(idx.min(self.cumulative.len() - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(runtime: Duration, processors: f64) -> TaskSpec {
        TaskSpec {
            demand: Demand::new(processors_to_demand(processors), 0.01),
            runtime,
            cpu_processors: processors,
            utilization: 0.8,
        }
    }

    fn job(submit: Timestamp, tasks: Vec<TaskSpec>) -> JobSpec {
        JobSpec {
            submit,
            user: UserId(0),
            priority: Priority::from_level(2),
            tasks,
        }
    }

    #[test]
    fn nominal_length_is_longest_task() {
        let j = job(0, vec![task(100, 1.0), task(250, 1.0), task(50, 1.0)]);
        assert_eq!(j.nominal_length(), 250);
        assert_eq!(job(0, vec![]).nominal_length(), 0);
    }

    #[test]
    fn nominal_cpu_seconds_accumulates_processors() {
        let j = job(0, vec![task(100, 2.0), task(100, 0.5)]);
        assert!((j.nominal_cpu_seconds() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn workload_trace_has_consistent_jobs() {
        let w = Workload {
            system: "test".into(),
            horizon: 1_000,
            jobs: vec![
                job(10, vec![task(100, 1.0)]),
                job(900, vec![task(500, 1.0)]),
            ],
        };
        let trace = w.into_workload_trace();
        assert_eq!(trace.jobs.len(), 2);
        assert_eq!(trace.tasks.len(), 2);
        // First job completes at 110.
        assert_eq!(trace.jobs[0].completion_time, Some(110));
        assert_eq!(trace.jobs[0].length(), Some(100));
        // Second job would complete at 1400 > horizon: unfinished.
        assert_eq!(trace.jobs[1].completion_time, None);
        assert_eq!(trace.tasks[1].outcome, TaskOutcome::Unfinished);
        // Its recorded execution keeps the nominal runtime (no censoring).
        assert_eq!(trace.tasks[1].execution_time, 500);
    }

    #[test]
    fn workload_trace_cpu_usage_matches_formula4() {
        // A 2-processor task for 300 s: cpu usage = 600 / 300 = 2.
        let w = Workload {
            system: "test".into(),
            horizon: 10_000,
            jobs: vec![job(0, vec![task(300, 2.0)])],
        };
        let trace = w.into_workload_trace();
        let usage = trace.jobs[0].cpu_usage().unwrap();
        assert!((usage - 2.0).abs() < 1e-9);
    }

    #[test]
    fn num_tasks_counts_all_jobs() {
        let w = Workload {
            system: "t".into(),
            horizon: 100,
            jobs: vec![job(0, vec![task(1, 1.0); 3]), job(1, vec![task(1, 1.0); 2])],
        };
        assert_eq!(w.num_tasks(), 5);
    }

    #[test]
    fn processors_to_demand_caps_at_one() {
        assert!((processors_to_demand(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(processors_to_demand(100.0), 1.0);
    }

    #[test]
    fn user_sampler_is_rank_skewed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sampler = UserSampler::zipf(100, 1.1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng).0 as usize] += 1;
        }
        // Rank 0 dominates rank 9 dominates rank 99.
        assert!(counts[0] > 2 * counts[9], "{} vs {}", counts[0], counts[9]);
        assert!(counts[9] > counts[99], "{} vs {}", counts[9], counts[99]);
        // Every id stays in range and most users appear at least once.
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active > 80, "active={active}");
    }

    #[test]
    fn user_sampler_single_user() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sampler = UserSampler::zipf(1, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sampler.sample(&mut rng), UserId(0));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn user_sampler_zero_users_rejected() {
        let _ = UserSampler::zipf(0, 1.0);
    }
}
