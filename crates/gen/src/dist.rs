//! Size distributions for lengths, demands and burst sizes.
//!
//! Workload modeling needs a small algebra of positive-valued
//! distributions. `rand_distr` supplies the exact samplers (log-normal,
//! exponential); the trace-specific pieces — log-uniform segments and the
//! bounded Pareto that gives task lengths their heavy tail — are implemented
//! here, together with a weighted [`Mixture`] used to hit the paper's
//! published quantiles exactly.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

/// A positive-valued distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform over `[lo, hi)`: uniform in log-space, so each decade
    /// gets equal probability. The natural "spread evenly across scales"
    /// filler between two published quantiles.
    LogUniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// Mean value.
        mean: f64,
    },
    /// Log-normal parameterized by its median and the σ of the log.
    LogNormal {
        /// Median (= e^μ).
        median: f64,
        /// Standard deviation of ln X.
        sigma: f64,
    },
    /// Pareto truncated to `[lo, hi]` via inverse-CDF sampling.
    ///
    /// With `alpha < 1` the mass concentrates in the largest items — the
    /// regime of Google's task lengths (94% of tasks are short, yet the
    /// month-long services dominate the total compute mass).
    BoundedPareto {
        /// Tail exponent.
        alpha: f64,
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl Dist {
    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::LogUniform { lo, hi } => {
                debug_assert!(lo > 0.0 && hi > lo);
                let u = rng.gen_range(lo.ln()..hi.ln());
                u.exp()
            }
            Dist::Exp { mean } => {
                let d = Exp::new(1.0 / mean).expect("mean must be positive");
                d.sample(rng)
            }
            Dist::LogNormal { median, sigma } => {
                let d = LogNormal::new(median.ln(), sigma).expect("sigma must be finite");
                d.sample(rng)
            }
            Dist::BoundedPareto { alpha, lo, hi } => {
                debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
                // Inverse CDF of the truncated Pareto.
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / alpha)
            }
        }
    }

    /// Draws a value clamped into `[lo, hi]`. Useful for demand
    /// distributions whose tails must not exceed machine capacity.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// A finite weighted mixture of [`Dist`] components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    /// `(cumulative weight, component)` with the last cumulative weight
    /// equal to 1.
    cumulative: Vec<(f64, Dist)>,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights are
    /// normalized; they must be positive and sum to something positive.
    pub fn new(components: Vec<(f64, Dist)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| *w > 0.0 && w.is_finite()),
            "mixture weights must be positive"
        );
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        let mut acc = 0.0;
        let cumulative = components
            .into_iter()
            .map(|(w, d)| {
                acc += w / total;
                (acc, d)
            })
            .collect::<Vec<_>>();
        Mixture { cumulative }
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cumulative.partition_point(|(c, _)| *c < u);
        let (_, dist) = &self.cumulative[idx.min(self.cumulative.len() - 1)];
        dist.sample(rng)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false; construction rejects empty mixtures.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Draws an index from a discrete weighted distribution.
///
/// Used for priority levels (Fig. 2 histogram) and machine capacity
/// classes.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(
        !weights.is_empty(),
        "weighted_index needs at least one weight"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn draw_many(d: &Dist, n: usize) -> Vec<f64> {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).collect()
    }

    #[test]
    fn constant_is_constant() {
        assert!(draw_many(&Dist::Constant(3.5), 10)
            .iter()
            .all(|&v| v == 3.5));
    }

    #[test]
    fn uniform_bounds() {
        let xs = draw_many(&Dist::Uniform { lo: 2.0, hi: 5.0 }, 1000);
        assert!(xs.iter().all(|&v| (2.0..5.0).contains(&v)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn log_uniform_bounds_and_scale_balance() {
        let xs = draw_many(&Dist::LogUniform { lo: 1.0, hi: 100.0 }, 4000);
        assert!(xs.iter().all(|&v| (1.0..100.0).contains(&v)));
        // Each decade gets ~half the mass.
        let below10 = xs.iter().filter(|&&v| v < 10.0).count() as f64 / xs.len() as f64;
        assert!((below10 - 0.5).abs() < 0.05, "below10={below10}");
    }

    #[test]
    fn exp_mean() {
        let xs = draw_many(&Dist::Exp { mean: 4.0 }, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn lognormal_median() {
        let xs = draw_many(
            &Dist::LogNormal {
                median: 10.0,
                sigma: 1.0,
            },
            20_000,
        );
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 10.0).abs() < 1.0, "median={median}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = Dist::BoundedPareto {
            alpha: 0.7,
            lo: 10.0,
            hi: 1000.0,
        };
        let xs = draw_many(&d, 5000);
        assert!(xs.iter().all(|&v| (10.0..=1000.0 + 1e-9).contains(&v)));
        // Heavy concentration near the lower bound.
        let below100 = xs.iter().filter(|&&v| v < 100.0).count() as f64 / xs.len() as f64;
        assert!(below100 > 0.6, "below100={below100}");
    }

    #[test]
    fn bounded_pareto_tail_mass_grows_with_smaller_alpha() {
        let heavy = Dist::BoundedPareto {
            alpha: 0.4,
            lo: 1.0,
            hi: 1e6,
        };
        let light = Dist::BoundedPareto {
            alpha: 1.8,
            lo: 1.0,
            hi: 1e6,
        };
        let sum_heavy: f64 = draw_many(&heavy, 5000).iter().sum();
        let sum_light: f64 = draw_many(&light, 5000).iter().sum();
        assert!(
            sum_heavy > 10.0 * sum_light,
            "heavy={sum_heavy} light={sum_light}"
        );
    }

    #[test]
    fn sample_clamped_clamps() {
        let d = Dist::Constant(5.0);
        let mut r = rng();
        assert_eq!(d.sample_clamped(&mut r, 0.0, 1.0), 1.0);
        assert_eq!(d.sample_clamped(&mut r, 6.0, 9.0), 6.0);
    }

    #[test]
    fn mixture_weights_respected() {
        let m = Mixture::new(vec![(0.8, Dist::Constant(1.0)), (0.2, Dist::Constant(2.0))]);
        let mut r = rng();
        let n = 10_000;
        let ones = (0..n).filter(|_| m.sample(&mut r) == 1.0).count() as f64 / n as f64;
        assert!((ones - 0.8).abs() < 0.02, "ones={ones}");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn mixture_normalizes_weights() {
        let m = Mixture::new(vec![(8.0, Dist::Constant(1.0)), (2.0, Dist::Constant(2.0))]);
        let mut r = rng();
        let n = 10_000;
        let ones = (0..n).filter(|_| m.sample(&mut r) == 1.0).count() as f64 / n as f64;
        assert!((ones - 0.8).abs() < 0.02, "ones={ones}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_rejected() {
        let _ = Mixture::new(vec![(0.0, Dist::Constant(1.0))]);
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 3.0];
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| weighted_index(&weights, &mut r) == 1)
            .count() as f64
            / n as f64;
        assert!((ones - 0.75).abs() < 0.02, "ones={ones}");
    }

    #[test]
    fn weighted_index_single() {
        let mut r = rng();
        assert_eq!(weighted_index(&[2.0], &mut r), 0);
    }

    #[test]
    fn determinism_under_seed() {
        let d = Dist::LogNormal {
            median: 5.0,
            sigma: 0.5,
        };
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// All distributions produce positive, finite values for sane params.
        #[test]
        fn positive_finite(seed in 0u64..1000) {
            let mut r = StdRng::seed_from_u64(seed);
            let dists = [
                Dist::Uniform { lo: 0.5, hi: 2.0 },
                Dist::LogUniform { lo: 0.1, hi: 10.0 },
                Dist::Exp { mean: 3.0 },
                Dist::LogNormal { median: 1.0, sigma: 1.5 },
                Dist::BoundedPareto { alpha: 0.9, lo: 1.0, hi: 100.0 },
            ];
            for d in &dists {
                let v = d.sample(&mut r);
                prop_assert!(v.is_finite() && v > 0.0, "{d:?} gave {v}");
            }
        }

        /// weighted_index never exceeds bounds.
        #[test]
        fn weighted_index_in_range(weights in prop::collection::vec(0.01f64..10.0, 1..20),
                                   seed in 0u64..1000) {
            let mut r = StdRng::seed_from_u64(seed);
            let idx = weighted_index(&weights, &mut r);
            prop_assert!(idx < weights.len());
        }
    }
}
