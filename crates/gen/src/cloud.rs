//! The Google data-center workload generator.
//!
//! Calibration targets, all taken from the paper:
//!
//! * **arrivals** (Table I): mean 552 jobs/hour, very stable
//!   (fairness 0.94), max ≈ 1421, min ≈ 36;
//! * **priorities** (Fig. 2): twelve levels in three clusters, most mass on
//!   low priorities 1–4;
//! * **tasks per job**: usually one, with rare map-reduce-style fan-outs
//!   (the trace averages ~37 tasks/job over 670 K jobs and 25 M tasks
//!   precisely because of those rare wide jobs);
//! * **task lengths** (§VI and Fig. 4): ~55% under 10 minutes, ~90% under
//!   1 hour, ~94% under 3 hours, with a heavy service tail out to the
//!   29-day trace maximum and mass–count joint ratio ≈ 6/94;
//! * **demands** (Fig. 6): sub-processor CPU per job, small memory
//!   footprints.
//!
//! The length distribution is piecewise: log-uniform segments pinned at the
//! published quantiles, with a bounded-Pareto tail for the long-running
//! services.

use crate::arrival::{generate_arrivals, RateProfile};
use crate::dist::{weighted_index, Dist, Mixture};
use crate::workload::{JobSpec, TaskSpec, UserSampler, Workload};
use crate::MAX_MACHINE_CORES;
use cgc_trace::{Demand, Duration, Priority, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mean jobs per hour in the full-scale Google trace (Table I).
pub const FULL_SCALE_JOBS_PER_HOUR: f64 = 552.0;

/// Machines in the full-scale Google trace.
pub const FULL_SCALE_MACHINES: usize = 12_500;

/// Relative weights of the 12 job priorities, approximating Fig. 2(a):
/// three clusters with most jobs at low priorities.
pub const JOB_PRIORITY_WEIGHTS: [f64; 12] = [
    16.0, 11.3, 17.0, 13.0, // low cluster (1-4), the bulk
    0.9, 4.0, 4.7, 2.0, // middle cluster (5-8)
    1.2, 0.7, 0.4, 0.2, // high cluster (9-12)
];

/// Priority weights for long-running services: production work sits in
/// the middle and high clusters (which is why the paper's high-priority
/// host-load views are dominated by slow-moving memory).
pub const SERVICE_PRIORITY_WEIGHTS: [f64; 12] = [
    0.5, 0.5, 0.5, 0.5, // little low-priority service work
    1.0, 2.0, 3.0, 3.0, // production cluster
    3.0, 2.5, 1.5, 1.0, // monitoring / latency-critical
];

/// Configuration of the Google workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoogleWorkload {
    /// Observation horizon in seconds (the trace spans one month).
    pub horizon: Duration,
    /// Mean job submissions per hour.
    pub jobs_per_hour: f64,
    /// Number of distinct users to attribute jobs to.
    pub num_users: u32,
    /// Fraction of jobs with exactly one task.
    pub single_task_fraction: f64,
    /// Fraction of jobs that are wide fan-outs (map-reduce style); the
    /// remainder get a handful of tasks.
    pub wide_job_fraction: f64,
    /// Optional sustained busy period (the trace runs hot around days
    /// 21–25; host-load configurations enable this so Fig. 10's busy
    /// window appears).
    pub surge: Option<crate::arrival::Surge>,
    /// Service jobs already resident at time zero.
    ///
    /// The real trace observes a warm cluster where long-running services
    /// were started weeks earlier; a cold simulation would take many days
    /// to accumulate them. Host-load configurations seed roughly five per
    /// machine.
    pub warm_service_jobs: u32,
    /// Cap on tasks per job.
    ///
    /// The trace's widest map-reduce jobs carry thousands of tasks — a
    /// rounding error on 12,500 machines, but a cluster-swallowing wave on
    /// a scaled-down fleet. Host-load configurations cap the width
    /// proportionally to the fleet.
    pub max_tasks_per_job: usize,
}

impl GoogleWorkload {
    /// Full-scale configuration: one month at 552 jobs/hour.
    pub fn full_scale() -> Self {
        GoogleWorkload {
            horizon: 30 * DAY,
            jobs_per_hour: FULL_SCALE_JOBS_PER_HOUR,
            num_users: 600,
            single_task_fraction: 0.82,
            wide_job_fraction: 0.04,
            surge: None,
            warm_service_jobs: 0,
            max_tasks_per_job: 4_000,
        }
    }

    /// Configuration scaled to a smaller fleet: submission rate shrinks
    /// proportionally so per-machine *job* arrival matches the full trace.
    pub fn scaled(machines: usize, horizon: Duration) -> Self {
        let factor = machines as f64 / FULL_SCALE_MACHINES as f64;
        GoogleWorkload {
            horizon,
            jobs_per_hour: FULL_SCALE_JOBS_PER_HOUR * factor,
            num_users: ((600.0 * factor).ceil() as u32).max(8),
            ..Self::full_scale()
        }
    }

    /// Host-load job rate per machine and hour.
    ///
    /// Chosen so the simulated per-machine *task* density (running counts
    /// in the tens, CPU usage ≈ 30–40%, memory ≈ 50–70%) matches the
    /// trace, compensating for the generator's lower mean tasks-per-job
    /// compared to the real trace's 37.
    pub const HOSTLOAD_JOBS_PER_MACHINE_HOUR: f64 = 3.0;

    /// Configuration for host-load simulations on a scaled fleet: the job
    /// rate preserves per-machine task density instead of per-machine job
    /// arrival (see [`Self::HOSTLOAD_JOBS_PER_MACHINE_HOUR`]).
    pub fn scaled_for_hostload(machines: usize, horizon: Duration) -> Self {
        GoogleWorkload {
            horizon,
            jobs_per_hour: Self::HOSTLOAD_JOBS_PER_MACHINE_HOUR * machines as f64,
            num_users: (machines as u32 / 4).max(8),
            // The trace's busy window spans roughly days 21-25 of 30.
            surge: Some(crate::arrival::Surge {
                start_frac: 0.70,
                end_frac: 0.83,
                factor: 1.5,
            }),
            warm_service_jobs: (3.5 * machines as f64).round() as u32,
            max_tasks_per_job: (machines * 8).max(50),
            ..Self::full_scale()
        }
    }

    /// The arrival-rate profile matching Table I's Google column: high
    /// mean, small diurnal swing, rare dips (trace gaps) and rare spikes.
    pub fn rate_profile(&self) -> RateProfile {
        RateProfile {
            mean_per_hour: self.jobs_per_hour,
            diurnal_amplitude: 0.12,
            peak_hour: 15.0,
            jitter_sigma: 0.20,
            dead_hour_prob: 0.004,
            dead_hour_floor: 0.07,
            burst_prob: 0.01,
            burst_size: Dist::Uniform {
                lo: 0.5 * self.jobs_per_hour,
                hi: 1.3 * self.jobs_per_hour,
            },
            burst_width: HOUR,
            surge: self.surge,
        }
    }

    /// Length mixture of single-task (interactive) jobs.
    ///
    /// Fig. 3 and the task quantiles constrain different weightings of the
    /// same population: over 80% of *jobs* finish within 1000 s (and
    /// single-task jobs are 82% of jobs), while the *task*-weighted
    /// quantiles (55% < 10 min, 90% < 1 h) are dominated by multi-task
    /// jobs. Single-task jobs therefore skew shorter than the task-level
    /// mixture.
    pub fn single_length_mixture() -> Mixture {
        Mixture::new(vec![
            (
                0.72,
                Dist::LogUniform {
                    lo: 15.0,
                    hi: 10.0 * MINUTE as f64,
                },
            ),
            (
                0.20,
                Dist::LogUniform {
                    lo: 10.0 * MINUTE as f64,
                    hi: HOUR as f64,
                },
            ),
            (
                0.04,
                Dist::LogUniform {
                    lo: HOUR as f64,
                    hi: 3.0 * HOUR as f64,
                },
            ),
            (
                0.036,
                Dist::LogUniform {
                    lo: 3.0 * HOUR as f64,
                    hi: DAY as f64,
                },
            ),
            (
                0.004,
                Dist::BoundedPareto {
                    alpha: 0.45,
                    lo: DAY as f64,
                    hi: 29.0 * DAY as f64,
                },
            ),
        ])
    }

    /// The task-length mixture pinned at the paper's quantiles.
    pub fn length_mixture() -> Mixture {
        Mixture::new(vec![
            // 55% under 10 minutes (§VI: "about 55% of tasks finish within
            // 10 minutes").
            (
                0.55,
                Dist::LogUniform {
                    lo: 20.0,
                    hi: 10.0 * MINUTE as f64,
                },
            ),
            // Up to 90% under 1 hour.
            (
                0.35,
                Dist::LogUniform {
                    lo: 10.0 * MINUTE as f64,
                    hi: HOUR as f64,
                },
            ),
            // Up to 94% under 3 hours (Fig. 4: "94% of execution times are
            // less than 3 hours").
            (
                0.04,
                Dist::LogUniform {
                    lo: HOUR as f64,
                    hi: 3.0 * HOUR as f64,
                },
            ),
            // Medium batch tail.
            (
                0.056,
                Dist::LogUniform {
                    lo: 3.0 * HOUR as f64,
                    hi: DAY as f64,
                },
            ),
            // Long-running services: days to the 29-day trace maximum.
            // Arrival share is small — services are a large share of the
            // *running population*, not of submissions.
            (
                0.004,
                Dist::BoundedPareto {
                    alpha: 0.45,
                    lo: DAY as f64,
                    hi: 29.0 * DAY as f64,
                },
            ),
        ])
    }

    /// Per-task CPU demand (normalized): a few percent of a large machine.
    pub fn cpu_demand_dist() -> Dist {
        Dist::LogNormal {
            median: 0.015,
            sigma: 0.6,
        }
    }

    /// Per-task memory demand (normalized): small interactive footprints
    /// (~200–400 MB at a 32 GB reference machine, per Fig. 6b).
    pub fn memory_demand_dist() -> Dist {
        Dist::LogNormal {
            median: 0.008,
            sigma: 0.9,
        }
    }

    /// Memory demand of long-running service tasks.
    ///
    /// Host memory in the trace is dominated by a few long-lived,
    /// memory-heavy services (which is how host memory usage sits around
    /// 60% — Figs. 10c, 12 — while the typical *job* footprint in Fig. 6b
    /// stays small).
    pub fn service_memory_demand_dist() -> Dist {
        Dist::LogNormal {
            median: 0.03,
            sigma: 0.7,
        }
    }

    /// CPU demand of long-running services (serving traffic keeps them
    /// hotter than the typical batch task).
    pub fn service_cpu_demand_dist() -> Dist {
        Dist::LogNormal {
            median: 0.035,
            sigma: 0.6,
        }
    }

    /// Generates the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        let _span = cgc_obs::span(cgc_obs::stages::GENERATE);
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = generate_arrivals(&self.rate_profile(), self.horizon, &mut rng);

        let lengths = Self::length_mixture();
        let cpu_dist = Self::cpu_demand_dist();
        let mem_dist = Self::memory_demand_dist();

        let single_lengths = Self::single_length_mixture();
        let users = UserSampler::zipf(self.num_users, 1.1);
        let jobs = arrivals
            .into_iter()
            .map(|submit| {
                let n_tasks = self.sample_tasks_per_job(&mut rng);
                // Tasks of one job are homogeneous replicas of one binary:
                // draw the job's nominal profile once and jitter per task.
                // Single-task (interactive) jobs skew shorter than the
                // task-weighted mixture; see `single_length_mixture`.
                let base_len = if n_tasks == 1 {
                    single_lengths.sample(&mut rng)
                } else {
                    lengths.sample(&mut rng)
                };
                // Production services (day-plus) run at middle/high
                // priority; wide map-reduce fan-outs are gratis batch work
                // at low priority; everything else follows the Fig. 2
                // histogram.
                let priority = if base_len > DAY as f64 {
                    Priority::from_level(
                        weighted_index(&SERVICE_PRIORITY_WEIGHTS, &mut rng) as u8 + 1,
                    )
                } else if n_tasks >= 20 {
                    Priority::from_level(
                        weighted_index(&JOB_PRIORITY_WEIGHTS[..4], &mut rng) as u8 + 1,
                    )
                } else {
                    Priority::from_level(weighted_index(&JOB_PRIORITY_WEIGHTS, &mut rng) as u8 + 1)
                };
                // Day-plus tasks are long-running services with large
                // resident sets and hotter CPU; everything else has a
                // small interactive/batch footprint.
                let (base_cpu, base_mem) = if base_len > DAY as f64 {
                    (
                        Self::service_cpu_demand_dist().sample_clamped(&mut rng, 0.004, 0.15),
                        Self::service_memory_demand_dist().sample_clamped(&mut rng, 0.005, 0.20),
                    )
                } else {
                    (
                        cpu_dist.sample_clamped(&mut rng, 0.004, 0.15),
                        mem_dist.sample_clamped(&mut rng, 0.001, 0.10),
                    )
                };
                let tasks = (0..n_tasks)
                    .map(|_| {
                        let len =
                            (base_len * rng.gen_range(0.7..1.3)).clamp(1.0, (29 * DAY) as f64);
                        let cpu = (base_cpu * rng.gen_range(0.8..1.2)).clamp(0.002, 0.3);
                        let mem = (base_mem * rng.gen_range(0.8..1.2)).clamp(0.001, 0.25);
                        let utilization = rng.gen_range(0.18..0.52);
                        TaskSpec {
                            demand: Demand::new(cpu, mem),
                            runtime: len.round() as Duration,
                            // Google tasks are sub-core sequential programs.
                            cpu_processors: (cpu * MAX_MACHINE_CORES * utilization).min(1.0),
                            utilization,
                        }
                    })
                    .collect();
                JobSpec {
                    submit,
                    user: users.sample(&mut rng),
                    priority,
                    tasks,
                }
            })
            .collect::<Vec<_>>();

        // Warm-start services: already-resident long-running jobs at t=0.
        let mut all_jobs = Vec::with_capacity(jobs.len() + self.warm_service_jobs as usize);
        for _ in 0..self.warm_service_jobs {
            let runtime = Dist::BoundedPareto {
                alpha: 0.45,
                lo: DAY as f64,
                hi: 29.0 * DAY as f64,
            }
            .sample(&mut rng);
            let cpu = Self::service_cpu_demand_dist().sample_clamped(&mut rng, 0.004, 0.15);
            let mem = Self::service_memory_demand_dist().sample_clamped(&mut rng, 0.005, 0.20);
            let utilization = rng.gen_range(0.18..0.52);
            all_jobs.push(JobSpec {
                submit: 0,
                user: users.sample(&mut rng),
                priority: Priority::from_level(
                    weighted_index(&SERVICE_PRIORITY_WEIGHTS, &mut rng) as u8 + 1,
                ),
                tasks: vec![TaskSpec {
                    demand: Demand::new(cpu, mem),
                    runtime: runtime.round() as Duration,
                    cpu_processors: (cpu * MAX_MACHINE_CORES * utilization).min(1.0),
                    utilization,
                }],
            });
        }
        all_jobs.extend(jobs);

        if cgc_obs::enabled() {
            let tasks: usize = all_jobs.iter().map(|j| j.tasks.len()).sum();
            cgc_obs::metrics().record_generated(all_jobs.len() as u64, tasks as u64);
        }
        Workload {
            system: "google".into(),
            horizon: self.horizon,
            jobs: all_jobs,
        }
    }

    fn sample_tasks_per_job<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < self.single_task_fraction {
            1
        } else if u < 1.0 - self.wide_job_fraction {
            rng.gen_range(2..=12)
        } else {
            // Map-reduce fan-outs: tens to thousands of tasks.
            let width = Dist::BoundedPareto {
                alpha: 0.6,
                lo: 20.0,
                hi: 4_000.0,
            }
            .sample(rng)
            .round();
            (width as usize).min(self.max_tasks_per_job)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_stats::{counts_per_window, jain_fairness, Ecdf};

    fn small() -> Workload {
        GoogleWorkload {
            horizon: 4 * DAY,
            jobs_per_hour: 300.0,
            num_users: 50,
            single_task_fraction: 0.82,
            wide_job_fraction: 0.04,
            surge: None,
            warm_service_jobs: 0,
            max_tasks_per_job: 4_000,
        }
        .generate(7)
    }

    #[test]
    fn arrival_rate_near_target() {
        let w = small();
        let rate = w.jobs.len() as f64 / (4.0 * 24.0);
        assert!((rate - 300.0).abs() < 40.0, "rate={rate}");
    }

    #[test]
    fn submission_fairness_is_high() {
        let w = small();
        let times: Vec<u64> = w.jobs.iter().map(|j| j.submit).collect();
        let counts = counts_per_window(&times, HOUR, 4 * DAY);
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let f = jain_fairness(&xs);
        assert!(f > 0.85, "fairness={f}");
    }

    #[test]
    fn task_length_quantiles_match_paper() {
        let w = small();
        let lengths: Vec<f64> = w
            .jobs
            .iter()
            .flat_map(|j| j.tasks.iter().map(|t| t.runtime as f64))
            .collect();
        let e = Ecdf::new(lengths);
        let under_10min = e.eval(10.0 * MINUTE as f64);
        let under_1h = e.eval(HOUR as f64);
        let under_3h = e.eval(3.0 * HOUR as f64);
        assert!((under_10min - 0.55).abs() < 0.06, "F(10min)={under_10min}");
        assert!((under_1h - 0.90).abs() < 0.05, "F(1h)={under_1h}");
        assert!((under_3h - 0.94).abs() < 0.04, "F(3h)={under_3h}");
    }

    #[test]
    fn most_jobs_are_single_task() {
        let w = small();
        let single =
            w.jobs.iter().filter(|j| j.tasks.len() == 1).count() as f64 / w.jobs.len() as f64;
        assert!((single - 0.82).abs() < 0.05, "single={single}");
        // ... yet the mean is pulled up by rare wide jobs.
        let mean_tasks = w.num_tasks() as f64 / w.jobs.len() as f64;
        assert!(mean_tasks > 3.0, "mean tasks/job={mean_tasks}");
    }

    #[test]
    fn priorities_cover_three_clusters_with_low_dominant() {
        let w = small();
        let mut per_class = [0usize; 3];
        for j in &w.jobs {
            per_class[j.priority.class().index()] += 1;
        }
        let total: usize = per_class.iter().sum();
        let low_share = per_class[0] as f64 / total as f64;
        assert!(low_share > 0.7, "low share={low_share}");
        assert!(per_class[1] > 0 && per_class[2] > 0);
    }

    #[test]
    fn job_cpu_usage_is_sub_processor() {
        let w = small();
        let trace = w.into_workload_trace();
        let usages: Vec<f64> = trace.jobs.iter().filter_map(|j| j.cpu_usage()).collect();
        assert!(!usages.is_empty());
        // Single-task interactive jobs stay below one processor.
        let below_one = usages.iter().filter(|&&u| u <= 1.0).count() as f64 / usages.len() as f64;
        assert!(below_one > 0.75, "below_one={below_one}");
    }

    #[test]
    fn lengths_have_heavy_tail() {
        let w = GoogleWorkload {
            horizon: 8 * DAY,
            ..GoogleWorkload::scaled(2_000, 8 * DAY)
        }
        .generate(3);
        let lengths: Vec<f64> = w
            .jobs
            .iter()
            .flat_map(|j| j.tasks.iter().map(|t| t.runtime as f64))
            .collect();
        let mc = cgc_stats::MassCount::new(lengths).unwrap();
        let (mass_pct, count_pct) = mc.joint_ratio();
        // Paper Fig. 4(a): joint ratio 6/94. Allow a generous band.
        assert!(mass_pct < 18.0, "mass%={mass_pct}");
        assert!(count_pct > 82.0, "count%={count_pct}");
    }

    #[test]
    fn scaled_preserves_per_machine_rate() {
        let full = GoogleWorkload::full_scale();
        let scaled = GoogleWorkload::scaled(125, 30 * DAY);
        let ratio = scaled.jobs_per_hour / full.jobs_per_hour;
        assert!((ratio - 0.01).abs() < 1e-9, "ratio={ratio}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GoogleWorkload::scaled(500, DAY);
        assert_eq!(cfg.generate(5), cfg.generate(5));
    }

    #[test]
    fn priority_weights_sum_sane() {
        // Guard against accidental edits: low cluster keeps the majority.
        let low: f64 = JOB_PRIORITY_WEIGHTS[..4].iter().sum();
        let total: f64 = JOB_PRIORITY_WEIGHTS.iter().sum();
        assert!(low / total > 0.7);
    }
}
