//! Arrival processes.
//!
//! Table I of the paper distills each system's submission behaviour into a
//! per-hour rate profile: Google is fast and stable (552 jobs/h on average,
//! fairness 0.94), grids are slow, diurnal and extremely bursty (SHARCNET
//! peaks at 22 334 jobs/h against an average of 126, fairness 0.04).
//!
//! The generators here work in two stages that mirror that structure:
//! first a *rate profile* fixes the expected number of submissions for
//! every hour of the horizon (diurnal modulation × rare dips × rare burst
//! spikes), then a Poisson draw per hour places individual submissions
//! uniformly inside their hour. Batch bursts additionally collapse a whole
//! group of submissions into a few minutes, which is how grid users submit
//! parameter sweeps.

use crate::dist::Dist;
use cgc_trace::{Timestamp, HOUR};
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Per-hour rate profile configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateProfile {
    /// Mean submissions per hour before modulation.
    pub mean_per_hour: f64,
    /// Diurnal modulation amplitude in `[0, 1]`: the hourly rate swings
    /// between `mean·(1−a)` and `mean·(1+a)` over each day.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–23) at which the rate peaks.
    pub peak_hour: f64,
    /// Multiplicative log-normal jitter (σ of the log) applied per hour.
    pub jitter_sigma: f64,
    /// Probability that an hour is a *dead hour* — grid maintenance
    /// windows and idle nights.
    pub dead_hour_prob: f64,
    /// Rate multiplier applied during a dead hour: 0 silences the hour
    /// completely (grids); a small positive floor models partial outages
    /// (the Google trace's minimum of 36 jobs/hour against a 552 mean).
    pub dead_hour_floor: f64,
    /// Probability that an hour carries a *burst*.
    pub burst_prob: f64,
    /// Burst size distribution (extra submissions landing within the
    /// burst window).
    pub burst_size: Dist,
    /// Width of a burst in seconds (submissions spread uniformly in it).
    pub burst_width: u64,
    /// Optional sustained busy period (the Google trace runs hot around
    /// days 21–25, visible in Fig. 10).
    pub surge: Option<Surge>,
}

/// A sustained rate surge over a fraction of the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// Start, as a fraction of the horizon in `[0, 1]`.
    pub start_frac: f64,
    /// End, as a fraction of the horizon.
    pub end_frac: f64,
    /// Rate multiplier inside the window.
    pub factor: f64,
}

impl RateProfile {
    /// A stable, almost flat profile — the cloud shape.
    pub fn stable(mean_per_hour: f64) -> Self {
        RateProfile {
            mean_per_hour,
            diurnal_amplitude: 0.12,
            peak_hour: 15.0,
            jitter_sigma: 0.18,
            dead_hour_prob: 0.0,
            dead_hour_floor: 0.0,
            burst_prob: 0.0,
            burst_size: Dist::Constant(0.0),
            burst_width: HOUR,
            surge: None,
        }
    }

    /// Expected (pre-jitter) rate at hour-of-trace `h`.
    pub fn base_rate(&self, h: u64) -> f64 {
        let hour_of_day = (h % 24) as f64;
        let phase = (hour_of_day - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        self.mean_per_hour * (1.0 + self.diurnal_amplitude * phase.cos())
    }

    /// Samples the realized rate for hour `h`.
    pub fn sample_rate<R: Rng + ?Sized>(&self, h: u64, rng: &mut R) -> f64 {
        if self.dead_hour_prob > 0.0 && rng.gen_bool(self.dead_hour_prob) {
            return self.base_rate(h) * self.dead_hour_floor;
        }
        let mut rate = self.base_rate(h);
        if self.jitter_sigma > 0.0 {
            rate *= Dist::LogNormal {
                median: 1.0,
                sigma: self.jitter_sigma,
            }
            .sample(rng);
        }
        rate.max(0.0)
    }
}

/// Generates submission timestamps over `[0, horizon)` following a profile.
///
/// Returned timestamps are sorted.
pub fn generate_arrivals<R: Rng + ?Sized>(
    profile: &RateProfile,
    horizon: u64,
    rng: &mut R,
) -> Vec<Timestamp> {
    assert!(horizon > 0, "horizon must be positive");
    let hours = horizon.div_ceil(HOUR);
    let mut times = Vec::new();
    for h in 0..hours {
        let start = h * HOUR;
        let end = (start + HOUR).min(horizon);
        let span = end - start;

        let mut rate = profile.sample_rate(h, rng) * span as f64 / HOUR as f64;
        if let Some(surge) = &profile.surge {
            let frac = start as f64 / horizon as f64;
            if frac >= surge.start_frac && frac < surge.end_frac {
                rate *= surge.factor;
            }
        }
        let n = sample_poisson(rate, rng);
        for _ in 0..n {
            times.push(start + rng.gen_range(0..span));
        }

        if profile.burst_prob > 0.0 && rng.gen_bool(profile.burst_prob) {
            let extra = profile.burst_size.sample(rng).round().max(0.0) as u64;
            let burst_start = start + rng.gen_range(0..span);
            let width = profile.burst_width.max(1);
            for _ in 0..extra {
                let t = burst_start + rng.gen_range(0..width);
                if t < horizon {
                    times.push(t);
                }
            }
        }
    }
    times.sort_unstable();
    times
}

fn sample_poisson<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    let poisson = Poisson::new(rate).expect("rate checked positive and finite");
    poisson.sample(rng) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::DAY;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn stable_profile_hits_mean_rate() {
        let p = RateProfile::stable(500.0);
        let mut r = rng();
        let times = generate_arrivals(&p, 10 * DAY, &mut r);
        let per_hour = times.len() as f64 / (10.0 * 24.0);
        assert!((per_hour - 500.0).abs() < 30.0, "per_hour={per_hour}");
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let p = RateProfile::stable(100.0);
        let mut r = rng();
        let times = generate_arrivals(&p, DAY, &mut r);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < DAY));
    }

    #[test]
    fn diurnal_amplitude_shifts_rates() {
        let p = RateProfile {
            diurnal_amplitude: 0.9,
            peak_hour: 12.0,
            ..RateProfile::stable(100.0)
        };
        // Rate at the peak hour must far exceed the trough.
        assert!(p.base_rate(12) > 5.0 * p.base_rate(0));
    }

    #[test]
    fn dead_hours_produce_empty_hours() {
        let p = RateProfile {
            dead_hour_prob: 0.5,
            jitter_sigma: 0.0,
            ..RateProfile::stable(50.0)
        };
        let mut r = rng();
        let times = generate_arrivals(&p, 30 * DAY, &mut r);
        let counts = cgc_stats::counts_per_window(&times, HOUR, 30 * DAY);
        let dead = counts.iter().filter(|&&c| c == 0).count() as f64 / counts.len() as f64;
        assert!((dead - 0.5).abs() < 0.1, "dead fraction={dead}");
    }

    #[test]
    fn bursts_raise_the_max() {
        let base = RateProfile {
            jitter_sigma: 0.0,
            ..RateProfile::stable(20.0)
        };
        let bursty = RateProfile {
            burst_prob: 0.02,
            burst_size: Dist::Constant(2_000.0),
            burst_width: 600,
            ..base.clone()
        };
        let mut r = rng();
        let calm = generate_arrivals(&base, 10 * DAY, &mut r);
        let wild = generate_arrivals(&bursty, 10 * DAY, &mut r);
        let max_calm = cgc_stats::counts_per_window(&calm, HOUR, 10 * DAY)
            .into_iter()
            .max()
            .unwrap();
        let max_wild = cgc_stats::counts_per_window(&wild, HOUR, 10 * DAY)
            .into_iter()
            .max()
            .unwrap();
        assert!(max_wild > 10 * max_calm, "calm={max_calm} wild={max_wild}");
    }

    #[test]
    fn stable_profile_has_high_fairness() {
        let p = RateProfile::stable(500.0);
        let mut r = rng();
        let times = generate_arrivals(&p, 30 * DAY, &mut r);
        let counts = cgc_stats::counts_per_window(&times, HOUR, 30 * DAY);
        let f = cgc_stats::fairness::jain_fairness_counts(&counts);
        assert!(f > 0.9, "fairness={f}");
    }

    #[test]
    fn bursty_diurnal_profile_has_low_fairness() {
        let p = RateProfile {
            diurnal_amplitude: 0.8,
            dead_hour_prob: 0.4,
            jitter_sigma: 1.0,
            burst_prob: 0.01,
            burst_size: Dist::BoundedPareto {
                alpha: 0.8,
                lo: 200.0,
                hi: 20_000.0,
            },
            burst_width: 1_200,
            ..RateProfile::stable(50.0)
        };
        let mut r = rng();
        let times = generate_arrivals(&p, 30 * DAY, &mut r);
        let counts = cgc_stats::counts_per_window(&times, HOUR, 30 * DAY);
        let f = cgc_stats::fairness::jain_fairness_counts(&counts);
        assert!(f < 0.4, "fairness={f}");
    }

    #[test]
    fn determinism() {
        let p = RateProfile::stable(100.0);
        let a = generate_arrivals(&p, DAY, &mut StdRng::seed_from_u64(9));
        let b = generate_arrivals(&p, DAY, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = generate_arrivals(&RateProfile::stable(1.0), 0, &mut rng());
    }

    #[test]
    fn partial_final_hour_scales_rate() {
        let p = RateProfile {
            jitter_sigma: 0.0,
            ..RateProfile::stable(3600.0)
        };
        let mut r = rng();
        // Horizon of 90 s: expect ~90 arrivals, not ~3600.
        let times = generate_arrivals(&p, 90, &mut r);
        assert!(times.len() < 300, "n={}", times.len());
        assert!(times.iter().all(|&t| t < 90));
    }
}
