//! Synthetic workload generators calibrated to the traces the paper uses.
//!
//! The paper's data — the 2011 Google cluster trace and seven Grid/HPC
//! traces from the Grid Workload Archive and the Parallel Workload Archive —
//! is proprietary/external. This crate substitutes *calibrated generators*:
//! each preset reproduces the published marginals (arrival rates and their
//! fairness, job/task length distributions, priority histogram, parallelism,
//! per-job resource demands), so that every statistic the characterization
//! pipeline computes downstream is measured, not asserted.
//!
//! * [`cloud`] — the Google data-center workload (Table I "Google" column,
//!   Fig. 2 priority histogram, the task-length quantiles of §VI, ...).
//! * [`grid`] — presets for AuverGrid, NorduGrid, SHARCNET, ANL, RICC,
//!   MetaCentrum, LLNL Atlas and DAS-2.
//! * [`arrival`] — arrival processes: rate-profile-driven Poisson with
//!   diurnal modulation, dips and batch bursts.
//! * [`dist`] — size distributions (log-uniform, log-normal, bounded
//!   Pareto, mixtures) used for lengths and demands.
//! * [`machines`] — heterogeneous fleet generation with the trace's
//!   discrete capacity classes.
//! * [`workload`] — the generator output consumed by the simulator, plus a
//!   direct conversion to a workload-only [`cgc_trace::Trace`].
//!
//! Everything is deterministic given a seed.

pub mod arrival;
pub mod cloud;
pub mod dist;
pub mod grid;
pub mod machines;
pub mod workload;

pub use cloud::GoogleWorkload;
pub use dist::{Dist, Mixture};
pub use grid::{GridSystem, GridWorkload};
pub use machines::FleetConfig;
pub use workload::{JobSpec, TaskSpec, Workload};

/// Derives an independent RNG stream seed from a master seed.
///
/// Used by the sharded simulator to give each shard its own deterministic
/// random stream: `split_seed(master, s)` for shard `s`. The mixer is
/// splitmix64 (Steele et al., the same finalizer `StdRng::seed_from_u64`
/// builds on), so streams are decorrelated even for adjacent indices, and
/// the mapping is a pure function — independent of thread count, platform
/// and execution order.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of physical cores on the largest ("capacity 1.0") machine.
///
/// The Google trace normalizes CPU by the largest machine; to express the
/// paper's Fig. 6 ("CPU utilization over all processors", i.e. in
/// *processor* units) we need one conversion constant. Machines of that era
/// topped out around 8–16 cores; 8 keeps Google per-task demands (a few
/// percent of a machine) at sub-core scale, as the paper observes.
pub const MAX_MACHINE_CORES: f64 = 8.0;
