//! Grid/HPC workload presets.
//!
//! One preset per comparison system of the paper. Each is calibrated
//! against the published Table I row (max/avg/min jobs per hour and Jain
//! fairness), the Fig. 3 job-length positions ("most Grid jobs are longer
//! than 2000 seconds"), the AuverGrid task-length statistics of Fig. 4
//! (mean 7.2 h, max 18 days, joint ratio 24/76), and the Fig. 6
//! parallelism/memory contrasts.
//!
//! Grid jobs are modeled as a single task of parallel width `w` processors
//! (GWA/PWA traces record jobs, not intra-job tasks): the task's CPU demand
//! is `w` processors' worth, fully utilized — grid applications are
//! compute-bound, which is why grid CPU usage exceeds memory usage in
//! Fig. 13 while Google shows the opposite.

use crate::arrival::{generate_arrivals, RateProfile};
use crate::dist::{weighted_index, Dist, Mixture};
use crate::workload::{processors_to_demand, JobSpec, TaskSpec, UserSampler, Workload};
use cgc_trace::{Demand, Duration, Priority, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Reference memory capacity used to normalize grid job memory (64 GB).
pub const GRID_MEMORY_NORMALIZATION_MB: f64 = 64.0 * 1024.0;

/// The grid/HPC systems the paper compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridSystem {
    /// AuverGrid — EGEE regional grid, mostly serial biomedical jobs.
    AuverGrid,
    /// NorduGrid — ARC-based volunteer grid across Nordic sites.
    NorduGrid,
    /// SHARCNET — Canadian HPC consortium, extremely bursty submissions.
    Sharcnet,
    /// Argonne National Laboratory Intrepid cluster.
    Anl,
    /// RIKEN Integrated Cluster of Clusters.
    Ricc,
    /// MetaCentrum — Czech national grid.
    MetaCentrum,
    /// LLNL Atlas capability cluster.
    LlnlAtlas,
    /// DAS-2 — Dutch research grid (used in the Fig. 6 comparison).
    Das2,
}

impl GridSystem {
    /// All systems in the paper's Table I order, plus DAS-2.
    pub const ALL: [GridSystem; 8] = [
        GridSystem::AuverGrid,
        GridSystem::NorduGrid,
        GridSystem::Sharcnet,
        GridSystem::Anl,
        GridSystem::Ricc,
        GridSystem::MetaCentrum,
        GridSystem::LlnlAtlas,
        GridSystem::Das2,
    ];

    /// The seven systems appearing in Table I.
    pub const TABLE1: [GridSystem; 7] = [
        GridSystem::AuverGrid,
        GridSystem::NorduGrid,
        GridSystem::Sharcnet,
        GridSystem::Anl,
        GridSystem::Ricc,
        GridSystem::MetaCentrum,
        GridSystem::LlnlAtlas,
    ];

    /// Lower-case label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            GridSystem::AuverGrid => "auvergrid",
            GridSystem::NorduGrid => "nordugrid",
            GridSystem::Sharcnet => "sharcnet",
            GridSystem::Anl => "anl",
            GridSystem::Ricc => "ricc",
            GridSystem::MetaCentrum => "metacentrum",
            GridSystem::LlnlAtlas => "llnl-atlas",
            GridSystem::Das2 => "das-2",
        }
    }

    /// The paper's Table I row `(max, avg, min, fairness)` for this
    /// system, if it appears there.
    pub fn paper_table1_row(self) -> Option<(f64, f64, f64, f64)> {
        Some(match self {
            GridSystem::AuverGrid => (818.0, 45.0, 0.0, 0.35),
            GridSystem::NorduGrid => (2_175.0, 27.0, 0.0, 0.11),
            GridSystem::Sharcnet => (22_334.0, 126.0, 0.0, 0.04),
            GridSystem::Anl => (132.0, 10.0, 0.0, 0.51),
            GridSystem::Ricc => (4_919.0, 121.0, 0.0, 0.14),
            GridSystem::MetaCentrum => (2_315.0, 24.0, 0.0, 0.04),
            GridSystem::LlnlAtlas => (240.0, 8.4, 0.0, 0.23),
            GridSystem::Das2 => return None,
        })
    }

    /// Arrival profile calibrated to the Table I row: strong diurnal
    /// swings, idle (dead) hours, and batch bursts whose tail sets the
    /// observed hourly maximum.
    pub fn rate_profile(self) -> RateProfile {
        // (mean base rate, dead-hour prob, jitter, burst prob, lo, hi)
        let (base, dead, jitter, burst_prob, burst_lo, burst_hi) = match self {
            GridSystem::AuverGrid => (42.0, 0.20, 0.8, 0.006, 80.0, 700.0),
            GridSystem::NorduGrid => (20.0, 0.45, 1.1, 0.015, 80.0, 2_000.0),
            GridSystem::Sharcnet => (60.0, 0.35, 1.0, 0.030, 300.0, 21_000.0),
            GridSystem::Anl => (10.0, 0.10, 0.5, 0.004, 30.0, 110.0),
            GridSystem::Ricc => (80.0, 0.30, 1.0, 0.020, 200.0, 4_500.0),
            GridSystem::MetaCentrum => (16.0, 0.50, 1.2, 0.025, 100.0, 2_200.0),
            GridSystem::LlnlAtlas => (7.0, 0.45, 0.9, 0.012, 30.0, 210.0),
            GridSystem::Das2 => (35.0, 0.30, 0.9, 0.010, 50.0, 600.0),
        };
        RateProfile {
            mean_per_hour: base,
            diurnal_amplitude: 0.8,
            peak_hour: 14.0,
            jitter_sigma: jitter,
            dead_hour_prob: dead,
            dead_hour_floor: 0.0,
            burst_prob,
            burst_size: Dist::BoundedPareto {
                alpha: 0.5,
                lo: burst_lo,
                hi: burst_hi,
            },
            burst_width: 20 * MINUTE,
            surge: None,
        }
    }

    /// Job runtime distribution (scientific batch work, hours-scale).
    pub fn length_mixture(self) -> Mixture {
        match self {
            // AuverGrid: mean ≈ 7.2 h, max 18 days, modest disparity
            // (joint ratio 24/76).
            GridSystem::AuverGrid => Mixture::new(vec![
                (
                    0.13,
                    Dist::LogUniform {
                        lo: 2.0 * MINUTE as f64,
                        hi: 2_000.0,
                    },
                ),
                (
                    0.84,
                    Dist::LogNormal {
                        median: 2.8 * HOUR as f64,
                        sigma: 1.1,
                    },
                ),
                (
                    0.03,
                    Dist::LogUniform {
                        lo: DAY as f64,
                        hi: 12.0 * DAY as f64,
                    },
                ),
            ]),
            // NorduGrid: long ATLAS-style production jobs.
            GridSystem::NorduGrid => Mixture::new(vec![
                (
                    0.10,
                    Dist::LogUniform {
                        lo: 10.0 * MINUTE as f64,
                        hi: 2.0 * HOUR as f64,
                    },
                ),
                (
                    0.90,
                    Dist::LogNormal {
                        median: 6.0 * HOUR as f64,
                        sigma: 1.1,
                    },
                ),
            ]),
            GridSystem::Sharcnet => Mixture::new(vec![
                (
                    0.20,
                    Dist::LogUniform {
                        lo: 5.0 * MINUTE as f64,
                        hi: HOUR as f64,
                    },
                ),
                (
                    0.80,
                    Dist::LogNormal {
                        median: 4.0 * HOUR as f64,
                        sigma: 1.3,
                    },
                ),
            ]),
            GridSystem::Anl => Mixture::new(vec![
                (
                    0.25,
                    Dist::LogUniform {
                        lo: 10.0 * MINUTE as f64,
                        hi: HOUR as f64,
                    },
                ),
                (
                    0.75,
                    Dist::LogNormal {
                        median: 1.8 * HOUR as f64,
                        sigma: 0.9,
                    },
                ),
            ]),
            GridSystem::Ricc => Mixture::new(vec![
                (
                    0.30,
                    Dist::LogUniform {
                        lo: 5.0 * MINUTE as f64,
                        hi: HOUR as f64,
                    },
                ),
                (
                    0.70,
                    Dist::LogNormal {
                        median: 2.5 * HOUR as f64,
                        sigma: 1.1,
                    },
                ),
            ]),
            GridSystem::MetaCentrum => Mixture::new(vec![
                (
                    0.20,
                    Dist::LogUniform {
                        lo: 5.0 * MINUTE as f64,
                        hi: HOUR as f64,
                    },
                ),
                (
                    0.80,
                    Dist::LogNormal {
                        median: 3.0 * HOUR as f64,
                        sigma: 1.2,
                    },
                ),
            ]),
            GridSystem::LlnlAtlas => Mixture::new(vec![
                (
                    0.15,
                    Dist::LogUniform {
                        lo: 10.0 * MINUTE as f64,
                        hi: HOUR as f64,
                    },
                ),
                (
                    0.85,
                    Dist::LogNormal {
                        median: 2.2 * HOUR as f64,
                        sigma: 1.0,
                    },
                ),
            ]),
            GridSystem::Das2 => Mixture::new(vec![
                (
                    0.35,
                    Dist::LogUniform {
                        lo: MINUTE as f64,
                        hi: 30.0 * MINUTE as f64,
                    },
                ),
                (
                    0.65,
                    Dist::LogNormal {
                        median: 1.5 * HOUR as f64,
                        sigma: 1.0,
                    },
                ),
            ]),
        }
    }

    /// Maximum runtime cap (AuverGrid's observed max is 18 days).
    pub fn max_runtime(self) -> Duration {
        match self {
            GridSystem::AuverGrid => 18 * DAY,
            GridSystem::NorduGrid | GridSystem::Sharcnet => 21 * DAY,
            _ => 7 * DAY,
        }
    }

    /// `(processors, weight)` parallel-width distribution.
    pub fn width_weights(self) -> &'static [(f64, f64)] {
        match self {
            GridSystem::AuverGrid => &[(1.0, 0.75), (2.0, 0.18), (4.0, 0.07)],
            GridSystem::NorduGrid => &[(1.0, 0.70), (2.0, 0.20), (4.0, 0.10)],
            GridSystem::Sharcnet => &[(1.0, 0.50), (2.0, 0.25), (4.0, 0.15), (8.0, 0.10)],
            GridSystem::Anl => &[
                (4.0, 0.3),
                (8.0, 0.3),
                (16.0, 0.2),
                (32.0, 0.15),
                (64.0, 0.05),
            ],
            GridSystem::Ricc => &[
                (1.0, 0.4),
                (2.0, 0.2),
                (4.0, 0.2),
                (8.0, 0.15),
                (16.0, 0.05),
            ],
            GridSystem::MetaCentrum => &[(1.0, 0.55), (2.0, 0.25), (4.0, 0.15), (8.0, 0.05)],
            GridSystem::LlnlAtlas => &[(8.0, 0.3), (16.0, 0.3), (32.0, 0.25), (64.0, 0.15)],
            GridSystem::Das2 => &[
                (1.0, 0.25),
                (2.0, 0.25),
                (4.0, 0.30),
                (8.0, 0.15),
                (16.0, 0.05),
            ],
        }
    }

    /// Per-job memory footprint in MB (scientific codes hold hundreds of
    /// MB to GBs — larger than Google's interactive jobs, Fig. 6b).
    pub fn memory_mb_dist(self) -> Dist {
        match self {
            GridSystem::Anl | GridSystem::LlnlAtlas => Dist::LogNormal {
                median: 1_400.0,
                sigma: 0.8,
            },
            _ => Dist::LogNormal {
                median: 750.0,
                sigma: 0.9,
            },
        }
    }
}

/// Generator wrapper for one grid system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridWorkload {
    /// Which preset to generate.
    pub system: GridSystem,
    /// Observation horizon in seconds.
    pub horizon: Duration,
    /// Rate multiplier for scaled-down experiments (1.0 = Table I rates).
    pub rate_scale: f64,
    /// Number of distinct users.
    pub num_users: u32,
    /// Flatten the diurnal/burst profile to a steady stream.
    ///
    /// Host-load simulations enable this: what matters there is a steady
    /// standing backlog that keeps nodes pegged (as the real clusters
    /// were); the bursty Table I arrival shape is only needed for the
    /// workload-side experiments.
    pub flatten_profile: bool,
}

impl GridWorkload {
    /// Full-rate workload over a month, matching the Table I row.
    pub fn full_scale(system: GridSystem) -> Self {
        GridWorkload {
            system,
            horizon: 30 * DAY,
            rate_scale: 1.0,
            num_users: 120,
            flatten_profile: false,
        }
    }

    /// Scaled workload for small-fleet host-load simulations.
    pub fn scaled(system: GridSystem, horizon: Duration, rate_scale: f64) -> Self {
        GridWorkload {
            system,
            horizon,
            rate_scale,
            num_users: 32,
            flatten_profile: true,
        }
    }

    /// Generates the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        let _span = cgc_obs::span(cgc_obs::stages::GENERATE);
        let mut rng = StdRng::seed_from_u64(seed ^ (self.system as u64) << 32);
        let mut profile = self.system.rate_profile();
        profile.mean_per_hour *= self.rate_scale;
        if self.flatten_profile {
            profile.diurnal_amplitude = 0.15;
            profile.dead_hour_prob = 0.0;
            profile.jitter_sigma = 0.2;
            profile.burst_prob = 0.0;
        }
        if self.rate_scale < 1.0 {
            // Scale burst sizes too, keeping burstiness per machine.
            if let Dist::BoundedPareto { alpha, lo, hi } = profile.burst_size {
                profile.burst_size = Dist::BoundedPareto {
                    alpha,
                    lo: (lo * self.rate_scale).max(1.0),
                    hi: (hi * self.rate_scale).max(2.0),
                };
            }
        }
        let arrivals = generate_arrivals(&profile, self.horizon, &mut rng);

        let lengths = self.system.length_mixture();
        let widths = self.system.width_weights();
        let width_w: Vec<f64> = widths.iter().map(|&(_, w)| w).collect();
        let mem_dist = self.system.memory_mb_dist();
        let max_runtime = self.system.max_runtime() as f64;
        let users = UserSampler::zipf(self.num_users, 1.0);

        let jobs: Vec<JobSpec> = arrivals
            .into_iter()
            .map(|submit| {
                let runtime = lengths.sample(&mut rng).clamp(30.0, max_runtime);
                let width = widths[weighted_index(&width_w, &mut rng)].0;
                // Grid jobs are compute-bound: processors stay ~fully busy.
                let utilization = rng.gen_range(0.93..0.99);
                let mem_mb = mem_dist.sample_clamped(&mut rng, 32.0, 32_768.0);
                let task = TaskSpec {
                    demand: Demand::new(
                        processors_to_demand(width),
                        (mem_mb / GRID_MEMORY_NORMALIZATION_MB).min(0.5),
                    ),
                    runtime: runtime.round() as Duration,
                    cpu_processors: width * utilization,
                    utilization,
                };
                JobSpec {
                    submit,
                    user: users.sample(&mut rng),
                    // Grid schedulers in these traces are essentially
                    // single-priority batch queues.
                    priority: Priority::from_level(4),
                    tasks: vec![task],
                }
            })
            .collect();

        if cgc_obs::enabled() {
            let tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();
            cgc_obs::metrics().record_generated(jobs.len() as u64, tasks as u64);
        }
        Workload {
            system: self.system.label().into(),
            horizon: self.horizon,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_stats::{counts_per_window, jain_fairness_counts, Ecdf, Summary};

    fn gen(system: GridSystem, days: u64) -> Workload {
        GridWorkload::full_scale(system)
            .generate(11)
            .clipped(days * DAY)
    }

    impl Workload {
        /// Test helper: truncate to a shorter horizon.
        fn clipped(mut self, horizon: Duration) -> Workload {
            self.jobs.retain(|j| j.submit < horizon);
            self.horizon = horizon;
            self
        }
    }

    #[test]
    fn auvergrid_lengths_match_paper_stats() {
        let w = GridWorkload::full_scale(GridSystem::AuverGrid).generate(5);
        let lengths: Vec<f64> = w.jobs.iter().map(|j| j.tasks[0].runtime as f64).collect();
        let s = Summary::of(&lengths);
        // Paper: mean 7.2 h, max 18 days. Accept a band around the mean.
        let mean_hours = s.mean / HOUR as f64;
        assert!((mean_hours - 7.2).abs() < 2.5, "mean={mean_hours}h");
        assert!(s.max <= 18.0 * DAY as f64 + 1.0);
        // Most jobs are longer than 2000 s (Fig. 3).
        let e = Ecdf::new(lengths);
        assert!(e.eval(2_000.0) < 0.35, "F(2000s)={}", e.eval(2_000.0));
    }

    #[test]
    fn auvergrid_masscount_is_mild() {
        let w = GridWorkload::full_scale(GridSystem::AuverGrid).generate(5);
        let lengths: Vec<f64> = w.jobs.iter().map(|j| j.tasks[0].runtime as f64).collect();
        let mc = cgc_stats::MassCount::new(lengths).unwrap();
        let (mass_pct, _) = mc.joint_ratio();
        // Paper Fig. 4(b): joint ratio 24/76 — far milder than Google's 6/94.
        assert!(mass_pct > 12.0, "mass%={mass_pct}");
    }

    #[test]
    fn fairness_ordering_matches_table1() {
        // ANL is the most stable grid; SHARCNET/MetaCentrum the least.
        let f = |sys: GridSystem| {
            let w = GridWorkload::full_scale(sys).generate(3);
            let times: Vec<u64> = w.jobs.iter().map(|j| j.submit).collect();
            jain_fairness_counts(&counts_per_window(&times, HOUR, w.horizon))
        };
        let anl = f(GridSystem::Anl);
        let sharcnet = f(GridSystem::Sharcnet);
        let auvergrid = f(GridSystem::AuverGrid);
        assert!(anl > auvergrid, "anl={anl} auvergrid={auvergrid}");
        assert!(
            auvergrid > sharcnet,
            "auvergrid={auvergrid} sharcnet={sharcnet}"
        );
        assert!(sharcnet < 0.15, "sharcnet={sharcnet}");
        assert!(anl > 0.3, "anl={anl}");
    }

    #[test]
    fn average_rates_are_low() {
        for sys in GridSystem::TABLE1 {
            let w = GridWorkload::full_scale(sys).generate(3);
            let avg = w.jobs.len() as f64 / (w.horizon as f64 / HOUR as f64);
            let (_, paper_avg, _, _) = sys.paper_table1_row().unwrap();
            assert!(
                avg < 3.0 * paper_avg + 20.0 && avg > paper_avg / 4.0,
                "{}: avg={avg} paper={paper_avg}",
                sys.label()
            );
        }
    }

    #[test]
    fn sharcnet_bursts_dwarf_the_mean() {
        let w = GridWorkload::full_scale(GridSystem::Sharcnet).generate(3);
        let times: Vec<u64> = w.jobs.iter().map(|j| j.submit).collect();
        let counts = counts_per_window(&times, HOUR, w.horizon);
        let max = *counts.iter().max().unwrap() as f64;
        let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        assert!(max > 30.0 * avg, "max={max} avg={avg}");
    }

    #[test]
    fn grid_jobs_are_parallel() {
        let w = gen(GridSystem::Das2, 10);
        let wide = w
            .jobs
            .iter()
            .filter(|j| j.tasks[0].cpu_processors > 1.5)
            .count() as f64
            / w.jobs.len() as f64;
        assert!(wide > 0.5, "wide fraction={wide}");
    }

    #[test]
    fn single_task_per_job() {
        let w = gen(GridSystem::NorduGrid, 10);
        assert!(w.jobs.iter().all(|j| j.tasks.len() == 1));
    }

    #[test]
    fn memory_footprints_exceed_cloud_jobs() {
        let w = gen(GridSystem::AuverGrid, 10);
        let mean_mem: f64 =
            w.jobs.iter().map(|j| j.tasks[0].demand.memory).sum::<f64>() / w.jobs.len() as f64;
        // ~420 MB median normalized by 64 GB ≈ 0.006; Google's mean
        // *consumed* memory per job is around 0.004.
        assert!(mean_mem > 0.005, "mean_mem={mean_mem}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GridWorkload::full_scale(GridSystem::Ricc);
        assert_eq!(cfg.generate(2), cfg.generate(2));
    }

    #[test]
    fn distinct_systems_get_distinct_streams() {
        let a = GridWorkload::full_scale(GridSystem::AuverGrid).generate(2);
        let b = GridWorkload::full_scale(GridSystem::NorduGrid).generate(2);
        assert_ne!(a.jobs.len(), b.jobs.len());
    }

    #[test]
    fn labels_and_table_rows() {
        assert_eq!(GridSystem::ALL.len(), 8);
        for sys in GridSystem::TABLE1 {
            assert!(sys.paper_table1_row().is_some());
        }
        assert!(GridSystem::Das2.paper_table1_row().is_none());
        assert_eq!(GridSystem::LlnlAtlas.label(), "llnl-atlas");
    }
}
