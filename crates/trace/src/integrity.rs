//! Durability primitives: CRC-32 checksums and atomic file replacement.
//!
//! Every artifact the pipeline persists — traces, telemetry bundles,
//! experiment JSON, simulator checkpoints — goes through [`write_atomic`]
//! so that a crash mid-write can never leave a torn file at the target
//! path: the bytes land in a temporary file in the same directory, are
//! fsynced, and only then renamed over the target (itself an atomic
//! operation on POSIX filesystems). [`Crc32`] is the checksum behind the
//! trace `#integrity` trailer and the checkpoint header; it is the
//! standard IEEE polynomial (the one `cksum`, zip and PNG use), hand
//! rolled because the workspace carries no checksum crate.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The IEEE CRC-32 lookup tables (polynomial 0xEDB88320, reflected),
/// extended for slicing-by-8: `TABLES[0]` is the classic bytewise table;
/// `TABLES[k][b]` is the contribution of byte `b` positioned `k` bytes
/// before the end of an 8-byte block, so eight table lookups advance the
/// state a full 8 bytes at once.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Streaming IEEE CRC-32 (the `cksum`/zip/PNG polynomial).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum over zero bytes.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum, slicing-by-8: each 8-byte block
    /// costs eight independent table lookups instead of eight serially
    /// dependent shift-xor steps. Same polynomial, same result as the
    /// bytewise loop (the known-vector tests pin it) — only faster.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ self.state;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            self.state = CRC32_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC32_TABLES[4][(lo >> 24) as usize]
                ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC32_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = (self.state ^ b as u32) & 0xFF;
            self.state = (self.state >> 8) ^ CRC32_TABLES[0][idx as usize];
        }
    }

    /// The checksum of everything folded in so far. Does not consume the
    /// state; more bytes may follow.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// Distinguishes concurrent atomic writes to the same target from the
/// same process (the pid alone distinguishes processes).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: all-or-nothing, never a torn or
/// half-written file at the target, even across a crash or an injected
/// write fault.
///
/// The bytes go to a uniquely named temporary file in the target's
/// directory (same filesystem, so the final rename cannot degrade to a
/// copy), the file is fsynced, renamed over the target, and on Unix the
/// directory is fsynced too so the rename itself survives power loss. On
/// any error the temporary file is removed and the previous target — if
/// one existed — is left untouched.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

/// [`write_atomic`] with caller-supplied serialization: `fill` receives
/// the temporary file's writer. Exists so tests can interpose fault
/// injection between the serializer and the file; any `Err` from `fill`
/// aborts the whole operation with the target untouched.
pub fn write_atomic_with(
    path: impl AsRef<Path>,
    fill: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let path = path.as_ref();
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        fill(&mut file)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        fs::File::open(&dir)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_sliced_matches_bytewise_at_every_length() {
        // Exercise every chunk/remainder split the slicing loop can see,
        // against the plain one-byte-at-a-time recurrence.
        let data: Vec<u8> = (0..64u32).map(|i| (i * 131 % 251) as u8).collect();
        for len in 0..data.len() {
            let mut bytewise = !0u32;
            for &b in &data[..len] {
                let idx = (bytewise ^ b as u32) & 0xFF;
                bytewise = (bytewise >> 8) ^ CRC32_TABLES[0][idx as usize];
            }
            assert_eq!(crc32(&data[..len]), !bytewise, "len={len}");
        }
    }

    #[test]
    fn crc32_streaming_equals_one_shot() {
        let data = b"hello, checksummed world";
        let mut c = Crc32::new();
        for chunk in data.chunks(3) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn write_atomic_round_trips() {
        let dir = std::env::temp_dir().join(format!("cgc-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_target_and_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("cgc-atomic-fail-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.txt");
        write_atomic(&path, b"intact").unwrap();
        let err = write_atomic_with(&path, |w| {
            w.write_all(b"partial garbage ")?;
            Err(io::Error::other("injected write fault"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("injected"));
        // The old contents survive and no temporary litter remains.
        assert_eq!(fs::read(&path).unwrap(), b"intact");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
