//! The [`Trace`] container and its validating builder.
//!
//! A `Trace` is the single interchange type of the workspace: generators and
//! the simulator produce one, the characterization pipeline consumes one.
//! [`TraceBuilder::build`] replays every task's event sequence through the
//! life-cycle state machine of [`crate::task::TaskState`], so an invalid
//! event stream (e.g. a task finishing before being scheduled) is rejected
//! at construction time rather than corrupting analyses downstream.

use crate::ids::{JobId, MachineId, TaskId, UserId};
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::priority::Priority;
use crate::resources::Demand;
use crate::task::{
    IllegalTransition, TaskEvent, TaskEventKind, TaskOutcome, TaskRecord, TaskState,
};
use crate::time::{Duration, Timestamp};
use crate::usage::HostSeries;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete trace: machines, jobs, tasks, the event log, and per-host
/// usage series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable label ("google", "auvergrid", ...).
    pub system: String,
    /// Length of the observation window, in seconds.
    pub horizon: Duration,
    /// All machines. Empty for workload-only traces.
    pub machines: Vec<MachineRecord>,
    /// All jobs, indexed by [`JobId`].
    pub jobs: Vec<JobRecord>,
    /// All tasks, indexed by [`TaskId`].
    pub tasks: Vec<TaskRecord>,
    /// Event log sorted by (time, task).
    pub events: Vec<TaskEvent>,
    /// Usage series, one per machine that reported samples.
    pub host_series: Vec<HostSeries>,
}

impl Trace {
    /// Job submission times, ascending.
    ///
    /// Superseded by `cgc_core::TraceView::submission_times`, which
    /// computes the sorted vector once per trace instead of allocating
    /// and re-sorting per call; hidden so new code reaches for the view.
    #[doc(hidden)]
    pub fn submission_times(&self) -> Vec<Timestamp> {
        let mut times: Vec<Timestamp> = self.jobs.iter().map(|j| j.submit_time).collect();
        times.sort_unstable();
        times
    }

    /// Lengths of all finished jobs, in seconds.
    pub fn job_lengths(&self) -> Vec<u64> {
        self.jobs.iter().filter_map(JobRecord::length).collect()
    }

    /// Execution times of all tasks that ever ran, in seconds.
    ///
    /// Superseded by `cgc_core::TraceView::task_execution_times` (one
    /// shared allocation per trace); hidden so new code reaches for the
    /// view.
    #[doc(hidden)]
    pub fn task_execution_times(&self) -> Vec<u64> {
        self.tasks
            .iter()
            .filter(|t| t.ever_ran())
            .map(|t| t.execution_time)
            .collect()
    }

    /// Events concerning one machine, in time order.
    pub fn events_on_machine(&self, machine: MachineId) -> Vec<&TaskEvent> {
        self.events
            .iter()
            .filter(|e| e.machine == Some(machine))
            .collect()
    }

    /// The usage series of one machine, if it reported samples.
    pub fn series_for(&self, machine: MachineId) -> Option<&HostSeries> {
        self.host_series.iter().find(|s| s.machine == machine)
    }

    /// Count of completion events by kind, over the whole trace.
    ///
    /// Backs the paper's statistic that 59.2% of completion events are
    /// abnormal, with failures at 50% and kills at 30.7% of the abnormal
    /// ones.
    pub fn completion_counts(&self) -> CompletionCounts {
        let mut counts = CompletionCounts::default();
        for e in &self.events {
            match e.kind {
                TaskEventKind::Finish => counts.finish += 1,
                TaskEventKind::Evict => counts.evict += 1,
                TaskEventKind::Fail => counts.fail += 1,
                TaskEventKind::Kill => counts.kill += 1,
                TaskEventKind::Lost => counts.lost += 1,
                _ => {}
            }
        }
        counts
    }
}

/// Completion-event tallies (paper Section IV.B.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionCounts {
    /// Normal completions.
    pub finish: u64,
    /// Preempted by higher priority.
    pub evict: u64,
    /// Task failures.
    pub fail: u64,
    /// User kills.
    pub kill: u64,
    /// Missing-data losses.
    pub lost: u64,
}

impl CompletionCounts {
    /// Total completion events.
    pub fn total(&self) -> u64 {
        self.finish + self.evict + self.fail + self.kill + self.lost
    }

    /// Total abnormal completion events.
    pub fn abnormal(&self) -> u64 {
        self.total() - self.finish
    }

    /// Fraction of completions that are abnormal; 0 if no completions.
    pub fn abnormal_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.abnormal() as f64 / total as f64
        }
    }

    /// Fraction of *abnormal* completions that are failures.
    pub fn fail_share_of_abnormal(&self) -> f64 {
        let ab = self.abnormal();
        if ab == 0 {
            0.0
        } else {
            self.fail as f64 / ab as f64
        }
    }

    /// Fraction of *abnormal* completions that are kills.
    pub fn kill_share_of_abnormal(&self) -> f64 {
        let ab = self.abnormal();
        if ab == 0 {
            0.0
        } else {
            self.kill as f64 / ab as f64
        }
    }
}

/// Errors detected while building a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An event references a task id that was never declared.
    UnknownTask(TaskId),
    /// An event sequence violates the task life-cycle state machine.
    InvalidTransition {
        /// The offending task.
        task: TaskId,
        /// When the illegal event occurred.
        time: Timestamp,
        /// The underlying state-machine error.
        source: IllegalTransition,
    },
    /// A `Schedule` or completion event is missing its machine id.
    MissingMachine(TaskId, Timestamp),
    /// A usage series references an unknown machine.
    UnknownMachine(MachineId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownTask(t) => write!(f, "event references unknown task {t}"),
            BuildError::InvalidTransition { task, time, source } => {
                write!(f, "task {task} at t={time}: {source}")
            }
            BuildError::MissingMachine(t, time) => {
                write!(
                    f,
                    "task {t} at t={time}: schedule/completion event without machine"
                )
            }
            BuildError::UnknownMachine(m) => write!(f, "series references unknown machine {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally assembles and validates a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    system: String,
    horizon: Duration,
    machines: Vec<MachineRecord>,
    jobs: Vec<JobRecord>,
    tasks: Vec<TaskRecord>,
    events: Vec<TaskEvent>,
    host_series: Vec<HostSeries>,
}

impl TraceBuilder {
    /// Starts a trace for `system` covering `horizon` seconds.
    pub fn new(system: impl Into<String>, horizon: Duration) -> Self {
        TraceBuilder {
            system: system.into(),
            horizon,
            machines: Vec::new(),
            jobs: Vec::new(),
            tasks: Vec::new(),
            events: Vec::new(),
            host_series: Vec::new(),
        }
    }

    /// Declares a machine; returns its id.
    pub fn add_machine(&mut self, cpu: f64, memory: f64, page_cache: f64) -> MachineId {
        let id = MachineId::from(self.machines.len());
        self.machines
            .push(MachineRecord::new(id, cpu, memory, page_cache));
        id
    }

    /// Declares a job; returns its id. Task lists and usage summaries are
    /// filled in by [`add_task`](Self::add_task) and
    /// [`set_job_usage`](Self::set_job_usage).
    pub fn add_job(&mut self, user: UserId, priority: Priority, submit_time: Timestamp) -> JobId {
        let id = JobId::from(self.jobs.len());
        self.jobs.push(JobRecord {
            id,
            user,
            priority,
            submit_time,
            tasks: Vec::new(),
            completion_time: None,
            cpu_seconds: 0.0,
            mean_memory: 0.0,
        });
        id
    }

    /// Declares a task belonging to `job`; returns its id.
    pub fn add_task(&mut self, job: JobId, demand: Demand) -> TaskId {
        let id = TaskId::from(self.tasks.len());
        let j = &mut self.jobs[job.index()];
        j.tasks.push(id);
        self.tasks.push(TaskRecord {
            id,
            job,
            priority: j.priority,
            submit_time: j.submit_time,
            demand,
            execution_time: 0,
            attempts: 0,
            resubmit_wait: 0,
            outcome: TaskOutcome::Unfinished,
        });
        id
    }

    /// Records per-job resource summaries (cumulative core-seconds and mean
    /// held memory).
    pub fn set_job_usage(&mut self, job: JobId, cpu_seconds: f64, mean_memory: f64) {
        let j = &mut self.jobs[job.index()];
        j.cpu_seconds = cpu_seconds;
        j.mean_memory = mean_memory;
    }

    /// Appends an event. Events may be pushed in any order; `build` sorts
    /// them.
    pub fn push_event(&mut self, event: TaskEvent) {
        self.events.push(event);
    }

    /// Attaches a completed usage series for a machine.
    pub fn add_host_series(&mut self, series: HostSeries) {
        self.host_series.push(series);
    }

    /// Number of tasks declared so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Validates the event log and derives per-task and per-job summaries.
    pub fn build(mut self) -> Result<Trace, BuildError> {
        self.events.sort_by_key(|e| (e.time, e.task));

        for series in &self.host_series {
            if series.machine.index() >= self.machines.len() {
                return Err(BuildError::UnknownMachine(series.machine));
            }
        }

        // Replay each task's events through the state machine, accumulating
        // execution time and attempts.
        let mut states = vec![TaskState::Unsubmitted; self.tasks.len()];
        let mut run_started = vec![0u64; self.tasks.len()];
        let mut first_submit = vec![None::<Timestamp>; self.tasks.len()];
        let mut last_dead = vec![None::<Timestamp>; self.tasks.len()];

        for e in &self.events {
            let ti = e.task.index();
            if ti >= self.tasks.len() {
                return Err(BuildError::UnknownTask(e.task));
            }
            if matches!(e.kind, TaskEventKind::Schedule) && e.machine.is_none() {
                return Err(BuildError::MissingMachine(e.task, e.time));
            }
            let prev = states[ti];
            let next = prev
                .apply(e.kind)
                .map_err(|source| BuildError::InvalidTransition {
                    task: e.task,
                    time: e.time,
                    source,
                })?;

            match e.kind {
                TaskEventKind::Submit if first_submit[ti].is_none() => {
                    first_submit[ti] = Some(e.time);
                }
                TaskEventKind::Schedule => {
                    run_started[ti] = e.time;
                    self.tasks[ti].attempts += 1;
                    // Inter-attempt gap: dead-time between the end of the
                    // previous attempt and this (re)scheduling.
                    if let Some(dead_at) = last_dead[ti] {
                        self.tasks[ti].resubmit_wait += e.time.saturating_sub(dead_at);
                    }
                }
                kind if kind.is_completion() => {
                    if prev == TaskState::Running {
                        self.tasks[ti].execution_time += e.time.saturating_sub(run_started[ti]);
                    }
                    last_dead[ti] = Some(e.time);
                    self.tasks[ti].outcome = match kind {
                        TaskEventKind::Finish => TaskOutcome::Finished,
                        TaskEventKind::Evict => TaskOutcome::Evicted,
                        TaskEventKind::Fail => TaskOutcome::Failed,
                        TaskEventKind::Kill => TaskOutcome::Killed,
                        TaskEventKind::Lost => TaskOutcome::Lost,
                        _ => unreachable!("is_completion covers exactly these kinds"),
                    };
                }
                _ => {}
            }
            states[ti] = next;
        }

        // A resubmitted task that is pending/running at trace end is
        // unfinished regardless of earlier completions.
        for (ti, state) in states.iter().enumerate() {
            if matches!(state, TaskState::Pending | TaskState::Running) {
                self.tasks[ti].outcome = TaskOutcome::Unfinished;
            }
            if let Some(t) = first_submit[ti] {
                self.tasks[ti].submit_time = t;
            }
        }

        // Job completion: the time of the last completion event among its
        // tasks, provided every task reached a terminal outcome.
        let mut last_completion = vec![None::<Timestamp>; self.jobs.len()];
        for e in &self.events {
            if e.kind.is_completion() {
                let job = self.tasks[e.task.index()].job;
                let slot = &mut last_completion[job.index()];
                *slot = Some(slot.map_or(e.time, |t: Timestamp| t.max(e.time)));
            }
        }
        for job in &mut self.jobs {
            let all_done = !job.tasks.is_empty()
                && job
                    .tasks
                    .iter()
                    .all(|t| self.tasks[t.index()].outcome != TaskOutcome::Unfinished);
            if all_done {
                job.completion_time = last_completion[job.id.index()];
            }
        }

        Ok(Trace {
            system: self.system,
            horizon: self.horizon,
            machines: self.machines,
            jobs: self.jobs,
            tasks: self.tasks,
            events: self.events,
            host_series: self.host_series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    fn demand() -> Demand {
        Demand::new(0.02, 0.01)
    }

    fn event(
        time: Timestamp,
        task: TaskId,
        machine: Option<u32>,
        kind: TaskEventKind,
    ) -> TaskEvent {
        TaskEvent {
            time,
            task,
            machine: machine.map(MachineId),
            kind,
        }
    }

    /// Builds a minimal valid trace: one machine, one job with two tasks,
    /// one finishing and one failing then finishing after resubmit.
    fn sample_builder() -> (TraceBuilder, JobId, TaskId, TaskId) {
        let mut b = TraceBuilder::new("test", 10 * HOUR);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(4), 100);
        let t1 = b.add_task(j, demand());
        let t2 = b.add_task(j, demand());
        b.push_event(event(100, t1, None, TaskEventKind::Submit));
        b.push_event(event(100, t2, None, TaskEventKind::Submit));
        b.push_event(event(110, t1, Some(0), TaskEventKind::Schedule));
        b.push_event(event(120, t2, Some(0), TaskEventKind::Schedule));
        b.push_event(event(400, t1, Some(0), TaskEventKind::Finish));
        b.push_event(event(300, t2, Some(0), TaskEventKind::Fail));
        b.push_event(event(310, t2, None, TaskEventKind::Submit));
        b.push_event(event(320, t2, Some(0), TaskEventKind::Schedule));
        b.push_event(event(500, t2, Some(0), TaskEventKind::Finish));
        (b, j, t1, t2)
    }

    #[test]
    fn build_derives_task_summaries() {
        let (b, _, t1, t2) = sample_builder();
        let trace = b.build().unwrap();
        let r1 = &trace.tasks[t1.index()];
        assert_eq!(r1.execution_time, 290); // 110 -> 400
        assert_eq!(r1.attempts, 1);
        assert_eq!(r1.outcome, TaskOutcome::Finished);
        let r2 = &trace.tasks[t2.index()];
        assert_eq!(r2.execution_time, (300 - 120) + (500 - 320));
        assert_eq!(r2.attempts, 2);
        assert_eq!(r2.outcome, TaskOutcome::Finished);
        // Fail at 300, rescheduled at 320: 20 s of inter-attempt gap.
        assert_eq!(r2.resubmit_wait, 20);
        assert_eq!(r2.mean_resubmit_gap(), Some(20.0));
        // The task that ran once has no gaps.
        assert_eq!(r1.resubmit_wait, 0);
    }

    #[test]
    fn build_derives_job_completion() {
        let (b, j, _, _) = sample_builder();
        let trace = b.build().unwrap();
        let job = &trace.jobs[j.index()];
        assert_eq!(job.completion_time, Some(500));
        assert_eq!(job.length(), Some(400));
        assert_eq!(job.num_tasks(), 2);
    }

    #[test]
    fn unfinished_task_blocks_job_completion() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(1), 0);
        let t1 = b.add_task(j, demand());
        let t2 = b.add_task(j, demand());
        b.push_event(event(0, t1, None, TaskEventKind::Submit));
        b.push_event(event(0, t2, None, TaskEventKind::Submit));
        b.push_event(event(5, t1, Some(0), TaskEventKind::Schedule));
        b.push_event(event(50, t1, Some(0), TaskEventKind::Finish));
        // t2 stays pending forever.
        let trace = b.build().unwrap();
        assert_eq!(trace.jobs[j.index()].completion_time, None);
        assert_eq!(trace.tasks[t2.index()].outcome, TaskOutcome::Unfinished);
        assert_eq!(trace.job_lengths(), Vec::<u64>::new());
    }

    #[test]
    fn invalid_event_sequence_rejected() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(1), 0);
        let t = b.add_task(j, demand());
        // Schedule without submit.
        b.push_event(event(10, t, Some(0), TaskEventKind::Schedule));
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::InvalidTransition { .. }));
    }

    #[test]
    fn schedule_without_machine_rejected() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(1), 0);
        let t = b.add_task(j, demand());
        b.push_event(event(0, t, None, TaskEventKind::Submit));
        b.push_event(event(10, t, None, TaskEventKind::Schedule));
        assert!(matches!(b.build(), Err(BuildError::MissingMachine(_, 10))));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.push_event(event(0, TaskId(99), None, TaskEventKind::Submit));
        assert!(matches!(
            b.build(),
            Err(BuildError::UnknownTask(TaskId(99)))
        ));
    }

    #[test]
    fn unknown_series_machine_rejected() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_host_series(HostSeries::new(MachineId(5), 0, 300));
        assert!(matches!(
            b.build(),
            Err(BuildError::UnknownMachine(MachineId(5)))
        ));
    }

    #[test]
    fn completion_counts() {
        let (b, _, _, _) = sample_builder();
        let trace = b.build().unwrap();
        let c = trace.completion_counts();
        assert_eq!(c.finish, 2);
        assert_eq!(c.fail, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.abnormal(), 1);
        assert!((c.abnormal_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.fail_share_of_abnormal() - 1.0).abs() < 1e-12);
        assert_eq!(c.kill_share_of_abnormal(), 0.0);
    }

    #[test]
    fn events_sorted_after_build() {
        let (b, _, _, _) = sample_builder();
        let trace = b.build().unwrap();
        assert!(trace.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn submission_times_sorted() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_job(UserId(0), Priority::from_level(1), 500);
        b.add_job(UserId(0), Priority::from_level(1), 100);
        b.add_job(UserId(0), Priority::from_level(1), 300);
        let trace = b.build().unwrap();
        assert_eq!(trace.submission_times(), vec![100, 300, 500]);
    }

    #[test]
    fn events_on_machine_filters() {
        let (b, _, _, _) = sample_builder();
        let trace = b.build().unwrap();
        let on0 = trace.events_on_machine(MachineId(0));
        assert!(on0.iter().all(|e| e.machine == Some(MachineId(0))));
        assert_eq!(on0.len(), 6);
        assert!(trace.events_on_machine(MachineId(9)).is_empty());
    }

    #[test]
    fn task_execution_times_excludes_never_ran() {
        let mut b = TraceBuilder::new("test", HOUR);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(1), 0);
        let t1 = b.add_task(j, demand());
        let _t2 = b.add_task(j, demand()); // never submitted
        b.push_event(event(0, t1, None, TaskEventKind::Submit));
        b.push_event(event(10, t1, Some(0), TaskEventKind::Schedule));
        b.push_event(event(110, t1, Some(0), TaskEventKind::Finish));
        let trace = b.build().unwrap();
        assert_eq!(trace.task_execution_times(), vec![100]);
    }
}
