//! Strongly-typed identifiers for trace entities.
//!
//! Using newtypes instead of bare integers prevents the classic
//! characterization-pipeline bug of indexing a machine table with a task id.
//! All ids are dense indices assigned by [`crate::TraceBuilder`].

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, suitable for indexing dense tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a job (a user request comprising one or more tasks).
    JobId,
    "j"
);
id_type!(
    /// Identifier of a task, the smallest unit of resource consumption.
    TaskId,
    "t"
);
id_type!(
    /// Identifier of a machine in the cluster.
    MachineId,
    "m"
);
id_type!(
    /// Identifier of a user. Each job belongs to exactly one user.
    UserId,
    "u"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = TaskId(1);
        let b = TaskId(2);
        assert!(a < b);
        let set: HashSet<TaskId> = [a, b, TaskId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_includes_tag() {
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(TaskId(8).to_string(), "t8");
        assert_eq!(MachineId(9).to_string(), "m9");
        assert_eq!(UserId(3).to_string(), "u3");
    }

    #[test]
    fn index_round_trip() {
        let m: MachineId = 12usize.into();
        assert_eq!(m.index(), 12);
        let m: MachineId = 12u32.into();
        assert_eq!(m.index(), 12);
    }
}
