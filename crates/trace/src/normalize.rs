//! Trace normalization, mirroring Google's release process.
//!
//! The public Google trace divides every capacity and usage value by the
//! fleet maximum for its attribute ("these values were transformed in a
//! linear manner", paper §II), so only relative information survives.
//! [`normalize_trace`] applies the same transformation to a trace carrying
//! absolute values (e.g. one assembled from a private cluster log), after
//! which it is directly comparable to the traces this workspace generates.

use crate::trace::Trace;
use crate::usage::ClassSplit;
use serde::{Deserialize, Serialize};

/// The scale factors a normalization divided by, kept so that consumers
/// can de-normalize where needed (the paper's Fig. 6(b) does exactly this
/// with assumed 32/64 GB capacities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizationFactors {
    /// Largest machine CPU capacity observed.
    pub cpu: f64,
    /// Largest machine memory capacity observed.
    pub memory: f64,
    /// Largest machine page-cache capacity observed.
    pub page_cache: f64,
}

impl NormalizationFactors {
    /// Factors measured from a trace's machine records. `None` if the
    /// trace has no machines or any maximum is zero.
    pub fn measure(trace: &Trace) -> Option<NormalizationFactors> {
        if trace.machines.is_empty() {
            return None;
        }
        let max = |f: fn(&crate::machine::MachineRecord) -> f64| {
            trace.machines.iter().map(f).fold(0.0, f64::max)
        };
        let factors = NormalizationFactors {
            cpu: max(|m| m.cpu_capacity),
            memory: max(|m| m.memory_capacity),
            page_cache: max(|m| m.page_cache_capacity),
        };
        (factors.cpu > 0.0 && factors.memory > 0.0 && factors.page_cache > 0.0).then_some(factors)
    }

    /// True when the trace is already normalized (all maxima are 1).
    pub fn is_identity(&self) -> bool {
        (self.cpu - 1.0).abs() < 1e-12
            && (self.memory - 1.0).abs() < 1e-12
            && (self.page_cache - 1.0).abs() < 1e-12
    }
}

fn scale_split(split: &mut ClassSplit, factor: f64) {
    split.low /= factor;
    split.middle /= factor;
    split.high /= factor;
}

/// Normalizes a trace in place, dividing every capacity, demand and usage
/// value by the fleet maximum of its attribute. Returns the factors used,
/// or `None` (trace untouched) when the trace has no machines.
pub fn normalize_trace(trace: &mut Trace) -> Option<NormalizationFactors> {
    let factors = NormalizationFactors::measure(trace)?;
    if factors.is_identity() {
        return Some(factors);
    }
    for m in &mut trace.machines {
        m.cpu_capacity /= factors.cpu;
        m.memory_capacity /= factors.memory;
        m.page_cache_capacity /= factors.page_cache;
    }
    for t in &mut trace.tasks {
        t.demand.cpu /= factors.cpu;
        t.demand.memory /= factors.memory;
    }
    for j in &mut trace.jobs {
        j.mean_memory /= factors.memory;
        // cpu_seconds stays in core-seconds: Formula 4 usage is measured
        // in processors, which the paper does not normalize.
    }
    for s in &mut trace.host_series {
        for sample in &mut s.samples {
            scale_split(&mut sample.cpu, factors.cpu);
            scale_split(&mut sample.memory_used, factors.memory);
            scale_split(&mut sample.memory_assigned, factors.memory);
            sample.page_cache /= factors.page_cache;
        }
    }
    Some(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use crate::priority::Priority;
    use crate::resources::Demand;
    use crate::trace::TraceBuilder;
    use crate::usage::{HostSeries, UsageSample};

    /// Machines carrying *absolute-looking* capacities in (0, 1]; the
    /// builder requires (0,1], so absolute units are modeled as fractions
    /// of some large unit.
    fn raw_trace() -> Trace {
        let mut b = TraceBuilder::new("raw", 600);
        let m0 = b.add_machine(0.8, 0.64, 0.5);
        b.add_machine(0.4, 0.32, 0.5);
        let j = b.add_job(UserId(0), Priority::from_level(2), 0);
        b.add_task(j, Demand::new(0.2, 0.16));
        b.set_job_usage(j, 100.0, 0.32);
        let mut s = HostSeries::new(m0, 0, 300);
        s.samples.push(UsageSample {
            cpu: ClassSplit {
                low: 0.4,
                middle: 0.0,
                high: 0.0,
            },
            memory_used: ClassSplit {
                low: 0.32,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit {
                low: 0.4,
                middle: 0.0,
                high: 0.0,
            },
            page_cache: 0.25,
        });
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn factors_are_fleet_maxima() {
        let trace = raw_trace();
        let f = NormalizationFactors::measure(&trace).unwrap();
        assert_eq!(f.cpu, 0.8);
        assert_eq!(f.memory, 0.64);
        assert_eq!(f.page_cache, 0.5);
        assert!(!f.is_identity());
    }

    #[test]
    fn normalization_rescales_everything() {
        let mut trace = raw_trace();
        let f = normalize_trace(&mut trace).unwrap();
        assert_eq!(f.cpu, 0.8);
        // Largest machine becomes 1.0; the smaller one keeps its ratio.
        assert!((trace.machines[0].cpu_capacity - 1.0).abs() < 1e-12);
        assert!((trace.machines[1].cpu_capacity - 0.5).abs() < 1e-12);
        assert!((trace.machines[0].memory_capacity - 1.0).abs() < 1e-12);
        // Demands scale with the same factors.
        assert!((trace.tasks[0].demand.cpu - 0.25).abs() < 1e-12);
        assert!((trace.tasks[0].demand.memory - 0.25).abs() < 1e-12);
        // Usage samples scale too.
        let sample = &trace.host_series[0].samples[0];
        assert!((sample.cpu.total() - 0.5).abs() < 1e-12);
        assert!((sample.memory_used.total() - 0.5).abs() < 1e-12);
        assert!((sample.page_cache - 0.5).abs() < 1e-12);
        // Job mean memory normalized.
        assert!((trace.jobs[0].mean_memory - 0.5).abs() < 1e-12);
        // cpu_seconds untouched (processor units).
        assert_eq!(trace.jobs[0].cpu_seconds, 100.0);
    }

    #[test]
    fn already_normalized_is_untouched() {
        let mut b = TraceBuilder::new("norm", 100);
        b.add_machine(1.0, 1.0, 1.0);
        let mut trace = b.build().unwrap();
        let before = trace.clone();
        let f = normalize_trace(&mut trace).unwrap();
        assert!(f.is_identity());
        assert_eq!(trace, before);
    }

    #[test]
    fn machineless_trace_returns_none() {
        let mut trace = TraceBuilder::new("none", 100).build().unwrap();
        assert!(normalize_trace(&mut trace).is_none());
    }

    #[test]
    fn relative_usage_is_preserved() {
        // Relative usage (usage / own capacity) must be invariant under
        // normalization — it is what all host-load analyses consume.
        let mut trace = raw_trace();
        let before = trace.host_series[0].samples[0].cpu.total() / trace.machines[0].cpu_capacity;
        normalize_trace(&mut trace).unwrap();
        let after = trace.host_series[0].samples[0].cpu.total() / trace.machines[0].cpu_capacity;
        assert!((before - after).abs() < 1e-12);
    }
}
