//! Periodic host usage samples.
//!
//! The Google trace reports resource consumption per machine once every
//! 5 minutes. Section IV of the paper slices that consumption two ways:
//! by attribute (CPU, consumed memory, assigned memory, page cache) and by
//! priority class (so that "usage seen by high-priority tasks" can be
//! analyzed separately). [`ClassSplit`] stores the per-class breakdown;
//! [`UsageSample`] is one sampling window; [`HostSeries`] is one machine's
//! whole time series.

use crate::ids::MachineId;
use crate::priority::PriorityClass;
use crate::time::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// A quantity broken down by the paper's three priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassSplit {
    /// Share from priorities 1–4.
    pub low: f64,
    /// Share from priorities 5–8.
    pub middle: f64,
    /// Share from priorities 9–12.
    pub high: f64,
}

impl ClassSplit {
    /// A zero split.
    pub const ZERO: ClassSplit = ClassSplit {
        low: 0.0,
        middle: 0.0,
        high: 0.0,
    };

    /// Sum over all classes ("all tasks" in the paper's figures).
    #[inline]
    pub fn total(&self) -> f64 {
        self.low + self.middle + self.high
    }

    /// The share of one class.
    #[inline]
    pub fn class(&self, class: PriorityClass) -> f64 {
        match class {
            PriorityClass::Low => self.low,
            PriorityClass::Middle => self.middle,
            PriorityClass::High => self.high,
        }
    }

    /// Mutable share of one class.
    #[inline]
    pub fn class_mut(&mut self, class: PriorityClass) -> &mut f64 {
        match class {
            PriorityClass::Low => &mut self.low,
            PriorityClass::Middle => &mut self.middle,
            PriorityClass::High => &mut self.high,
        }
    }

    /// Sum of the middle and high classes.
    #[inline]
    pub fn mid_high(&self) -> f64 {
        self.middle + self.high
    }

    /// Selects the quantity for a filter: `None` means all classes,
    /// `Some(class)` restricts to tasks of that class and above.
    ///
    /// The paper's "high-priority" views (Fig. 10 b/d, Fig. 11 b, Fig. 12 b)
    /// consider only tasks at or above the given class, because those are
    /// the tasks that could not be preempted away.
    pub fn at_or_above(&self, class: PriorityClass) -> f64 {
        match class {
            PriorityClass::Low => self.total(),
            PriorityClass::Middle => self.mid_high(),
            PriorityClass::High => self.high,
        }
    }
}

/// One 5-minute usage window on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UsageSample {
    /// CPU rate consumed during the window (normalized core-seconds/s).
    pub cpu: ClassSplit,
    /// Memory actually consumed at sample time (normalized).
    pub memory_used: ClassSplit,
    /// Memory assigned (allocated) to tasks at sample time (normalized).
    pub memory_assigned: ClassSplit,
    /// Linux page-cache usage (file-backed memory), normalized.
    pub page_cache: f64,
}

/// One machine's usage time series at a fixed sampling period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSeries {
    /// The machine this series describes.
    pub machine: MachineId,
    /// Time of the first sample.
    pub start: Timestamp,
    /// Sampling period in seconds (300 in the Google trace).
    pub period: Duration,
    /// Samples at `start`, `start + period`, ...
    pub samples: Vec<UsageSample>,
}

impl HostSeries {
    /// Creates an empty series.
    pub fn new(machine: MachineId, start: Timestamp, period: Duration) -> Self {
        assert!(period > 0, "sampling period must be positive");
        HostSeries {
            machine,
            start,
            period,
            samples: Vec::new(),
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Timestamp of sample `i`.
    #[inline]
    pub fn time_of(&self, i: usize) -> Timestamp {
        self.start + self.period * i as u64
    }

    /// Extracts one attribute as a plain `Vec<f64>`, optionally restricted
    /// to tasks at or above a priority class.
    pub fn attribute(&self, attr: UsageAttribute, min_class: Option<PriorityClass>) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| {
                let split = match attr {
                    UsageAttribute::Cpu => &s.cpu,
                    UsageAttribute::MemoryUsed => &s.memory_used,
                    UsageAttribute::MemoryAssigned => &s.memory_assigned,
                    UsageAttribute::PageCache => {
                        return s.page_cache;
                    }
                };
                match min_class {
                    None => split.total(),
                    Some(c) => split.at_or_above(c),
                }
            })
            .collect()
    }

    /// Maximum of an attribute over the series; 0 for an empty series.
    ///
    /// The paper uses per-machine maxima as an estimate of the *usable*
    /// capacity (Fig. 7), since user-space capacity is below nominal due to
    /// system overheads.
    pub fn max_attribute(&self, attr: UsageAttribute) -> f64 {
        self.attribute(attr, None).into_iter().fold(0.0, f64::max)
    }
}

/// The four host-load attributes the paper characterizes (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UsageAttribute {
    /// CPU rate (core-seconds per second).
    Cpu,
    /// Memory actually consumed.
    MemoryUsed,
    /// Memory assigned to tasks.
    MemoryAssigned,
    /// Page-cache (file-backed) memory.
    PageCache,
}

impl UsageAttribute {
    /// All four attributes in the paper's Fig. 7 order.
    pub const ALL: [UsageAttribute; 4] = [
        UsageAttribute::Cpu,
        UsageAttribute::MemoryUsed,
        UsageAttribute::MemoryAssigned,
        UsageAttribute::PageCache,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UsageAttribute::Cpu => "cpu",
            UsageAttribute::MemoryUsed => "memory_used",
            UsageAttribute::MemoryAssigned => "memory_assigned",
            UsageAttribute::PageCache => "page_cache",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(l: f64, m: f64, h: f64) -> ClassSplit {
        ClassSplit {
            low: l,
            middle: m,
            high: h,
        }
    }

    #[test]
    fn split_totals() {
        let s = split(0.1, 0.2, 0.3);
        assert!((s.total() - 0.6).abs() < 1e-12);
        assert!((s.mid_high() - 0.5).abs() < 1e-12);
        assert_eq!(s.class(PriorityClass::Middle), 0.2);
    }

    #[test]
    fn at_or_above_matches_paper_views() {
        let s = split(0.1, 0.2, 0.3);
        assert!((s.at_or_above(PriorityClass::Low) - 0.6).abs() < 1e-12);
        assert!((s.at_or_above(PriorityClass::Middle) - 0.5).abs() < 1e-12);
        assert!((s.at_or_above(PriorityClass::High) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn class_mut_updates_in_place() {
        let mut s = ClassSplit::ZERO;
        *s.class_mut(PriorityClass::High) += 0.4;
        assert_eq!(s.high, 0.4);
        assert_eq!(s.total(), 0.4);
    }

    fn sample(cpu: f64, mem: f64) -> UsageSample {
        UsageSample {
            cpu: split(cpu, 0.0, 0.0),
            memory_used: split(mem, 0.0, 0.0),
            memory_assigned: split(mem * 1.1, 0.0, 0.0),
            page_cache: 0.05,
        }
    }

    #[test]
    fn series_timestamps() {
        let mut s = HostSeries::new(MachineId(3), 600, 300);
        s.samples.push(sample(0.1, 0.2));
        s.samples.push(sample(0.3, 0.4));
        assert_eq!(s.time_of(0), 600);
        assert_eq!(s.time_of(1), 900);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn attribute_extraction() {
        let mut s = HostSeries::new(MachineId(0), 0, 300);
        s.samples.push(sample(0.1, 0.2));
        s.samples.push(sample(0.5, 0.1));
        assert_eq!(s.attribute(UsageAttribute::Cpu, None), vec![0.1, 0.5]);
        assert_eq!(
            s.attribute(UsageAttribute::MemoryUsed, None),
            vec![0.2, 0.1]
        );
        assert_eq!(
            s.attribute(UsageAttribute::PageCache, None),
            vec![0.05, 0.05]
        );
        // High-priority filter sees only the high share (0 in these samples).
        assert_eq!(
            s.attribute(UsageAttribute::Cpu, Some(PriorityClass::High)),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn max_attribute() {
        let mut s = HostSeries::new(MachineId(0), 0, 300);
        assert_eq!(s.max_attribute(UsageAttribute::Cpu), 0.0);
        s.samples.push(sample(0.1, 0.2));
        s.samples.push(sample(0.9, 0.3));
        s.samples.push(sample(0.4, 0.1));
        assert!((s.max_attribute(UsageAttribute::Cpu) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = HostSeries::new(MachineId(0), 0, 0);
    }
}
