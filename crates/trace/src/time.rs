//! Time base for traces.
//!
//! All trace times are integral seconds since the start of the trace.
//! The Google trace reports usage once per 5-minute window; that period is
//! exposed here as [`SAMPLE_PERIOD`] and used as the default sampling period
//! by the simulator.

/// A point in simulated time, in seconds since trace start.
pub type Timestamp = u64;

/// A span of simulated time, in seconds.
pub type Duration = u64;

/// One minute, in seconds.
pub const MINUTE: Duration = 60;

/// One hour, in seconds.
pub const HOUR: Duration = 3_600;

/// One day, in seconds.
pub const DAY: Duration = 86_400;

/// The usage-sampling period of the Google trace: 5 minutes.
pub const SAMPLE_PERIOD: Duration = 5 * MINUTE;

/// Converts a timestamp to fractional days, the unit most of the paper's
/// figures use on their x axes.
#[inline]
pub fn as_days(t: Timestamp) -> f64 {
    t as f64 / DAY as f64
}

/// Converts a timestamp to fractional hours.
#[inline]
pub fn as_hours(t: Timestamp) -> f64 {
    t as f64 / HOUR as f64
}

/// Converts a timestamp to fractional minutes.
#[inline]
pub fn as_minutes(t: Timestamp) -> f64 {
    t as f64 / MINUTE as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relations() {
        assert_eq!(HOUR, 60 * MINUTE);
        assert_eq!(DAY, 24 * HOUR);
        assert_eq!(SAMPLE_PERIOD, 300);
    }

    #[test]
    fn conversions() {
        assert_eq!(as_days(DAY), 1.0);
        assert_eq!(as_days(DAY / 2), 0.5);
        assert_eq!(as_hours(HOUR * 3), 3.0);
        assert_eq!(as_minutes(90), 1.5);
    }
}
