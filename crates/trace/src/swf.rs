//! Standard Workload Format (SWF) import.
//!
//! The Parallel Workload Archive — the source of the paper's ANL, RICC,
//! MetaCentrum and LLNL traces — publishes logs in SWF: one job per line,
//! 18 whitespace-separated fields, `;` comment lines carrying header
//! metadata. This adapter turns an SWF log into a workload-only
//! [`Trace`], so every analysis in the characterization pipeline runs
//! unchanged on *real* archive data when it is available.
//!
//! Field reference (1-based, per the PWA definition):
//!  1 job number, 2 submit time, 3 wait time, 4 run time,
//!  5 allocated processors, 6 average CPU time used, 7 used memory (KB),
//!  8 requested processors, 9 requested time, 10 requested memory,
//! 11 status, 12 user id, 13 group id, 14 executable, 15 queue,
//! 16 partition, 17 preceding job, 18 think time. `-1` means unknown.

use crate::ids::{JobId, TaskId, UserId};
use crate::job::JobRecord;
use crate::priority::Priority;
use crate::resources::Demand;
use crate::task::{TaskOutcome, TaskRecord};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// One parsed SWF job line (fields the characterization needs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfJob {
    /// Job number (field 1).
    pub job_number: i64,
    /// Submit time in seconds since log start (field 2).
    pub submit: i64,
    /// Wait time in seconds (field 3; -1 unknown).
    pub wait: i64,
    /// Run time in seconds (field 4; -1 unknown).
    pub run_time: i64,
    /// Allocated processors (field 5; -1 unknown).
    pub processors: i64,
    /// Used memory in KB per processor (field 7; -1 unknown).
    pub memory_kb: i64,
    /// Completion status (field 11): 1 completed, 0 failed, 5 cancelled,
    /// -1 unknown.
    pub status: i64,
    /// User id (field 12; -1 unknown).
    pub user: i64,
}

/// SWF parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    /// Line the error occurred on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text into job records. Comment (`;`) and blank lines are
/// skipped; short lines are rejected.
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        // Only fields 0–11 are consumed, so split into a stack array and
        // stop counting once the line is provably long enough — no
        // per-line `Vec` in the hot loop.
        let mut fields = [""; 12];
        let mut n = 0;
        for f in line.split_whitespace() {
            if n < fields.len() {
                fields[n] = f;
            }
            n += 1;
            if n >= 18 {
                break;
            }
        }
        if n < 18 {
            return Err(SwfError {
                line: i + 1,
                message: format!("expected 18 fields, found {n}"),
            });
        }
        let parse = |idx: usize, what: &str| -> Result<i64, SwfError> {
            fields[idx].parse().map_err(|_| SwfError {
                line: i + 1,
                message: format!("invalid {what}: {:?}", fields[idx]),
            })
        };
        jobs.push(SwfJob {
            job_number: parse(0, "job number")?,
            submit: parse(1, "submit time")?,
            wait: parse(2, "wait time")?,
            run_time: parse(3, "run time")?,
            processors: parse(4, "allocated processors")?,
            memory_kb: parse(6, "used memory")?,
            status: parse(10, "status")?,
            user: parse(11, "user id")?,
        });
    }
    Ok(jobs)
}

/// Conversion options for [`swf_to_trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwfImportOptions {
    /// Label for the resulting trace.
    pub system: String,
    /// Cores of the reference (largest) machine, for normalizing CPU.
    pub reference_cores: f64,
    /// Memory of the reference machine in KB, for normalizing memory.
    pub reference_memory_kb: f64,
}

impl Default for SwfImportOptions {
    fn default() -> Self {
        SwfImportOptions {
            system: "swf".into(),
            reference_cores: 8.0,
            reference_memory_kb: 64.0 * 1024.0 * 1024.0, // 64 GB
        }
    }
}

/// Converts parsed SWF jobs into a workload-only [`Trace`].
///
/// Jobs with unknown submit or run time are skipped (standard practice
/// for archive logs); a cancelled-before-start job (status 5, run 0)
/// becomes a killed zero-attempt task. Job length follows the paper's
/// definition — submission to completion — which for SWF is
/// `wait + run_time`.
pub fn swf_to_trace(jobs: &[SwfJob], options: &SwfImportOptions) -> Trace {
    let mut out_jobs = Vec::new();
    let mut out_tasks = Vec::new();
    let mut horizon: u64 = 0;
    for job in jobs {
        if job.submit < 0 || job.run_time < 0 {
            continue;
        }
        let submit = job.submit as u64;
        let wait = job.wait.max(0) as u64;
        let run = job.run_time as u64;
        let processors = job.processors.max(1) as f64;
        let mem_norm = if job.memory_kb > 0 {
            (job.memory_kb as f64 * processors / options.reference_memory_kb).min(1.0)
        } else {
            0.0
        };
        let completion = submit + wait + run;
        horizon = horizon.max(completion);

        let job_id = JobId::from(out_jobs.len());
        let task_id = TaskId::from(out_tasks.len());
        let outcome = match job.status {
            1 => TaskOutcome::Finished,
            0 => TaskOutcome::Failed,
            5 => TaskOutcome::Killed,
            _ => TaskOutcome::Finished,
        };
        out_tasks.push(TaskRecord {
            id: task_id,
            job: job_id,
            // SWF queues are single-priority batch; map to the paper's
            // low-priority cluster.
            priority: Priority::from_level(4),
            submit_time: submit,
            demand: Demand::new((processors / options.reference_cores).min(1.0), mem_norm),
            execution_time: run,
            attempts: u32::from(run > 0),
            resubmit_wait: 0,
            outcome,
        });
        out_jobs.push(JobRecord {
            id: job_id,
            user: UserId(job.user.max(0) as u32),
            priority: Priority::from_level(4),
            submit_time: submit,
            tasks: vec![task_id],
            completion_time: Some(completion),
            cpu_seconds: processors * run as f64,
            mean_memory: mem_norm,
        });
    }
    Trace {
        system: options.system.clone(),
        horizon: horizon.max(1),
        machines: Vec::new(),
        jobs: out_jobs,
        tasks: out_tasks,
        events: Vec::new(),
        host_series: Vec::new(),
    }
}

/// Parses SWF text straight into a trace.
pub fn read_swf_trace(text: &str, options: &SwfImportOptions) -> Result<Trace, SwfError> {
    Ok(swf_to_trace(&parse_swf(text)?, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Test Cluster
; note: synthetic sample
1  100  30  3600  4 3500 1048576  4  7200 -1 1 7 1 -1 1 -1 -1 -1
2  200   0   600  1  590  524288  1   900 -1 1 3 1 -1 1 -1 -1 -1
3  300  10     0  1   -1      -1  1   600 -1 5 3 1 -1 1 -1 -1 -1
4  400  -1    -1  2   -1      -1  2   600 -1 0 9 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_comments() {
        let jobs = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].job_number, 1);
        assert_eq!(jobs[0].processors, 4);
        assert_eq!(jobs[0].run_time, 3_600);
        assert_eq!(jobs[1].user, 3);
        assert_eq!(jobs[2].status, 5);
    }

    #[test]
    fn short_line_rejected() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("18 fields"));
    }

    #[test]
    fn bad_number_rejected() {
        let line = "x 100 30 3600 4 3500 1048576 4 7200 -1 1 7 1 -1 1 -1 -1 -1\n";
        let err = parse_swf(line).unwrap_err();
        assert!(err.message.contains("job number"));
    }

    #[test]
    fn trace_conversion() {
        let trace = read_swf_trace(SAMPLE, &SwfImportOptions::default()).unwrap();
        // Job 4 has unknown run time and is dropped.
        assert_eq!(trace.jobs.len(), 3);
        assert_eq!(trace.tasks.len(), 3);

        // Job 1: submit 100, wait 30, run 3600 => length 3630.
        assert_eq!(trace.jobs[0].length(), Some(3_630));
        // Formula 4: 4 processors fully used.
        assert!((trace.jobs[0].cpu_usage().unwrap() - 4.0 * 3_600.0 / 3_630.0).abs() < 1e-9);
        // CPU demand normalized by 8 reference cores.
        assert!((trace.tasks[0].demand.cpu - 0.5).abs() < 1e-9);

        // Job 2 finished; job 3 was cancelled before running.
        assert_eq!(trace.tasks[1].outcome, TaskOutcome::Finished);
        assert_eq!(trace.tasks[2].outcome, TaskOutcome::Killed);
        assert_eq!(trace.tasks[2].attempts, 0);

        // Horizon covers the last completion.
        assert_eq!(trace.horizon, 3_730);
    }

    #[test]
    fn memory_normalization() {
        let trace = read_swf_trace(SAMPLE, &SwfImportOptions::default()).unwrap();
        // Job 1: 1 GB/processor x 4 processors over 64 GB reference.
        let expect = (1_048_576.0 * 4.0) / (64.0 * 1024.0 * 1024.0);
        assert!((trace.tasks[0].demand.memory - expect).abs() < 1e-9);
    }

    #[test]
    fn converted_trace_feeds_analyses() {
        let trace = read_swf_trace(SAMPLE, &SwfImportOptions::default()).unwrap();
        // The workload-side accessors must work on imported traces.
        assert_eq!(trace.job_lengths().len(), 3);
        assert_eq!(trace.task_execution_times(), vec![3_600, 600]);
        assert_eq!(trace.submission_times(), vec![100, 200, 300]);
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let trace = read_swf_trace("; nothing here\n", &SwfImportOptions::default()).unwrap();
        assert!(trace.jobs.is_empty());
    }
}
