//! Trace data model for the CLUSTER'12 cloud-vs-grid workload study.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers, timestamps, priorities, resource vectors, the
//! task life-cycle state machine, job/task/machine records, the task event
//! log, per-host 5-minute usage samples, and the [`Trace`] container that
//! bundles them together.
//!
//! The model mirrors the public schema of the 2011 Google cluster-usage
//! trace (the paper's primary data source) closely enough that every
//! analysis in `cgc-core` is expressed in the paper's own terms:
//!
//! * a **job** is a user request made of one or more **tasks**;
//! * each task carries one of **12 priorities** and a resource demand;
//! * a task moves through `Unsubmitted → Pending → Running → Dead`
//!   (with resubmission looping back to `Pending`), see [`task::TaskState`];
//! * machines are heterogeneous, with capacities normalized to the largest
//!   machine per attribute, see [`machine::MachineRecord`];
//! * host load is reported as periodic usage samples
//!   ([`usage::UsageSample`], 5-minute period in the original trace).

pub mod chaos;
pub mod clusterdata;
pub mod columnar;
pub mod ids;
pub mod integrity;
pub mod io;
pub mod job;
pub mod machine;
pub mod normalize;
pub mod priority;
pub mod resources;
pub mod sink;
pub mod stream;
pub mod swf;
pub mod task;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod usage;

pub use chaos::{ChaosReader, ChaosWriter, Fault, FaultPlan};
pub use columnar::{
    is_columnar, map_trace, read_trace_columnar, read_trace_columnar_parallel, write_columnar_to,
    write_trace_columnar, ColumnarBatches, MappedTrace,
};
pub use ids::{JobId, MachineId, TaskId, UserId};
pub use integrity::{crc32, write_atomic, write_atomic_with, Crc32};
pub use io::{
    read_trace, read_trace_from, read_trace_lenient, read_trace_lenient_from, read_trace_parallel,
    read_trace_verified, write_trace, write_trace_sealed, LenientParse, ParseError, ParseErrorKind,
};
pub use job::JobRecord;
pub use machine::{MachineRecord, CPU_CAPACITY_CLASSES, MEMORY_CAPACITY_CLASSES};
pub use normalize::{normalize_trace, NormalizationFactors};
pub use priority::{Priority, PriorityClass};
pub use resources::Demand;
pub use sink::{
    emit_trace, sim_batch_channel, BatchChannelSink, RecordSink, SimBatches, SinkError,
    TextWriterSink, DEFAULT_CHANNEL_BATCHES,
};
pub use stream::{BatchSource, TraceBatch, TraceBatches, DEFAULT_BATCH_RECORDS};
pub use task::{TaskEvent, TaskEventKind, TaskOutcome, TaskRecord, TaskState};
pub use time::{Duration, Timestamp, DAY, HOUR, MINUTE, SAMPLE_PERIOD};
pub use timeline::{QueueCounts, QueueTimeline};
pub use trace::{Trace, TraceBuilder};
pub use usage::{ClassSplit, HostSeries, UsageSample};
