//! Resource demand vectors.
//!
//! Following the released Google trace, resource quantities are normalized:
//! `1.0` is the capacity of the largest machine for the given attribute.
//! A demand is what a task requests; actual consumption is reported by the
//! usage sampler and may differ (the paper contrasts *assigned* versus
//! *consumed* memory in Fig. 7).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A (CPU, memory) request, in normalized units of the largest machine.
///
/// CPU is measured in "core-seconds per second" (i.e. average cores busy),
/// normalized by the largest machine's core count. Memory is bytes,
/// normalized by the largest machine's RAM.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Demand {
    /// Normalized CPU rate requested.
    pub cpu: f64,
    /// Normalized memory size requested.
    pub memory: f64,
}

impl Demand {
    /// A zero demand.
    pub const ZERO: Demand = Demand {
        cpu: 0.0,
        memory: 0.0,
    };

    /// Creates a demand vector. Panics if a component is negative or NaN.
    pub fn new(cpu: f64, memory: f64) -> Self {
        assert!(
            cpu >= 0.0 && cpu.is_finite(),
            "cpu demand must be finite and >= 0, got {cpu}"
        );
        assert!(
            memory >= 0.0 && memory.is_finite(),
            "memory demand must be finite and >= 0, got {memory}"
        );
        Demand { cpu, memory }
    }

    /// True if both components of `self` fit within `avail`.
    #[inline]
    pub fn fits_within(&self, avail: &Demand) -> bool {
        self.cpu <= avail.cpu + f64::EPSILON && self.memory <= avail.memory + f64::EPSILON
    }

    /// Component-wise scaling.
    #[inline]
    pub fn scaled(&self, factor: f64) -> Demand {
        Demand {
            cpu: self.cpu * factor,
            memory: self.memory * factor,
        }
    }

    /// Component-wise clamp into `[0, cap]`.
    #[inline]
    pub fn clamped(&self, cap: &Demand) -> Demand {
        Demand {
            cpu: self.cpu.clamp(0.0, cap.cpu),
            memory: self.memory.clamp(0.0, cap.memory),
        }
    }

    /// Saturating subtraction: components never go below zero.
    ///
    /// Useful for free-capacity bookkeeping where floating-point drift could
    /// otherwise produce tiny negatives.
    #[inline]
    pub fn saturating_sub(&self, rhs: &Demand) -> Demand {
        Demand {
            cpu: (self.cpu - rhs.cpu).max(0.0),
            memory: (self.memory - rhs.memory).max(0.0),
        }
    }
}

impl Add for Demand {
    type Output = Demand;
    #[inline]
    fn add(self, rhs: Demand) -> Demand {
        Demand {
            cpu: self.cpu + rhs.cpu,
            memory: self.memory + rhs.memory,
        }
    }
}

impl AddAssign for Demand {
    #[inline]
    fn add_assign(&mut self, rhs: Demand) {
        self.cpu += rhs.cpu;
        self.memory += rhs.memory;
    }
}

impl Sub for Demand {
    type Output = Demand;
    #[inline]
    fn sub(self, rhs: Demand) -> Demand {
        Demand {
            cpu: self.cpu - rhs.cpu,
            memory: self.memory - rhs.memory,
        }
    }
}

impl SubAssign for Demand {
    #[inline]
    fn sub_assign(&mut self, rhs: Demand) {
        self.cpu -= rhs.cpu;
        self.memory -= rhs.memory;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_is_componentwise() {
        let small = Demand::new(0.1, 0.2);
        let big = Demand::new(0.5, 0.5);
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        // One component too large is enough to fail.
        assert!(!Demand::new(0.6, 0.1).fits_within(&big));
        assert!(!Demand::new(0.1, 0.6).fits_within(&big));
    }

    #[test]
    fn fits_within_tolerates_fp_equality() {
        let d = Demand::new(0.3, 0.3);
        assert!(d.fits_within(&d));
    }

    #[test]
    fn arithmetic() {
        let a = Demand::new(0.2, 0.3);
        let b = Demand::new(0.1, 0.1);
        let sum = a + b;
        assert!((sum.cpu - 0.3).abs() < 1e-12);
        assert!((sum.memory - 0.4).abs() < 1e-12);
        let diff = sum - b;
        assert!((diff.cpu - a.cpu).abs() < 1e-12);
        assert!((diff.memory - a.memory).abs() < 1e-12);
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = Demand::new(0.1, 0.1);
        let b = Demand::new(0.5, 0.05);
        let r = a.saturating_sub(&b);
        assert_eq!(r.cpu, 0.0);
        assert!((r.memory - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cpu demand")]
    fn negative_cpu_rejected() {
        let _ = Demand::new(-0.1, 0.0);
    }

    #[test]
    fn clamped_bounds_components() {
        let cap = Demand::new(0.5, 0.5);
        let d = Demand::new(0.7, 0.2).clamped(&cap);
        assert_eq!(d.cpu, 0.5);
        assert_eq!(d.memory, 0.2);
    }
}
