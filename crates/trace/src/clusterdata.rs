//! Google clusterdata-2011 trace import.
//!
//! The trace the paper analyzes is distributed as gzipped CSV tables
//! (`task_events/`, `task_usage/`, `machine_events/`). This adapter turns
//! those tables — decompressed and concatenated to text — into a
//! [`Trace`], so the whole characterization pipeline runs on the *real*
//! data when a user has downloaded it.
//!
//! Real logs are messy: events arrive out of order, tasks appear
//! mid-trace without a SUBMIT, duplicate records exist. The importer
//! repairs what it can (synthesizing missing submissions, dropping
//! transitions the life-cycle state machine forbids) and reports what it
//! did in [`ImportStats`], instead of rejecting the file wholesale.
//!
//! Schema references (clusterdata-2011-2): `task_events` columns used are
//! 1 time (µs), 3 job id, 4 task index, 5 machine id, 6 event type,
//! 9 priority (0–11), 10 cpu request, 11 memory request;
//! `task_usage` columns used are 1 start (µs), 2 end (µs), 5 machine id,
//! 6 mean CPU usage rate, 7 canonical memory usage, 8 assigned memory,
//! 10 total page cache; `machine_events` columns used are 1 time,
//! 2 machine id, 3 event type, 5 cpus, 6 memory.

use crate::ids::{JobId, MachineId, TaskId, UserId};
use crate::priority::Priority;
use crate::resources::Demand;
use crate::task::{TaskEvent, TaskEventKind, TaskState};
use crate::time::{Duration, Timestamp, SAMPLE_PERIOD};
use crate::trace::Trace;
use crate::usage::{HostSeries, UsageSample};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the importer repaired or dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportStats {
    /// Task-event rows successfully applied.
    pub events_applied: u64,
    /// SUBMIT events synthesized for tasks first seen mid-life.
    pub submits_synthesized: u64,
    /// Rows dropped because the transition is illegal even after repair.
    pub events_dropped: u64,
    /// Usage rows attached to known machines.
    pub usage_rows: u64,
    /// Usage rows dropped (unknown machine or malformed interval).
    pub usage_dropped: u64,
}

/// Import error: a structurally unreadable row.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportError {
    /// Which table the row came from.
    pub table: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} line {}: {}", self.table, self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

const MICROS: u64 = 1_000_000;

fn field<'a>(cols: &[&'a str], idx: usize) -> &'a str {
    cols.get(idx).copied().unwrap_or("")
}

fn parse_u64(s: &str) -> Option<u64> {
    if s.is_empty() {
        None
    } else {
        s.parse().ok()
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    if s.is_empty() {
        None
    } else {
        s.parse().ok()
    }
}

/// One parsed `task_events` row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TaskEventRow {
    time: u64,
    job: u64,
    task_index: u64,
    machine: Option<u64>,
    event_type: u8,
    priority: u8,
    cpu_request: f64,
    memory_request: f64,
}

/// One parsed `task_usage` row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UsageRow {
    start: u64,
    end: u64,
    machine: u64,
    cpu: f64,
    memory: f64,
    assigned: f64,
    page_cache: f64,
}

fn parse_task_events(text: &str) -> Result<Vec<TaskEventRow>, ImportError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 9 {
            return Err(ImportError {
                table: "task_events",
                line: i + 1,
                message: format!("expected >= 9 columns, found {}", cols.len()),
            });
        }
        let Some(time) = parse_u64(field(&cols, 0)) else {
            continue;
        };
        let Some(job) = parse_u64(field(&cols, 2)) else {
            continue;
        };
        let Some(task_index) = parse_u64(field(&cols, 3)) else {
            continue;
        };
        let Some(event_type) = parse_u64(field(&cols, 5)) else {
            continue;
        };
        rows.push(TaskEventRow {
            time,
            job,
            task_index,
            machine: parse_u64(field(&cols, 4)),
            event_type: event_type as u8,
            priority: parse_u64(field(&cols, 8)).unwrap_or(0).min(11) as u8,
            cpu_request: parse_f64(field(&cols, 9)).unwrap_or(0.0),
            memory_request: parse_f64(field(&cols, 10)).unwrap_or(0.0),
        });
    }
    Ok(rows)
}

fn parse_task_usage(text: &str) -> Result<Vec<UsageRow>, ImportError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 10 {
            return Err(ImportError {
                table: "task_usage",
                line: i + 1,
                message: format!("expected >= 10 columns, found {}", cols.len()),
            });
        }
        let (Some(start), Some(end), Some(machine)) = (
            parse_u64(field(&cols, 0)),
            parse_u64(field(&cols, 1)),
            parse_u64(field(&cols, 4)),
        ) else {
            continue;
        };
        rows.push(UsageRow {
            start,
            end,
            machine,
            cpu: parse_f64(field(&cols, 5)).unwrap_or(0.0),
            memory: parse_f64(field(&cols, 6)).unwrap_or(0.0),
            assigned: parse_f64(field(&cols, 7)).unwrap_or(0.0),
            page_cache: parse_f64(field(&cols, 9)).unwrap_or(0.0),
        });
    }
    Ok(rows)
}

/// `(machine id, cpus, memory)` from ADD rows of `machine_events`.
fn parse_machine_events(text: &str) -> Result<Vec<(u64, f64, f64)>, ImportError> {
    let mut machines: HashMap<u64, (f64, f64)> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 3 {
            return Err(ImportError {
                table: "machine_events",
                line: i + 1,
                message: format!("expected >= 3 columns, found {}", cols.len()),
            });
        }
        let (Some(machine), Some(event)) = (parse_u64(field(&cols, 1)), parse_u64(field(&cols, 2)))
        else {
            continue;
        };
        // 0 = ADD, 2 = UPDATE: both carry capacities.
        if event == 0 || event == 2 {
            let cpus = parse_f64(field(&cols, 4)).unwrap_or(1.0).clamp(1e-6, 1.0);
            let memory = parse_f64(field(&cols, 5)).unwrap_or(1.0).clamp(1e-6, 1.0);
            machines.insert(machine, (cpus, memory));
        }
    }
    let mut out: Vec<(u64, f64, f64)> = machines
        .into_iter()
        .map(|(id, (c, m))| (id, c, m))
        .collect();
    out.sort_unstable_by_key(|&(id, _, _)| id);
    Ok(out)
}

fn map_event_type(event_type: u8) -> Option<TaskEventKind> {
    Some(match event_type {
        0 => TaskEventKind::Submit,
        1 => TaskEventKind::Schedule,
        2 => TaskEventKind::Evict,
        3 => TaskEventKind::Fail,
        4 => TaskEventKind::Finish,
        5 => TaskEventKind::Kill,
        6 => TaskEventKind::Lost,
        7 => TaskEventKind::UpdatePending,
        8 => TaskEventKind::UpdateRunning,
        _ => return None,
    })
}

/// Imports the three clusterdata tables into a trace.
///
/// Inputs are the decompressed CSV texts of each table (any subset of
/// parts, concatenated). Returns the trace and the repair statistics.
pub fn import_clusterdata(
    task_events_csv: &str,
    task_usage_csv: &str,
    machine_events_csv: &str,
    system: &str,
) -> Result<(Trace, ImportStats), ImportError> {
    let mut stats = ImportStats::default();

    // Machines, with dense re-indexing.
    let machines = parse_machine_events(machine_events_csv)?;
    let mut builder = crate::trace::TraceBuilder::new(system, 0);
    let mut machine_index: HashMap<u64, MachineId> = HashMap::new();
    for &(raw_id, cpus, memory) in &machines {
        let id = builder.add_machine(cpus, memory, 1.0);
        machine_index.insert(raw_id, id);
    }

    // Task events, time-sorted, with per-task state repair.
    let mut rows = parse_task_events(task_events_csv)?;
    rows.sort_by_key(|r| r.time);
    let mut task_index: HashMap<(u64, u64), TaskId> = HashMap::new();
    let mut job_index: HashMap<u64, JobId> = HashMap::new();
    let mut state: HashMap<TaskId, TaskState> = HashMap::new();
    let mut horizon: u64 = 0;

    for row in &rows {
        let Some(kind) = map_event_type(row.event_type) else {
            stats.events_dropped += 1;
            continue;
        };
        let time: Timestamp = row.time / MICROS;
        horizon = horizon.max(time + 1);
        let priority = Priority::from_level(row.priority + 1);

        // The table subset carries no user column, so the raw job id
        // stands in for the user. Dense remapping (first distinct job →
        // user 0, next → 1, …) keeps distinct raw ids distinct; the old
        // `row.job % u32::MAX` folding aliased ids 0 and u32::MAX.
        let job_id = match job_index.get(&row.job) {
            Some(&id) => id,
            None => {
                let user = UserId(
                    u32::try_from(job_index.len())
                        .expect("more than u32::MAX distinct jobs in one import"),
                );
                let id = builder.add_job(user, priority, time);
                job_index.insert(row.job, id);
                id
            }
        };
        let tid = *task_index
            .entry((row.job, row.task_index))
            .or_insert_with(|| {
                builder.add_task(
                    job_id,
                    Demand::new(row.cpu_request.max(0.0), row.memory_request.max(0.0)),
                )
            });

        let machine = row.machine.and_then(|m| machine_index.get(&m)).copied();
        let current = state.get(&tid).copied().unwrap_or(TaskState::Unsubmitted);

        // Repair: a task first seen via SCHEDULE (its SUBMIT predates the
        // trace window) gets a synthetic submission at the same instant.
        let mut effective = current;
        if current == TaskState::Unsubmitted
            && kind != TaskEventKind::Submit
            && current.apply(TaskEventKind::Submit).is_ok()
        {
            builder.push_event(TaskEvent {
                time,
                task: tid,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            stats.submits_synthesized += 1;
            effective = TaskState::Pending;
        }
        // Scheduling events need a machine; completions of running tasks
        // need their machine too. Use a placeholder when the log omits it.
        let machine = match kind {
            TaskEventKind::Schedule if machine.is_none() => {
                stats.events_dropped += 1;
                continue;
            }
            _ => machine,
        };
        match effective.apply(kind) {
            Ok(next) => {
                builder.push_event(TaskEvent {
                    time,
                    task: tid,
                    machine,
                    kind,
                });
                state.insert(tid, next);
                stats.events_applied += 1;
            }
            Err(_) => stats.events_dropped += 1,
        }
    }

    // Usage rows → per-machine 5-minute series.
    let usage = parse_task_usage(task_usage_csv)?;
    let mut per_machine: HashMap<MachineId, HashMap<u64, UsageSample>> = HashMap::new();
    let mut max_window: u64 = 0;
    for row in &usage {
        let Some(&mid) = machine_index.get(&row.machine) else {
            stats.usage_dropped += 1;
            continue;
        };
        if row.end <= row.start {
            stats.usage_dropped += 1;
            continue;
        }
        let window = (row.start / MICROS) / SAMPLE_PERIOD;
        max_window = max_window.max(window);
        let sample = per_machine
            .entry(mid)
            .or_default()
            .entry(window)
            .or_default();
        // The public trace does not tag usage rows with priorities; fold
        // everything into the low class (per-class views then degrade
        // gracefully to the all-tasks view).
        sample.cpu.low += row.cpu;
        sample.memory_used.low += row.memory;
        sample.memory_assigned.low += row.assigned;
        sample.page_cache += row.page_cache;
        stats.usage_rows += 1;
    }
    horizon = horizon.max((max_window + 1) * SAMPLE_PERIOD);
    let mut machine_ids: Vec<MachineId> = per_machine.keys().copied().collect();
    machine_ids.sort_unstable();
    for mid in machine_ids {
        let windows = &per_machine[&mid];
        let Some(&last) = windows.keys().max() else {
            continue;
        };
        let mut series = HostSeries::new(mid, 0, SAMPLE_PERIOD);
        for w in 0..=last {
            series
                .samples
                .push(windows.get(&w).copied().unwrap_or_default());
        }
        builder.add_host_series(series);
    }

    let mut trace = finish(builder, horizon)?;
    trace.system = system.to_string();
    Ok((trace, stats))
}

fn finish(builder: crate::trace::TraceBuilder, horizon: Duration) -> Result<Trace, ImportError> {
    // The repair pass is designed to emit only legal sequences, but a bug
    // there must surface as an error, not a panic on real-world data.
    let mut trace = builder.build().map_err(|source| ImportError {
        table: "task_events",
        line: 0,
        message: format!("repaired event log still invalid: {source}"),
    })?;
    trace.horizon = horizon;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskOutcome;

    const MACHINES: &str = "\
0,1,0,P,0.5,0.5
0,2,0,P,1.0,1.0
";

    /// Times in microseconds. Job 10 task 0: submit/schedule/finish.
    /// Job 11 task 0: first seen at SCHEDULE (needs synthetic submit),
    /// then evicted, resubmitted, killed. One bogus FINISH on a dead task.
    const EVENTS: &str = "\
1000000,,10,0,,0,u,0,3,0.03,0.01,0,0
2000000,,10,0,1,1,u,0,3,0.03,0.01,0,0
600000000,,10,0,1,4,u,0,3,0.03,0.01,0,0
5000000,,11,0,2,1,u,0,8,0.05,0.02,0,0
90000000,,11,0,2,2,u,0,8,0.05,0.02,0,0
95000000,,11,0,,0,u,0,8,0.05,0.02,0,0
100000000,,11,0,2,1,u,0,8,0.05,0.02,0,0
200000000,,11,0,2,5,u,0,8,0.05,0.02,0,0
700000000,,10,0,1,4,u,0,3,0.03,0.01,0,0
";

    const USAGE: &str = "\
0,300000000,10,0,1,0.02,0.01,0.012,0,0.004
300000000,600000000,10,0,1,0.025,0.011,0.012,0,0.005
0,300000000,11,0,2,0.04,0.02,0.022,0,0.006
";

    #[test]
    fn machines_imported_with_dense_ids() {
        let (trace, _) = import_clusterdata(EVENTS, USAGE, MACHINES, "real").unwrap();
        assert_eq!(trace.machines.len(), 2);
        assert_eq!(trace.machines[0].cpu_capacity, 0.5);
        assert_eq!(trace.machines[1].memory_capacity, 1.0);
    }

    #[test]
    fn task_life_cycles_are_reconstructed() {
        let (trace, stats) = import_clusterdata(EVENTS, USAGE, MACHINES, "real").unwrap();
        assert_eq!(trace.jobs.len(), 2);
        assert_eq!(trace.tasks.len(), 2);

        // Job 10's task ran 2s..600s.
        let t0 = &trace.tasks[0];
        assert_eq!(t0.outcome, TaskOutcome::Finished);
        assert_eq!(t0.execution_time, 598);
        assert_eq!(t0.priority.level(), 4); // trace priority 3 -> level 4

        // Job 11's task: synthetic submit, evicted, resubmitted, killed.
        let t1 = &trace.tasks[1];
        assert_eq!(t1.outcome, TaskOutcome::Killed);
        assert_eq!(t1.attempts, 2);
        assert_eq!(stats.submits_synthesized, 1);
        // The second FINISH for job 10 (already dead) was dropped.
        assert_eq!(stats.events_dropped, 1);
    }

    #[test]
    fn usage_series_are_windowed() {
        let (trace, stats) = import_clusterdata(EVENTS, USAGE, MACHINES, "real").unwrap();
        assert_eq!(stats.usage_rows, 3);
        // Machine 1 (dense id 0) has two windows.
        let s0 = trace.series_for(MachineId(0)).unwrap();
        assert_eq!(s0.len(), 2);
        assert!((s0.samples[0].cpu.total() - 0.02).abs() < 1e-12);
        assert!((s0.samples[1].cpu.total() - 0.025).abs() < 1e-12);
        // Machine 2 (dense id 1) has one window.
        let s1 = trace.series_for(MachineId(1)).unwrap();
        assert!((s1.samples[0].memory_used.total() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn imported_trace_feeds_the_pipeline() {
        let (trace, _) = import_clusterdata(EVENTS, USAGE, MACHINES, "real").unwrap();
        assert_eq!(trace.task_execution_times().len(), 2);
        let counts = trace.completion_counts();
        assert_eq!(counts.finish, 1);
        assert_eq!(counts.evict, 1);
        assert_eq!(counts.kill, 1);
        // Queue timeline reconstruction works on imported traces too.
        let tl = crate::timeline::QueueTimeline::for_machine(&trace, MachineId(0));
        assert_eq!(tl.at(100).running, 1);
    }

    #[test]
    fn unknown_machine_usage_dropped() {
        let usage = "0,300000000,10,0,999,0.02,0.01,0.012,0,0.004\n";
        let (_, stats) = import_clusterdata(EVENTS, usage, MACHINES, "real").unwrap();
        assert_eq!(stats.usage_rows, 0);
        assert_eq!(stats.usage_dropped, 1);
    }

    #[test]
    fn malformed_rows_error_with_location() {
        let err = import_clusterdata("1,2,3\n", USAGE, MACHINES, "x").unwrap_err();
        assert_eq!(err.table, "task_events");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn empty_tables_yield_empty_trace() {
        let (trace, stats) = import_clusterdata("", "", "", "empty").unwrap();
        assert!(trace.jobs.is_empty());
        assert!(trace.machines.is_empty());
        assert_eq!(stats.events_applied, 0);
    }

    /// Boundary raw job ids must map to distinct users. The old
    /// `row.job % u32::MAX` folding aliased jobs `0` and `4294967295`
    /// (u32::MAX) onto `UserId(0)`; the dense remap keeps every distinct
    /// raw id distinct and assigns ids in first-seen order.
    #[test]
    fn boundary_job_ids_get_distinct_users() {
        let events = "\
1000000,,0,0,,0,u,0,3,0.03,0.01,0,0
2000000,,4294967295,0,,0,u,0,3,0.03,0.01,0,0
3000000,,4294967296,0,,0,u,0,3,0.03,0.01,0,0
4000000,,18446744073709551615,0,,0,u,0,3,0.03,0.01,0,0
";
        let (trace, _) = import_clusterdata(events, "", MACHINES, "ids").unwrap();
        assert_eq!(trace.jobs.len(), 4);
        let users: Vec<u32> = trace.jobs.iter().map(|j| j.user.0).collect();
        assert_eq!(users, vec![0, 1, 2, 3], "dense, first-seen user ids");
        let distinct: std::collections::HashSet<u32> = users.into_iter().collect();
        assert_eq!(distinct.len(), 4, "no two raw job ids share a user");
    }
}
