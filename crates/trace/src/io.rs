//! Plain-text trace serialization.
//!
//! Traces are written in a sectioned CSV dialect so that generated
//! workloads can be persisted, diffed, and re-analyzed without re-running
//! the simulator. The format is deliberately simple — one section header
//! per record type, one record per line — and round-trips exactly (modulo
//! float formatting, which uses enough digits to be lossless).
//!
//! ```text
//! #trace <system> <horizon>
//! #machines
//! <id>,<cpu>,<mem>,<page_cache>
//! #jobs
//! <id>,<user>,<priority>,<submit>,<completion|->,<cpu_seconds>,<mean_memory>
//! #tasks
//! <id>,<job>,<priority>,<submit>,<cpu>,<mem>,<exec>,<attempts>,<outcome>
//! #events
//! <time>,<task>,<machine|->,<kind>
//! #series <machine> <start> <period>
//! <cpu_l>,<cpu_m>,<cpu_h>,<mu_l>,...,<page_cache>
//! ```

use crate::ids::{JobId, MachineId, TaskId, UserId};
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::priority::Priority;
use crate::resources::Demand;
use crate::task::{TaskEvent, TaskEventKind, TaskOutcome, TaskRecord};
use crate::trace::Trace;
use crate::usage::{ClassSplit, HostSeries, UsageSample};
use std::fmt::Write as _;
use std::str::FromStr;

/// Error produced while parsing a serialized trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn outcome_tag(o: TaskOutcome) -> &'static str {
    match o {
        TaskOutcome::Finished => "finished",
        TaskOutcome::Evicted => "evicted",
        TaskOutcome::Failed => "failed",
        TaskOutcome::Killed => "killed",
        TaskOutcome::Lost => "lost",
        TaskOutcome::Unfinished => "unfinished",
    }
}

fn parse_outcome(s: &str) -> Option<TaskOutcome> {
    Some(match s {
        "finished" => TaskOutcome::Finished,
        "evicted" => TaskOutcome::Evicted,
        "failed" => TaskOutcome::Failed,
        "killed" => TaskOutcome::Killed,
        "lost" => TaskOutcome::Lost,
        "unfinished" => TaskOutcome::Unfinished,
        _ => return None,
    })
}

fn event_tag(k: TaskEventKind) -> &'static str {
    match k {
        TaskEventKind::Submit => "submit",
        TaskEventKind::Schedule => "schedule",
        TaskEventKind::Evict => "evict",
        TaskEventKind::Fail => "fail",
        TaskEventKind::Finish => "finish",
        TaskEventKind::Kill => "kill",
        TaskEventKind::Lost => "lost",
        TaskEventKind::UpdatePending => "update_pending",
        TaskEventKind::UpdateRunning => "update_running",
    }
}

fn parse_event_kind(s: &str) -> Option<TaskEventKind> {
    Some(match s {
        "submit" => TaskEventKind::Submit,
        "schedule" => TaskEventKind::Schedule,
        "evict" => TaskEventKind::Evict,
        "fail" => TaskEventKind::Fail,
        "finish" => TaskEventKind::Finish,
        "kill" => TaskEventKind::Kill,
        "lost" => TaskEventKind::Lost,
        "update_pending" => TaskEventKind::UpdatePending,
        "update_running" => TaskEventKind::UpdateRunning,
        _ => return None,
    })
}

/// Serializes a trace to the sectioned-CSV text format.
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#trace {} {}", trace.system, trace.horizon);

    let _ = writeln!(out, "#machines");
    for m in &trace.machines {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            m.id.0, m.cpu_capacity, m.memory_capacity, m.page_cache_capacity
        );
    }

    let _ = writeln!(out, "#jobs");
    for j in &trace.jobs {
        let completion = j
            .completion_time
            .map_or_else(|| "-".to_string(), |t| t.to_string());
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            j.id.0,
            j.user.0,
            j.priority.level(),
            j.submit_time,
            completion,
            j.cpu_seconds,
            j.mean_memory
        );
    }

    let _ = writeln!(out, "#tasks");
    for t in &trace.tasks {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            t.id.0,
            t.job.0,
            t.priority.level(),
            t.submit_time,
            t.demand.cpu,
            t.demand.memory,
            t.execution_time,
            t.attempts,
            outcome_tag(t.outcome)
        );
    }

    let _ = writeln!(out, "#events");
    for e in &trace.events {
        let machine = e
            .machine
            .map_or_else(|| "-".to_string(), |m| m.0.to_string());
        let _ = writeln!(
            out,
            "{},{},{},{}",
            e.time,
            e.task.0,
            machine,
            event_tag(e.kind)
        );
    }

    for s in &trace.host_series {
        let _ = writeln!(out, "#series {} {} {}", s.machine.0, s.start, s.period);
        for sample in &s.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                sample.cpu.low,
                sample.cpu.middle,
                sample.cpu.high,
                sample.memory_used.low,
                sample.memory_used.middle,
                sample.memory_used.high,
                sample.memory_assigned.low,
                sample.memory_assigned.middle,
                sample.memory_assigned.high,
                sample.page_cache
            );
        }
    }
    out
}

struct LineParser<'a> {
    line_no: usize,
    line: &'a str,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn fields(&self, expected: usize) -> Result<Vec<&'a str>, ParseError> {
        let fields: Vec<&str> = self.line.split(',').collect();
        if fields.len() != expected {
            return Err(self.err(format!(
                "expected {expected} comma-separated fields, found {}",
                fields.len()
            )));
        }
        Ok(fields)
    }

    fn parse<T: FromStr>(&self, s: &str, what: &str) -> Result<T, ParseError> {
        s.parse()
            .map_err(|_| self.err(format!("invalid {what}: {s:?}")))
    }
}

#[derive(PartialEq)]
enum Section {
    Preamble,
    Machines,
    Jobs,
    Tasks,
    Events,
    Series,
}

/// Parses a trace previously produced by [`write_trace`].
pub fn read_trace(text: &str) -> Result<Trace, ParseError> {
    let mut system = String::new();
    let mut horizon = 0;
    let mut machines = Vec::new();
    let mut jobs: Vec<JobRecord> = Vec::new();
    let mut tasks: Vec<TaskRecord> = Vec::new();
    let mut events = Vec::new();
    let mut host_series: Vec<HostSeries> = Vec::new();
    let mut section = Section::Preamble;

    for (i, raw) in text.lines().enumerate() {
        let p = LineParser {
            line_no: i + 1,
            line: raw,
        };
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("trace") => {
                    system = words
                        .next()
                        .ok_or_else(|| p.err("missing system name"))?
                        .to_string();
                    horizon = p.parse(
                        words.next().ok_or_else(|| p.err("missing horizon"))?,
                        "horizon",
                    )?;
                }
                Some("machines") => section = Section::Machines,
                Some("jobs") => section = Section::Jobs,
                Some("tasks") => section = Section::Tasks,
                Some("events") => section = Section::Events,
                Some("series") => {
                    let machine: u32 = p.parse(
                        words
                            .next()
                            .ok_or_else(|| p.err("missing series machine"))?,
                        "machine id",
                    )?;
                    let start = p.parse(
                        words.next().ok_or_else(|| p.err("missing series start"))?,
                        "start",
                    )?;
                    let period = p.parse(
                        words.next().ok_or_else(|| p.err("missing series period"))?,
                        "period",
                    )?;
                    host_series.push(HostSeries::new(MachineId(machine), start, period));
                    section = Section::Series;
                }
                other => return Err(p.err(format!("unknown section {other:?}"))),
            }
            continue;
        }

        match section {
            Section::Preamble => return Err(p.err("data before any section header")),
            Section::Machines => {
                let f = p.fields(4)?;
                let id: u32 = p.parse(f[0], "machine id")?;
                machines.push(MachineRecord::new(
                    MachineId(id),
                    p.parse(f[1], "cpu capacity")?,
                    p.parse(f[2], "memory capacity")?,
                    p.parse(f[3], "page-cache capacity")?,
                ));
            }
            Section::Jobs => {
                let f = p.fields(7)?;
                let priority: u8 = p.parse(f[2], "priority")?;
                jobs.push(JobRecord {
                    id: JobId(p.parse(f[0], "job id")?),
                    user: UserId(p.parse(f[1], "user id")?),
                    priority: Priority::new(priority)
                        .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
                    submit_time: p.parse(f[3], "submit time")?,
                    tasks: Vec::new(),
                    completion_time: if f[4] == "-" {
                        None
                    } else {
                        Some(p.parse(f[4], "completion time")?)
                    },
                    cpu_seconds: p.parse(f[5], "cpu seconds")?,
                    mean_memory: p.parse(f[6], "mean memory")?,
                });
            }
            Section::Tasks => {
                let f = p.fields(9)?;
                let priority: u8 = p.parse(f[2], "priority")?;
                let job = JobId(p.parse(f[1], "job id")?);
                let id = TaskId(p.parse(f[0], "task id")?);
                let record = TaskRecord {
                    id,
                    job,
                    priority: Priority::new(priority)
                        .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
                    submit_time: p.parse(f[3], "submit time")?,
                    demand: Demand::new(p.parse(f[4], "cpu demand")?, p.parse(f[5], "mem demand")?),
                    execution_time: p.parse(f[6], "execution time")?,
                    attempts: p.parse(f[7], "attempts")?,
                    outcome: parse_outcome(f[8])
                        .ok_or_else(|| p.err(format!("unknown outcome {:?}", f[8])))?,
                };
                let ji = job.index();
                if ji >= jobs.len() {
                    return Err(p.err(format!("task references unknown job {job}")));
                }
                jobs[ji].tasks.push(id);
                tasks.push(record);
            }
            Section::Events => {
                let f = p.fields(4)?;
                events.push(TaskEvent {
                    time: p.parse(f[0], "time")?,
                    task: TaskId(p.parse(f[1], "task id")?),
                    machine: if f[2] == "-" {
                        None
                    } else {
                        Some(MachineId(p.parse(f[2], "machine id")?))
                    },
                    kind: parse_event_kind(f[3])
                        .ok_or_else(|| p.err(format!("unknown event kind {:?}", f[3])))?,
                });
            }
            Section::Series => {
                let f = p.fields(10)?;
                let series = host_series
                    .last_mut()
                    .expect("series section always opens with a #series header");
                series.samples.push(UsageSample {
                    cpu: ClassSplit {
                        low: p.parse(f[0], "cpu low")?,
                        middle: p.parse(f[1], "cpu middle")?,
                        high: p.parse(f[2], "cpu high")?,
                    },
                    memory_used: ClassSplit {
                        low: p.parse(f[3], "mem-used low")?,
                        middle: p.parse(f[4], "mem-used middle")?,
                        high: p.parse(f[5], "mem-used high")?,
                    },
                    memory_assigned: ClassSplit {
                        low: p.parse(f[6], "mem-assigned low")?,
                        middle: p.parse(f[7], "mem-assigned middle")?,
                        high: p.parse(f[8], "mem-assigned high")?,
                    },
                    page_cache: p.parse(f[9], "page cache")?,
                });
            }
        }
    }

    Ok(Trace {
        system,
        horizon,
        machines,
        jobs,
        tasks,
        events,
        host_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::usage::UsageSample;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("roundtrip", 3_600);
        let m = b.add_machine(0.5, 0.75, 1.0);
        let j = b.add_job(UserId(7), Priority::from_level(9), 42);
        let t = b.add_task(j, Demand::new(0.03, 0.015));
        b.set_job_usage(j, 120.5, 0.014);
        b.push_event(TaskEvent {
            time: 42,
            task: t,
            machine: None,
            kind: TaskEventKind::Submit,
        });
        b.push_event(TaskEvent {
            time: 50,
            task: t,
            machine: Some(m),
            kind: TaskEventKind::Schedule,
        });
        b.push_event(TaskEvent {
            time: 170,
            task: t,
            machine: Some(m),
            kind: TaskEventKind::Finish,
        });
        let mut series = HostSeries::new(m, 0, 300);
        series.samples.push(UsageSample {
            cpu: ClassSplit {
                low: 0.01,
                middle: 0.0,
                high: 0.02,
            },
            memory_used: ClassSplit {
                low: 0.1,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit {
                low: 0.12,
                middle: 0.0,
                high: 0.0,
            },
            page_cache: 0.07,
        });
        b.add_host_series(series);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn round_trip_empty_trace() {
        let trace = TraceBuilder::new("empty", 100).build().unwrap();
        let parsed = read_trace(&write_trace(&trace)).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn unknown_event_kind_rejected() {
        let text = "#trace x 10\n#events\n1,0,-,explode\n";
        let err = read_trace(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("explode"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "#trace x 10\n#machines\n0,0.5\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("expected 4"));
    }

    #[test]
    fn task_with_unknown_job_rejected() {
        let text = "#trace x 10\n#tasks\n0,5,1,0,0.1,0.1,10,1,finished\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("unknown job"));
    }

    #[test]
    fn data_before_section_rejected() {
        let text = "#trace x 10\n0,1,2,3\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("before any section"));
    }

    #[test]
    fn priorities_out_of_range_rejected() {
        let text = "#trace x 10\n#jobs\n0,0,99,0,-,0,0\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn blank_lines_ignored() {
        let trace = sample_trace();
        let mut text = write_trace(&trace);
        text = text.replace("#jobs", "\n#jobs\n");
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed, trace);
    }
}
